//! Programmatic scenario construction (no JSON): a flash crowd hits the MAR
//! slice while a fourth slice is admitted mid-run, then torn down again.
//!
//! ```sh
//! cargo run --release --example scenario_flash_crowd
//! ```

use onslicing::scenario::{Scenario, ScenarioConfig, ScenarioEngine, ScenarioEvent, SliceSpec};
use onslicing::slices::SliceKind;

fn main() {
    // The timeline, built with the chainable helpers instead of a JSON file:
    // three paper slices from slot 0; at slot 16 the MAR traffic doubles for
    // one episode; mid-surge a fourth (smaller) MAR tenant asks to join —
    // the admission controller checks residual per-domain capacity before
    // the agent and environment are instantiated — and at slot 48 that
    // tenant leaves again.
    let scenario = Scenario::new("flash-crowd-example", 16, 64)
        .describe("Traffic burst + mid-run admission, built programmatically")
        .with_capacity(1.5)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs))
        .slice(SliceSpec::new(SliceKind::Rdc))
        .at(
            16,
            ScenarioEvent::TrafficBurst {
                slice: 0,
                scale: 2.0,
                duration_slots: 16,
            },
        )
        .at(
            24,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Mar).with_peak_rate(3.0),
            },
        )
        .at(48, ScenarioEvent::TeardownSlice { slice: 3 });
    scenario.validate().expect("the timeline is well-formed");

    let mut engine = ScenarioEngine::new(scenario, ScenarioConfig::default())
        .expect("scenario construction succeeds");
    let report = engine.run();

    println!(
        "{}: {} slice-episodes, {:.1}% SLA violations, {:.2} coordination rounds/slot",
        report.scenario,
        report.slice_episodes,
        report.sla_violation_percent,
        report.avg_coordination_rounds
    );
    println!(
        "peak {} concurrent slices, {:.0} slice-slots/s, {:.0} ms wall clock",
        report.peak_concurrent_slices, report.slice_slots_per_second, report.wall_clock_ms
    );
    for s in &report.slices {
        let lifetime = match s.torn_down_at_slot {
            Some(t) => format!("slots {:>2}..{t}", s.admitted_at_slot),
            None => format!("slots {:>2}..end", s.admitted_at_slot),
        };
        println!(
            "  slice {} ({}) {}: {} episodes, {} violations, {} policy updates, usage {:.1}%",
            s.id,
            s.kind.name(),
            lifetime,
            s.episodes,
            s.violations,
            s.policy_updates,
            s.avg_usage_percent
        );
    }

    // The mid-run tenant really did live, learn and leave.
    let guest = report.slices.iter().find(|s| s.id == 3).expect("admitted");
    assert_eq!(guest.admitted_at_slot, 24);
    assert_eq!(guest.torn_down_at_slot, Some(48));
    assert!(guest.policy_updates > 0, "the guest slice trained online");
    assert_eq!(engine.orchestrator().num_slices(), 3);
    println!("\nguest slice joined at slot 24, trained online and left at slot 48.");
}
