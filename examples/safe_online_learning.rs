//! Safe online learning end to end: offline imitation from the rule-based
//! baseline, online PPO with the constraint-aware (Lagrangian) update and
//! proactive baseline switching, compared against an OnRL-style agent that
//! learns from scratch.
//!
//! This is a scaled-down version of the paper's headline experiment
//! (Table 1 / Fig. 9): the OnSlicing variant should end with lower usage than
//! the baseline at (near-)zero violation, while the learn-from-scratch agent
//! violates visibly during learning.
//!
//! ```sh
//! cargo run --release --example safe_online_learning
//! ```

use onslicing::core::{AgentConfig, CoordinationMode, DeploymentBuilder};

fn main() {
    let horizon = 24;
    let epochs = 3;

    println!("== OnSlicing: imitate offline, then learn online safely ==");
    let mut onslicing = DeploymentBuilder::new()
        .agent_config(AgentConfig::onslicing())
        .coordination(CoordinationMode::default())
        .scaled_down(horizon)
        .seed(42)
        .build();
    onslicing.offline_pretrain_all(2);
    for epoch in 0..epochs {
        let m = onslicing.run_epoch();
        println!(
            "epoch {epoch}: usage {:.1}%, violation {:.1}%, lambda(MAR) {:.2}",
            m.avg_usage_percent,
            m.violation_percent,
            onslicing.agents()[0].lambda()
        );
    }
    let test = onslicing.evaluate(2);
    println!(
        "OnSlicing test: usage {:.1}%, violation {:.1}%\n",
        test.avg_usage_percent, test.violation_percent
    );

    println!("== OnRL-style: learn from scratch with projection ==");
    let mut onrl = DeploymentBuilder::new()
        .agent_config(AgentConfig::onrl())
        .coordination(CoordinationMode::Projection)
        .scaled_down(horizon)
        .seed(43)
        .build();
    for epoch in 0..epochs {
        let m = onrl.run_epoch();
        println!(
            "epoch {epoch}: usage {:.1}%, violation {:.1}%",
            m.avg_usage_percent, m.violation_percent
        );
    }
    let test = onrl.evaluate(2);
    println!(
        "OnRL test: usage {:.1}%, violation {:.1}%",
        test.avg_usage_percent, test.violation_percent
    );
    println!("\nExpected shape: OnSlicing keeps violations near zero throughout; the from-scratch learner does not.");
}
