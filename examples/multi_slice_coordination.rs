//! Multi-slice coordination: three slices (MAR, HVS, RDC) orchestrated on one
//! infrastructure, comparing the paper's β-priced action modification against
//! plain projection when the slices over-request shared resources.
//!
//! ```sh
//! cargo run --release --example multi_slice_coordination
//! ```

use onslicing::core::{AgentConfig, CoordinationMode, DeploymentBuilder};
use onslicing::domains::DomainSet;
use onslicing::slices::{Action, ResourceKind};

fn main() {
    // Part 1: the mechanics. Two greedy requests exceed the CPU capacity;
    // watch the coordinating parameters rise and price the overload away.
    let mut domains = DomainSet::testbed_default();
    let requests = [Action::uniform(0.7), Action::uniform(0.6)];
    println!(
        "initial feasibility: {}",
        domains.is_feasible(requests.iter())
    );
    for round in 1..=3 {
        let betas = domains.update_coordination(requests.iter());
        println!(
            "round {round}: beta[edge-cpu] = {:.3}, beta[ul-radio] = {:.3}",
            betas[ResourceKind::EdgeCpu.index()],
            betas[ResourceKind::UplinkRadio.index()]
        );
    }
    let projected = domains.project(requests.iter());
    println!(
        "projection fallback: cpu shares {:.2} + {:.2} = {:.2}",
        projected[0].cpu,
        projected[1].cpu,
        projected[0].cpu + projected[1].cpu
    );

    // Part 2: the full loop. A three-slice deployment learns online with the
    // modifier-based coordination, then the same variant with projection.
    for (label, mode) in [
        ("modifier (OnSlicing)", CoordinationMode::default()),
        (
            "projection (Baseline/OnRL style)",
            CoordinationMode::Projection,
        ),
    ] {
        let mut orch = DeploymentBuilder::new()
            .agent_config(AgentConfig::onslicing())
            .coordination(mode)
            .scaled_down(16)
            .seed(11)
            .build();
        orch.offline_pretrain_all(1);
        let episode = orch.run_episode(true);
        println!(
            "{label}: usage {:.1}%, violation {:.0}%, {:.2} interactions/slot",
            episode.avg_usage_percent(),
            episode.violation_percent(),
            episode.avg_interactions
        );
    }
}
