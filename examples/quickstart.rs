//! Quickstart: simulate one slice, evaluate the rule-based baseline, and run
//! a tiny safe online-learning loop with a single OnSlicing agent.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use onslicing::core::{evaluate_policy, AgentConfig, OnSlicingAgent, RuleBasedBaseline};
use onslicing::netsim::NetworkConfig;
use onslicing::slices::{Action, Sla, SliceKind};

fn main() {
    // 1. A mobile-AR slice on the simulated LTE testbed with 24 slots per
    //    episode (a quarter of the paper's emulated day, for speed).
    let kind = SliceKind::Mar;
    let sla = Sla::for_kind(kind);
    let network = NetworkConfig::testbed_default();
    let mut env = onslicing::core::SliceEnvironment::with_trace_config(
        kind,
        sla,
        network,
        onslicing::traffic::DiurnalTraceConfig::mar_default(),
        24,
        7,
    );

    // 2. One hand-written action: what does a mid-size allocation achieve?
    env.reset();
    let action = Action::uniform(0.3);
    let result = env.step(&action);
    println!(
        "one slot with a uniform 30% allocation: latency {:.0} ms, cost {:.3}, usage {:.1}%",
        result.kpi.avg_latency_ms,
        result.kpi.cost,
        result.kpi.resource_usage_percent()
    );

    // 3. Calibrate the paper's rule-based baseline by grid search and
    //    evaluate it over one episode.
    let baseline = RuleBasedBaseline::calibrate(kind, &sla, &network, 5.0, 5, 1);
    let eval = evaluate_policy(&baseline, &mut env, 1);
    println!(
        "rule-based baseline: usage {:.1}%, violation {:.0}%",
        eval.avg_usage_percent, eval.violation_percent
    );

    // 4. Build an OnSlicing agent, imitate the baseline offline, then learn
    //    online for a couple of episodes while staying SLA-safe.
    let config = AgentConfig::onslicing().scaled_down(env.horizon());
    let mut agent = OnSlicingAgent::new(kind, sla, baseline.clone(), config, 3);
    let report = agent.offline_pretrain(&mut env, 2);
    println!(
        "offline imitation: {} demonstrations, final BC loss {:.4}",
        report.num_demonstrations,
        report.bc_losses.last().copied().unwrap_or(0.0)
    );

    for episode in 0..2 {
        let mut state = env.reset();
        loop {
            let decision = agent.decide(&state, env.cumulative_cost(), false);
            let step = env.step(&decision.action);
            agent.record(&state, &decision, &decision.action, &step.kpi, step.done);
            state = step.next_state;
            if step.done {
                break;
            }
        }
        let summary = agent.end_episode();
        agent.update_policy();
        println!(
            "online episode {episode}: usage {:.1}%, avg cost {:.3}, violated: {}, switched to baseline: {}",
            summary.avg_usage_percent, summary.avg_cost, summary.violated, summary.switched_to_baseline
        );
    }
}
