//! A mobile-AR edge slice under the microscope: how the ten orchestration
//! knobs shape end-to-end latency on the simulated testbed, and what the
//! proactive switching statistic looks like over a day of traffic.
//!
//! This is the workload the paper's introduction motivates: 540p frames are
//! uploaded to an edge server for feature extraction, and the slice's SLA is
//! a 500 ms average round trip.
//!
//! ```sh
//! cargo run --release --example mar_edge_slice
//! ```

use onslicing::core::{AgentConfig, OnSlicingAgent, RuleBasedBaseline, SliceEnvironment};
use onslicing::netsim::NetworkConfig;
use onslicing::slices::{Action, Sla, SliceKind};
use onslicing::traffic::DiurnalTraceConfig;

fn main() {
    let kind = SliceKind::Mar;
    let sla = Sla::for_kind(kind);
    let network = NetworkConfig::testbed_default();

    // 1. Sensitivity of the latency to the two key knobs (uplink radio share
    //    and edge CPU share) at peak traffic.
    let mut env = SliceEnvironment::with_trace_config(
        kind,
        sla,
        network,
        DiurnalTraceConfig::mar_default(),
        24,
        1,
    );
    println!("latency (ms) at peak traffic vs (uplink share, CPU share):");
    println!("{:>8} {:>8} {:>12} {:>8}", "U_u", "U_c", "latency", "cost");
    for uu in [0.1, 0.2, 0.3, 0.5] {
        for uc in [0.1, 0.2, 0.4] {
            let mut action = Action::uniform(0.2);
            action.ul_bandwidth = uu;
            action.cpu = uc;
            env.reset();
            let r = env.step(&action);
            println!(
                "{uu:>8.2} {uc:>8.2} {:>12.0} {:>8.3}",
                r.kpi.avg_latency_ms, r.kpi.cost
            );
        }
    }

    // 2. The safety machinery over one emulated day: the switching statistic
    //    E_t versus the episode budget T·C_max.
    let baseline = RuleBasedBaseline::calibrate(kind, &sla, &network, 5.0, 5, 2);
    let mut agent = OnSlicingAgent::new(
        kind,
        sla,
        baseline,
        AgentConfig::onslicing().scaled_down(24),
        5,
    );
    agent.offline_pretrain(&mut env, 2);
    let budget = sla.episode_cost_budget(env.horizon());
    let mut state = env.reset();
    println!("\nslot-by-slot switching statistic (budget T*C_max = {budget:.2}):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "slot", "traffic", "E_t", "cum cost", "baseline"
    );
    loop {
        let decision = agent.decide(&state, env.cumulative_cost(), false);
        let r = env.step(&decision.action);
        agent.record(&state, &decision, &decision.action, &r.kpi, r.done);
        if env.slot().is_multiple_of(4) || decision.used_baseline {
            println!(
                "{:>6} {:>10.2} {:>10.3} {:>10.3} {:>10}",
                env.slot(),
                state.traffic,
                decision.switching_statistic,
                env.cumulative_cost(),
                if decision.used_baseline { "yes" } else { "no" }
            );
        }
        state = r.next_state;
        if r.done {
            break;
        }
    }
    let summary = agent.end_episode();
    println!(
        "\nepisode summary: usage {:.1}%, avg cost {:.3}, violated: {}",
        summary.avg_usage_percent, summary.avg_cost, summary.violated
    );
}
