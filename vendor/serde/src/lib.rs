//! Offline stand-in for `serde`.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. It keeps the parts the codebase actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs and enums
//!   (named-field structs, tuple structs, unit/tuple/struct enum variants);
//! * `serde::{Serialize, Deserialize}` trait imports;
//! * round-tripping through `serde_json::{to_string, from_str}`.
//!
//! Instead of serde's visitor-based zero-copy data model, everything funnels
//! through an owned JSON-like [`Value`]. That is entirely sufficient for the
//! small config/message payloads this workspace serializes, and it keeps the
//! vendored code auditable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Owned JSON-like value — the data model of the vendored framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64` round-trips losslessly).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` when this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as an `f64` when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model value.
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data-model value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) => Ok(*f as $t),
                    _ => Err(DeError::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    _ => Err(DeError::msg(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// The data model is its own (identity) serialization: this is what lets
// callers parse arbitrary JSON into a `Value` via `serde_json::from_str`
// and walk it generically (the bench-regression differ does).
impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::msg("expected array"))?;
        if items.len() != N {
            return Err(DeError::msg("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (o, item) in out.iter_mut().zip(items) {
            *o = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Arr(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::msg("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Arr(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::msg("expected 3-element array")),
        }
    }
}

// Maps serialize as arrays of `[key, value]` pairs so non-string keys work.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::msg("expected array of pairs"))?;
        let mut map = HashMap::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            let (k, val) = <(K, V)>::from_value(item)?;
            map.insert(k, val);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::msg("expected array of pairs"))?;
        let mut map = BTreeMap::new();
        for item in items {
            let (k, val) = <(K, V)>::from_value(item)?;
            map.insert(k, val);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.serialize_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.serialize_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.serialize_value()).unwrap());
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].serialize_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u8> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::UInt(7)).unwrap(), Some(7));
    }
}
