//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros so the workspace's benchmark
//! files compile and run without the real crate. Measurement is deliberately
//! simple: a warm-up phase sizes the iteration count to a target duration,
//! then a fixed number of timed samples yields mean / median / min
//! nanoseconds per iteration, printed in a criterion-like one-line format.
//!
//! Not implemented: statistical outlier analysis, HTML reports, comparison
//! against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A single measured sample set for one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest observed sample, nanoseconds per iteration.
    pub min_ns: f64,
}

/// The benchmark harness entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement_time: Duration,
    samples: usize,
    /// Everything measured so far (available to custom runners).
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
            samples: 20,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Shrinks warm-up/measurement time (useful in CI).
    pub fn quick() -> Self {
        Self {
            warm_up: Duration::from_millis(50),
            measurement_time: Duration::from_millis(250),
            samples: 8,
            measurements: Vec::new(),
        }
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                budget: self.warm_up,
                iters_done: 0,
                elapsed: Duration::ZERO,
            },
        };
        f(&mut bencher);
        let per_iter = match bencher.mode {
            Mode::WarmUp {
                iters_done,
                elapsed,
                ..
            } if iters_done > 0 => elapsed.as_secs_f64() / iters_done as f64,
            _ => 1e-6,
        };
        // Aim each timed sample at measurement_time / samples.
        let sample_budget = self.measurement_time.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut bencher = Bencher {
                mode: Mode::Timed {
                    iters: iters_per_sample,
                    elapsed: Duration::ZERO,
                },
            };
            f(&mut bencher);
            if let Mode::Timed { elapsed, .. } = bencher.mode {
                samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN timing sample"));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        println!(
            "{name:<48} time: [{} {} {}]  ({} iters/sample, {} samples)",
            format_ns(min),
            format_ns(median),
            format_ns(mean),
            iters_per_sample,
            samples_ns.len(),
        );
        self.measurements.push(Measurement {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
        });
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

enum Mode {
    WarmUp {
        budget: Duration,
        iters_done: u64,
        elapsed: Duration,
    },
    Timed {
        iters: u64,
        elapsed: Duration,
    },
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match &mut self.mode {
            Mode::WarmUp {
                budget,
                iters_done,
                elapsed,
            } => {
                let start = Instant::now();
                while start.elapsed() < *budget {
                    black_box(routine());
                    *iters_done += 1;
                }
                *elapsed = start.elapsed();
            }
            Mode::Timed { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = if std::env::var_os("CRITERION_QUICK").is_some() {
                $crate::Criterion::quick()
            } else {
                $crate::Criterion::default()
            };
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_function() {
        let mut c = Criterion::quick();
        c.sample_size(4).measurement_time(Duration::from_millis(40));
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        assert_eq!(c.measurements.len(), 1);
        let m = &c.measurements[0];
        assert!(
            m.mean_ns > 0.0 && m.mean_ns < 1e6,
            "implausible timing {}",
            m.mean_ns
        );
        assert!(m.min_ns <= m.mean_ns * 1.5);
    }
}
