//! JSON text serialization for the vendored `serde` stand-in.
//!
//! Provides the `to_string` / `from_str` pair the workspace uses, backed by a
//! small recursive-descent JSON parser and a writer over [`serde::Value`].
//! Floats are written with Rust's shortest-roundtrip formatting so
//! `f64 -> JSON -> f64` is lossless.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised by [`to_string`] or [`from_str`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serializes a value to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = format!("{f:?}");
        out.push_str(&text);
    } else {
        // JSON has no infinities/NaN; encode them as tagged strings so they
        // at least round-trip through our own parser.
        write_escaped(&format!("{f}"), out);
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("malformed array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error(format!("malformed object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape sequence".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                    );
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(3u32, 0.25f64), (7, 0.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_properly() {
        let s = String::from("a \"quoted\"\nline");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }
}
