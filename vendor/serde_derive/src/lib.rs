//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! the item shapes this workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs,
//! * enums with unit, tuple and struct variants.
//!
//! `#[serde(skip)]` on named struct fields is honored (omitted when
//! serializing, `Default::default()` when deserializing). Generics and every
//! other `#[serde(...)]` attribute are intentionally unsupported and produce
//! a compile error, so silent misbehaviour is impossible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive is attached to.
enum Item {
    /// `struct Name { a: T, b: U }` — fields carry their `#[serde(skip)]`
    /// flag.
    NamedStruct {
        name: String,
        fields: Vec<(String, bool)>,
    },
    /// `struct Name(T, U);`
    TupleStruct { name: String, arity: usize },
    /// `enum Name { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Splits a token list on commas that sit outside any `<...>` nesting.
/// (Brackets/braces/parens arrive pre-grouped, so only angle brackets need
/// explicit depth tracking.)
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Removes `#[...]` attribute pairs (including doc comments) from a token
/// list.
fn strip_attributes(tokens: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip `#` and the following `[...]` group (and an optional
                // `!` for inner attributes, which cannot appear here anyway).
                i += 1;
                if let Some(TokenTree::Punct(bang)) = tokens.get(i) {
                    if bang.as_char() == '!' {
                        i += 1;
                    }
                }
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            t => {
                out.push(t.clone());
                i += 1;
            }
        }
    }
    out
}

/// Whether the chunk's attributes contain `#[serde(skip)]`.
fn has_serde_skip(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                    let text = g.stream().to_string().replace(' ', "");
                    if text.contains("serde(skip)") {
                        return true;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    false
}

/// Field name = the identifier immediately before the first top-level `:`.
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let chunk = strip_attributes(chunk);
    let mut last_ident: Option<String> = None;
    for t in &chunk {
        match t {
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            _ => {}
        }
    }
    None
}

/// Parses `(name, skipped)` pairs; `#[serde(skip)]` fields are serialized as
/// nothing and deserialized via `Default::default()`.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<(String, bool)> {
    split_top_level_commas(group_tokens)
        .iter()
        .filter_map(|chunk| field_name(chunk).map(|name| (name, has_serde_skip(chunk))))
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attributes(&tokens);
    let mut i = 0;
    // Skip visibility (`pub`, `pub(crate)`, ...).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "pub" => i += 1,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => i += 1,
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored shim");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level_commas(&inner)
                    .iter()
                    .filter(|c| !c.is_empty())
                    .count();
                Item::TupleStruct { name, arity }
            }
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let variants = split_top_level_commas(&inner)
                .iter()
                .map(|chunk| strip_attributes(chunk))
                .filter(|chunk| !chunk.is_empty())
                .map(|chunk| {
                    let vname = match &chunk[0] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive: expected variant name, found {other}"),
                    };
                    let kind = match chunk.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            let arity = split_top_level_commas(&inner)
                                .iter()
                                .filter(|c| !c.is_empty())
                                .count();
                            VariantKind::Tuple(arity)
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Struct(
                                parse_named_fields(&inner)
                                    .into_iter()
                                    .map(|(n, _)| n)
                                    .collect(),
                            )
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Implements `serde::Serialize` (vendored shim) for the annotated item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .filter(|(_, skipped)| !skipped)
                .map(|(f, _)| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("v{i}")).collect();
                            let sers: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(String::from(\"{vn}\"), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                sers.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(String::from(\"{f}\"), ::serde::Serialize::serialize_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(String::from(\"{vn}\"), ::serde::Value::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Implements `serde::Deserialize` (vendored shim) for the annotated item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|(f, skipped)| {
                    if *skipped {
                        format!("{f}: Default::default()")
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| ::serde::DeError::msg(\"missing field `{f}` in {name}\"))?)?"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::DeError::msg(\"missing tuple field {i} in {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let items = v.as_arr().ok_or_else(|| ::serde::DeError::msg(\"expected array for {name}\"))?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::DeError::msg(\"missing field {i} of {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = payload.as_arr().ok_or_else(|| ::serde::DeError::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.get(\"{f}\").ok_or_else(|| ::serde::DeError::msg(\"missing field `{f}` of {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{\n{}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let ::serde::Value::Obj(pairs) = v {{\n\
                             if let Some((tag, payload)) = pairs.first() {{\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n{}\n_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::msg(\"unrecognized variant for {name}\"))\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
