//! Offline stand-in for `rayon`.
//!
//! The registry mirror is unreachable from this build environment, so the
//! workspace vendors a minimal data-parallelism layer under the `rayon` name.
//! It supports the call shapes the orchestrator uses:
//!
//! ```ignore
//! items.par_iter_mut().enumerate().map(|(i, x)| ...).collect::<Vec<_>>();
//! items.par_iter_mut().zip(other.par_iter_mut()).for_each(|(a, b)| ...);
//! rayon::join(|| ..., || ...);
//! ```
//!
//! Execution model: the element sequence is materialized (the elements are
//! references, so this is cheap), split into one contiguous chunk per worker,
//! and processed on `std::thread::scope` threads. Small inputs run inline to
//! avoid spawn overhead. There is no work stealing; the per-slice workloads
//! this repository parallelizes are statistically balanced.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The machine's available parallelism, resolved once per process.
///
/// `std::thread::available_parallelism` walks the cgroup filesystem on
/// containerized Linux hosts (tens of microseconds per call) — far too slow
/// for hot-path callers that consult the thread count per kernel invocation.
/// The value is a process-lifetime constant, so it is cached.
fn machine_parallelism() -> usize {
    static MACHINE: OnceLock<usize> = OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads the shim will use (`rayon::current_num_threads`).
///
/// Honors `RAYON_NUM_THREADS` like the real crate (a positive integer caps
/// the pool; `1` forces fully sequential execution), falling back to the
/// machine's available parallelism. The environment variable is re-read on
/// every call — the determinism tests and `fleet_runner` set it mid-process
/// and expect subsequent parallel calls to honor it — but the machine
/// fallback is cached for the life of the process.
pub fn current_num_threads() -> usize {
    if let Some(raw) = std::env::var_os("RAYON_NUM_THREADS") {
        if let Ok(n) = raw.to_string_lossy().trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    machine_parallelism()
}

/// Inputs shorter than this are processed inline — thread spawn overhead
/// would dominate.
const MIN_PARALLEL_LEN: usize = 2;

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: worker panicked"))
    })
}

/// A "parallel iterator": a plan over an ordinary iterator whose `map`
/// closure is executed on worker threads at the terminal operation.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Zips two parallel iterators element-wise.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter {
            inner: self.inner.zip(other.inner),
        }
    }

    /// Registers the per-element closure; it runs on worker threads when the
    /// terminal operation executes.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I::Item) -> R + Sync,
        R: Send,
    {
        ParMap {
            inner: self.inner,
            f,
        }
    }

    /// Runs `f` over every element on worker threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let _ = ParMap {
            inner: self.inner,
            f: |item| f(item),
        }
        .run();
    }
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    fn run(self) -> Vec<R> {
        let items: Vec<I::Item> = self.inner.collect();
        let n = items.len();
        let workers = current_num_threads().min(n.max(1));
        let f = &self.f;
        if workers <= 1 || n < MIN_PARALLEL_LEN {
            return items.into_iter().map(f).collect();
        }
        // One contiguous chunk per worker, order restored by concatenation.
        let chunk_len = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        {
            let mut items = items.into_iter();
            loop {
                let chunk: Vec<I::Item> = items.by_ref().take(chunk_len).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
        }
        let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim: worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        for part in &mut results {
            out.append(part);
        }
        out
    }

    /// Executes the plan and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Executes the plan, discarding results.
    pub fn for_each(self) {
        let _ = self.run();
    }
}

/// Conversion traits mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{ParIter, ParMap};

    /// `.par_iter()` for shared slices.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: Send + 'a;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Creates the parallel-iterator plan.
        fn par_iter(&'a self) -> ParIter<Self::Iter>;
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter { inner: self.iter() }
        }
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter { inner: self.iter() }
        }
    }

    /// `.par_iter_mut()` for exclusive slices.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: Send + 'a;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Creates the parallel-iterator plan.
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
            ParIter {
                inner: self.iter_mut(),
            }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
            ParIter {
                inner: self.iter_mut(),
            }
        }
    }

    /// `.into_par_iter()` for owning containers and ranges.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Underlying sequential iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Creates the parallel-iterator plan.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter {
                inner: self.into_iter(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter { inner: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_mutates_every_element() {
        let mut v: Vec<i64> = vec![1; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn enumerate_and_zip_line_up() {
        let mut a = vec![0usize; 64];
        let b: Vec<usize> = (0..64).collect();
        let sums: Vec<usize> = a
            .par_iter_mut()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| {
                *x = i;
                *x + *y
            })
            .collect();
        assert_eq!(sums, (0..64).map(|i| 2 * i).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
