//! Offline stand-in for the `rand` crate.
//!
//! Exposes the API subset this workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `seq::SliceRandom::shuffle` and
//! `thread_rng` — over a simple, fast generator. The statistical quality of
//! the underlying xoshiro256++ stream is more than adequate for weight
//! initialization, exploration noise and shuffling.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution of real
/// `rand`, folded into a single trait).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + (high - low) * f64::sample(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high, "gen_range requires low < high");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is negligible for the spans this workspace uses.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, i64, u32, u64, usize);

/// User-facing random-value API, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::sample_range(range.start, range.end, self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice utilities (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place random permutation.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// xoshiro256++ by Blackman & Vigna — the default generator of the shim.
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256PlusPlus {
    state: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_splitmix(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_splitmix(seed)
    }
}

/// A process-global, time-seeded generator (`rand::thread_rng`).
pub struct ThreadRng {
    inner: Xoshiro256PlusPlus,
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Creates a fresh, non-deterministically seeded generator.
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    let unique = COUNTER.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
    ThreadRng {
        inner: Xoshiro256PlusPlus::seed_from_u64(nanos ^ unique),
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn unit_interval_samples_stay_in_bounds_and_vary() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle left 50 elements untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
