//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: range
//! strategies over numbers, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, `Just`, `Strategy::{prop_map, prop_flat_map, boxed}`,
//! the `prop_oneof!` union, the `proptest!` macro with an optional
//! `ProptestConfig`, and the `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike real proptest there is **no generic shrinking**: a failing case
//! panics with the generated inputs unshrunk (tests derive their seed from
//! the test name, so failures are reproducible; domain-specific minimizers —
//! e.g. `crates/chaos`'s scenario shrinker — fill the gap where it matters).
//!
//! Mirroring real proptest, two environment variables tune a run without
//! recompiling: `PROPTEST_CASES` overrides the default case count (explicit
//! `ProptestConfig::with_cases` calls win over it), and `PROPTEST_SEED`
//! perturbs every test's deterministic name-derived seed to explore a fresh
//! region of the input space. CI pins both for reproducibility.

use rand::{Rng, RngCore, SeedableRng};

/// Environment variable overriding [`ProptestConfig::default`]'s case count.
pub const CASES_ENV: &str = "PROPTEST_CASES";

/// Environment variable XOR-ed into every test's name-derived RNG seed.
pub const SEED_ENV: &str = "PROPTEST_SEED";

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count (immune to `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable through the `PROPTEST_CASES` environment
    /// variable — the knob CI uses to pin a bounded fuzz budget.
    fn default() -> Self {
        let cases = std::env::var(CASES_ENV)
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|c| *c > 0)
            .unwrap_or(64);
        Self { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy: Sized {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value: `f` turns the
    /// intermediate into the strategy the final value is drawn from. The
    /// combinator for "pick a size, then generate structure of that size".
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies over one value
    /// type can share a container (the building block of [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`]: the
/// generic `generate` collapses to a `&mut dyn RngCore` entry point.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut dyn RngCore) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut dyn RngCore) -> S::Value {
        self.generate(rng)
    }
}

/// Sized adapter lending any `R: RngCore + ?Sized` out as `&mut dyn RngCore`
/// (a direct unsizing coercion would require `R: Sized`).
struct DynRng<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for DynRng<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A type-erased strategy (`proptest`'s `BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        let mut adapter = DynRng(rng);
        self.0.generate_dyn(&mut adapter)
    }
}

/// Uniform choice among boxed strategies over one value type — the engine
/// behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list (nothing to choose).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                // Left-to-right field order, mirroring real proptest's tuple
                // strategies (generation order is part of determinism).
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(f64, i32, i64, u32, u64, usize);

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Closed interval: scale a [0, 1) draw onto [lo, hi] and include the
        // endpoint via the final multiplication.
        lo + (hi - lo) * (rng.next_u64() as f64 / u64::MAX as f64)
    }
}

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                // Span arithmetic in u128 so `lo..=MAX` cannot overflow.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(i32, i64, u32, u64, usize);

/// `prop::...` namespace mirroring real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{RngCore, Strategy};
        use rand::Rng;

        /// Length specification: a fixed `usize` or a `Range<usize>`.
        pub trait IntoLen {
            /// Draws a concrete length.
            fn pick<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize;
        }

        impl IntoLen for usize {
            fn pick<R: RngCore + ?Sized>(&self, _rng: &mut R) -> usize {
                *self
            }
        }

        impl IntoLen for std::ops::Range<usize> {
            fn pick<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy generating vectors of values from an element strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from fixed collections (`prop::sample`).
    pub mod sample {
        use super::super::{RngCore, Strategy};
        use rand::Rng;

        /// Strategy yielding a uniformly chosen clone of one of `items`.
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Uniform choice from a fixed list; panics on an empty list.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select needs at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
                let idx = rng.gen_range(0..self.items.len());
                self.items[idx].clone()
            }
        }
    }

    /// Boolean strategies (`prop::bool`).
    pub mod bool {
        use super::super::{RngCore, Strategy};
        use rand::Rng;

        /// Strategy over both booleans, fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The `prop::bool::ANY` of real proptest.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// Builds the deterministic per-test RNG: seed = FNV-1a of the test path,
/// XOR-ed with `PROPTEST_SEED` when that variable is set (so a fuzz sweep
/// can explore fresh input regions while staying reproducible — rerun with
/// the same value to replay).
#[doc(hidden)]
pub fn test_rng(name: &str) -> rand::Xoshiro256PlusPlus {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    if let Some(seed) = std::env::var(SEED_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        hash ^= seed;
    }
    rand::Xoshiro256PlusPlus::seed_from_u64(hash)
}

#[doc(hidden)]
pub fn generate_case<S: Strategy, R: RngCore + ?Sized>(strategy: &S, rng: &mut R) -> S::Value {
    strategy.generate(rng)
}

/// Uniform choice among strategies over one value type (unweighted form of
/// proptest's macro; bias a branch by listing it more than once).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, reporting the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Mirrors proptest's macro for the
/// `fn name(binding in strategy, ...) { body }` form with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $binding = $crate::generate_case(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..=1.0, n in 1usize..5) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes_and_maps(v in prop::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let s = (0.0f64..1.0).prop_map(|x| x * 10.0);
        let mut rng = crate::test_rng("map");
        for _ in 0..100 {
            let v = crate::generate_case(&s, &mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn flat_map_builds_dependent_strategies() {
        // Pick a length, then a vector of exactly that length: the shape
        // every size-then-structure generator uses.
        let s = (1usize..=4)
            .prop_flat_map(|n| prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        let mut rng = crate::test_rng("flat_map");
        for _ in 0..200 {
            let (n, v) = crate::generate_case(&s, &mut rng);
            assert_eq!(v.len(), n);
            assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn just_select_bool_and_inclusive_int_ranges_generate_in_domain() {
        let mut rng = crate::test_rng("domains");
        let just = Just(7u32);
        let select = prop::sample::select(vec!["a", "b", "c"]);
        let mut seen_true = false;
        let mut seen_false = false;
        let mut hit_hi = false;
        for _ in 0..300 {
            assert_eq!(crate::generate_case(&just, &mut rng), 7);
            assert!(["a", "b", "c"].contains(&crate::generate_case(&select, &mut rng)));
            match crate::generate_case(&prop::bool::ANY, &mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
            let n = crate::generate_case(&(2u32..=5), &mut rng);
            assert!((2..=5).contains(&n));
            hit_hi |= n == 5;
        }
        assert!(seen_true && seen_false, "coin never landed on both sides");
        assert!(hit_hi, "inclusive range never produced its upper endpoint");
    }

    #[test]
    fn oneof_unions_heterogeneous_strategies_and_covers_every_arm() {
        let s = prop_oneof![Just(0u32), 10u32..20, (90u32..=99).prop_map(|x| x),];
        let mut rng = crate::test_rng("oneof");
        let (mut lo, mut mid, mut hi) = (false, false, false);
        for _ in 0..300 {
            match crate::generate_case(&s, &mut rng) {
                0 => lo = true,
                x if (10..20).contains(&x) => mid = true,
                x if (90..=99).contains(&x) => hi = true,
                other => panic!("value {other} outside every arm"),
            }
        }
        assert!(lo && mid && hi, "some arm never fired: {lo} {mid} {hi}");
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let s = ((0u32..10), Just("x"), prop::bool::ANY).prop_map(|(n, tag, b)| (n, tag, b));
        let mut rng = crate::test_rng("tuples");
        for _ in 0..100 {
            let (n, tag, _b) = crate::generate_case(&s, &mut rng);
            assert!(n < 10);
            assert_eq!(tag, "x");
        }
    }

    #[test]
    fn boxed_strategies_share_a_container() {
        let options: Vec<BoxedStrategy<u64>> = vec![(0u64..5).boxed(), Just(42u64).boxed()];
        let union = Union::new(options);
        let mut rng = crate::test_rng("boxed");
        for _ in 0..100 {
            let v = crate::generate_case(&union, &mut rng);
            assert!(v < 5 || v == 42);
        }
    }
}
