//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: range
//! strategies over numbers, `prop::collection::vec`, `Strategy::prop_map`,
//! the `proptest!` macro with an optional `ProptestConfig`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the generated inputs unshrunk (tests derive their seed from the test name,
//! so failures are reproducible). For the invariant-style properties in this
//! repository that trade-off is acceptable.

use rand::{Rng, RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy: Sized {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(f64, i32, i64, u32, u64, usize);

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Closed interval: scale a [0, 1) draw onto [lo, hi] and include the
        // endpoint via the final multiplication.
        lo + (hi - lo) * (rng.next_u64() as f64 / u64::MAX as f64)
    }
}

/// `prop::...` namespace mirroring real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{RngCore, Strategy};
        use rand::Rng;

        /// Length specification: a fixed `usize` or a `Range<usize>`.
        pub trait IntoLen {
            /// Draws a concrete length.
            fn pick<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize;
        }

        impl IntoLen for usize {
            fn pick<R: RngCore + ?Sized>(&self, _rng: &mut R) -> usize {
                *self
            }
        }

        impl IntoLen for std::ops::Range<usize> {
            fn pick<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy generating vectors of values from an element strategy.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Builds the deterministic per-test RNG (seed = FNV-1a of the test path).
#[doc(hidden)]
pub fn test_rng(name: &str) -> rand::Xoshiro256PlusPlus {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    rand::Xoshiro256PlusPlus::seed_from_u64(hash)
}

#[doc(hidden)]
pub fn generate_case<S: Strategy, R: RngCore + ?Sized>(strategy: &S, rng: &mut R) -> S::Value {
    strategy.generate(rng)
}

/// Asserts a condition inside a property, reporting the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Mirrors proptest's macro for the
/// `fn name(binding in strategy, ...) { body }` form with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $binding = $crate::generate_case(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..=1.0, n in 1usize..5) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes_and_maps(v in prop::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let s = (0.0f64..1.0).prop_map(|x| x * 10.0);
        let mut rng = crate::test_rng("map");
        for _ in 0..100 {
            let v = crate::generate_case(&s, &mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }
}
