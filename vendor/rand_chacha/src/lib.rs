//! Offline stand-in for `rand_chacha`.
//!
//! Implements an actual ChaCha8 keystream generator (D. J. Bernstein's
//! ChaCha with 8 rounds) behind the [`ChaCha8Rng`] name the workspace uses.
//! The word-level output order differs from the upstream crate, so seeded
//! streams are deterministic but not bit-identical to `rand_chacha` —
//! everything in this repository only relies on determinism, not on the
//! exact upstream stream.

use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// ChaCha8 random number generator.
///
/// Serializes its full stream state (cipher input block, current keystream
/// block and read index), so a deserialized generator continues the exact
/// word sequence of the original — the property checkpoint/replay relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaCha8Rng {
    /// Cipher state input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    /// Builds a generator from a full 32-byte key.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0u32; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 32-byte key with splitmix64.
        let mut sm = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x: f64 = rng.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for b in buckets {
            let frac = b as f64 / n as f64;
            assert!(
                (frac - 0.1).abs() < 0.02,
                "bucket fraction {frac} far from 0.1"
            );
        }
    }

    #[test]
    fn serde_round_trip_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..7 {
            rng.next_u32(); // leave the generator mid-block
        }
        let json = serde_json::to_string(&rng).unwrap();
        let mut restored: ChaCha8Rng = serde_json::from_str(&json).unwrap();
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut copy = rng.clone();
        for _ in 0..20 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }
}
