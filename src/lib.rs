//! # onslicing
//!
//! Facade crate for the OnSlicing reproduction: re-exports every workspace
//! crate under a single dependency so examples and downstream users can write
//! `use onslicing::core::...`.
//!
//! See `README.md` and `DESIGN.md` at the repository root for the system
//! inventory and the experiment index.

pub use onslicing_core as core;
pub use onslicing_domains as domains;
pub use onslicing_fleet as fleet;
pub use onslicing_netsim as netsim;
pub use onslicing_nn as nn;
pub use onslicing_replay as replay;
pub use onslicing_rl as rl;
pub use onslicing_scenario as scenario;
pub use onslicing_slices as slices;
pub use onslicing_traffic as traffic;
