//! End-to-end tests of the scenario engine: mid-run slice admission and
//! teardown, fault pricing, catalogue integrity and fixed-seed determinism.

use onslicing::domains::SliceId;
use onslicing::scenario::{
    builtin, run_scenario, Scenario, ScenarioConfig, ScenarioEngine, ScenarioEvent, SliceSpec,
};
use onslicing::slices::SliceKind;

/// The tentpole acceptance path: a slice admitted mid-run via a scenario
/// event trains online and appears in the per-slice metrics, and a
/// torn-down slice stops consuming capacity.
#[test]
fn admitted_slice_trains_online_and_torn_down_slice_releases_capacity() {
    let scenario = Scenario::new("lifecycle-e2e", 16, 64)
        .with_capacity(2.0)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs))
        .at(
            16,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Rdc),
            },
        )
        .at(48, ScenarioEvent::TeardownSlice { slice: 0 });
    let mut engine = ScenarioEngine::new(scenario, ScenarioConfig::default()).unwrap();
    let report = engine.run();

    // The admitted slice (id 2) appears in the per-slice metrics with its
    // own episodes and actually trained online (π_θ transitions consumed).
    assert_eq!(report.slices.len(), 3);
    let admitted = report.slices.iter().find(|s| s.id == 2).unwrap();
    assert_eq!(admitted.kind, SliceKind::Rdc);
    assert_eq!(admitted.admitted_at_slot, 16);
    assert!(admitted.episodes >= 2, "48 live slots = 3 full episodes");
    assert!(
        admitted.policy_updates > 0,
        "the admitted slice must train online"
    );
    assert!(admitted.avg_usage_percent > 0.0);

    // The torn-down slice (id 0) is gone from every domain manager, so its
    // allocation no longer counts against any capacity.
    let orch = engine.orchestrator();
    assert_eq!(orch.num_slices(), 2);
    assert!(orch.index_of(SliceId(0)).is_none());
    assert!(!orch.domains().has_slice(SliceId(0)));
    for manager in orch.domains().managers() {
        assert_eq!(manager.num_slices(), 2);
        assert!(manager.allocation_of(SliceId(0)).is_none());
        for resource in manager.resources() {
            assert!(
                manager.total_enforced_share(*resource) <= orch.domains().capacity_of(*resource),
                "survivors' allocations must fit without the torn-down slice"
            );
        }
    }
    let torn = report.slices.iter().find(|s| s.id == 0).unwrap();
    assert_eq!(torn.torn_down_at_slot, Some(48));
    assert!(!report.has_non_finite());
}

/// Every built-in scenario is valid, JSON round-trips, and the cheap ones
/// run to completion (the full catalogue runs in release mode via the
/// `scenario_runner` CI smoke step).
#[test]
fn builtin_catalogue_is_valid_and_runs() {
    let catalogue = builtin::all();
    assert_eq!(catalogue.len(), builtin::BUILTIN_NAMES.len());
    for scenario in &catalogue {
        scenario.validate().unwrap();
        let back = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(&back, scenario);
    }
    for name in ["steady", "slice-churn"] {
        let report =
            run_scenario(builtin::by_name(name).unwrap(), ScenarioConfig::default()).unwrap();
        assert!(report.slice_episodes > 0, "{name} must close episodes");
        assert!(
            !report.has_non_finite(),
            "{name} must not produce non-finite metrics"
        );
        assert!(
            report.slices.iter().all(|s| s.episodes > 0),
            "{name}: every slice must live at least one episode"
        );
    }
}

/// Two runs of the same scenario with the same seed agree on every metric
/// except wall clock — including through faults, which must also raise the
/// coordination pressure they are designed to create.
#[test]
fn fault_scenario_is_deterministic_and_raises_coordination_pressure() {
    let scenario = builtin::by_name("tn-degradation").unwrap();
    let config = ScenarioConfig {
        seed: 5,
        ..ScenarioConfig::default()
    };
    let a = run_scenario(scenario.clone(), config).unwrap();
    let b = run_scenario(scenario, config).unwrap();
    assert!(a.deterministic_fields_eq(&b), "fixed-seed runs must agree");

    let steady = run_scenario(builtin::steady(), config).unwrap();
    assert!(
        a.avg_coordination_rounds > steady.avg_coordination_rounds,
        "a transport fault must force extra agent<->manager interactions \
         ({:.2} vs steady {:.2})",
        a.avg_coordination_rounds,
        steady.avg_coordination_rounds
    );
}
