//! Checkpoint/replay contract tests over the whole stack:
//!
//! * checkpoint → restore → run equals the uninterrupted run, for random
//!   seeds, checkpoint slots and event mixes (property tests);
//! * a snapshot's JSON round-trip is lossless down to the last weight and
//!   RNG word (canonical bytes in, identical bytes out).
//!
//! The `RAYON_NUM_THREADS` determinism gate lives in its own single-test
//! binary (`crates/replay/tests/thread_determinism.rs`): toggling the
//! variable is only safe when no other test in the process reads it
//! concurrently.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use onslicing::nn::{Activation, Mlp};
use onslicing::replay::{Checkpoint, TelemetryRecorder};
use onslicing::scenario::{Scenario, ScenarioConfig, ScenarioEngine, ScenarioEvent, SliceSpec};
use onslicing::slices::SliceKind;

/// A CI-scale two-slice scenario with an optional burst + fault mix.
fn quick_scenario(with_events: bool) -> Scenario {
    let mut scenario = Scenario::new("ckpt-quick", 8, 20)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Rdc));
    if with_events {
        scenario = scenario
            .at(
                3,
                ScenarioEvent::TrafficBurst {
                    slice: 0,
                    scale: 1.7,
                    duration_slots: 5,
                },
            )
            .at(
                6,
                ScenarioEvent::DomainFault {
                    domain: onslicing::domains::DomainKind::Transport,
                    capacity_scale: 0.7,
                    duration_slots: 6,
                },
            );
    }
    scenario
}

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole contract: interrupting a run at any slot, serializing
    /// the engine to JSON and restoring it into a fresh engine reproduces
    /// the remaining slots' telemetry exactly — same per-slot costs,
    /// rewards, λ values and episode outcomes as the uninterrupted run.
    #[test]
    fn checkpoint_restore_step_equals_uninterrupted_run(
        seed in 0u64..1_000,
        checkpoint_slot in 2usize..18,
        event_mix in 0usize..2,
    ) {
        let scenario = quick_scenario(event_mix == 1);

        let mut reference = ScenarioEngine::new(scenario.clone(), config(seed)).unwrap();
        let mut full = TelemetryRecorder::new(&reference);
        let ref_report = reference.run_with_observer(&mut full);
        let full_trace = full.finalize();

        let mut engine = ScenarioEngine::new(scenario, config(seed)).unwrap();
        engine.run_until(checkpoint_slot, &mut ());
        let checkpoint = Checkpoint::capture(&engine);
        drop(engine);
        let mut restored = Checkpoint::from_json(&checkpoint.to_json()).unwrap().restore();
        prop_assert_eq!(restored.current_slot(), checkpoint_slot);
        let mut tail = TelemetryRecorder::new(&restored);
        let resumed_report = restored.run_with_observer(&mut tail);
        let tail_trace = tail.finalize();

        prop_assert!(ref_report.deterministic_fields_eq(&resumed_report));
        let (expected_slots, expected_episodes) = full_trace.suffix_from(checkpoint_slot);
        prop_assert_eq!(&tail_trace.slots, &expected_slots);
        prop_assert_eq!(&tail_trace.episodes, &expected_episodes);
    }

    /// A snapshot JSON round-trip is lossless: deserializing and
    /// re-serializing a mid-run engine reproduces the checkpoint byte for
    /// byte (BTreeMap-backed state makes the representation canonical), so
    /// every network weight, Adam moment and RNG stream survives exactly.
    #[test]
    fn snapshot_json_round_trip_is_byte_lossless(seed in 0u64..1_000) {
        let mut engine = ScenarioEngine::new(quick_scenario(true), config(seed)).unwrap();
        engine.run_until(5, &mut ());
        let json = serde_json::to_string(&engine).unwrap();
        let restored: ScenarioEngine = serde_json::from_str(&json).unwrap();
        let rejson = serde_json::to_string(&restored).unwrap();
        prop_assert_eq!(json, rejson);
    }

    /// Weight-level exactness: an MLP's parameters survive the JSON round
    /// trip bit for bit, and a mid-block ChaCha8 stream resumes on the
    /// exact next word.
    #[test]
    fn weights_and_rng_streams_round_trip_exactly(seed in 0u64..1_000_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mlp = Mlp::new(&[6, 12, 4], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let back: Mlp = serde_json::from_str(&serde_json::to_string(&mlp).unwrap()).unwrap();
        prop_assert_eq!(mlp.parameters(), back.parameters());

        rng.next_u32(); // odd offset: the restored stream must continue mid-block
        let mut restored: ChaCha8Rng =
            serde_json::from_str(&serde_json::to_string(&rng).unwrap()).unwrap();
        for _ in 0..32 {
            prop_assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
