//! Integration tests spanning the whole workspace: traffic → simulator →
//! domain managers → agents → orchestrator, at a scale small enough for CI.

use onslicing::core::{
    evaluate_policy, AgentConfig, CoordinationMode, DeploymentBuilder, ModelBasedPolicy,
    RuleBasedBaseline, SliceEnvironment,
};
use onslicing::netsim::NetworkConfig;
use onslicing::slices::{Sla, SliceKind};
use onslicing::traffic::DiurnalTraceConfig;

fn small_env(kind: SliceKind, horizon: usize, seed: u64) -> SliceEnvironment {
    let trace = match kind {
        SliceKind::Mar => DiurnalTraceConfig::mar_default(),
        SliceKind::Hvs => DiurnalTraceConfig::hvs_default(),
        SliceKind::Rdc => DiurnalTraceConfig::rdc_default(),
    };
    SliceEnvironment::with_trace_config(
        kind,
        Sla::for_kind(kind),
        NetworkConfig::testbed_default(),
        trace,
        horizon,
        seed,
    )
}

/// The headline qualitative result of Table 1: the grid-searched baseline is
/// safe but expensive, and the model-based method is even more expensive.
#[test]
fn baseline_is_safe_and_model_based_is_more_expensive() {
    let network = NetworkConfig::testbed_default();
    let mut baseline_usage = 0.0;
    let mut baseline_violation = 0.0;
    let mut model_usage = 0.0;
    for kind in SliceKind::ALL {
        let sla = Sla::for_kind(kind);
        let baseline = RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            5,
            21,
        );
        let model = ModelBasedPolicy::new(kind, sla, kind.default_peak_users_per_second());
        let mut env = small_env(kind, 48, 31);
        let b = evaluate_policy(&baseline, &mut env, 1);
        let m = evaluate_policy(&model, &mut env, 1);
        baseline_usage += b.avg_usage_percent;
        baseline_violation += b.violation_percent;
        model_usage += m.avg_usage_percent;
    }
    assert_eq!(
        baseline_violation, 0.0,
        "the rule-based baseline must never violate"
    );
    assert!(
        model_usage > baseline_usage,
        "model-based ({model_usage:.1}) should use more than the baseline ({baseline_usage:.1})"
    );
}

/// The full OnSlicing pipeline: calibration, offline imitation, online
/// learning, evaluation — and the safety claim that the evaluation violates
/// (almost) nothing.
#[test]
fn onslicing_pipeline_learns_without_widespread_violations() {
    let mut orch = DeploymentBuilder::new()
        .agent_config(AgentConfig::onslicing())
        .scaled_down(16)
        .seed(77)
        .build();
    orch.offline_pretrain_all(2);
    let curve = orch.run_online(2);
    assert_eq!(curve.len(), 2);
    let test = orch.evaluate(2);
    assert_eq!(test.num_slice_episodes, 6);
    assert!(test.avg_usage_percent > 0.0 && test.avg_usage_percent < 100.0);
    assert!(
        test.violation_percent <= 34.0,
        "OnSlicing should keep most evaluation episodes violation-free, got {}%",
        test.violation_percent
    );
}

/// OnSlicing should be cheaper than the baseline it imitated (or at worst
/// comparable), because the learner only has to shave over-provisioned
/// dimensions.
#[test]
fn onslicing_is_not_more_expensive_than_its_baseline() {
    let mut orch = DeploymentBuilder::new()
        .agent_config(AgentConfig::onslicing())
        .scaled_down(16)
        .seed(13)
        .build();
    orch.offline_pretrain_all(2);
    orch.run_online(2);
    let test = orch.evaluate(1);

    let network = NetworkConfig::testbed_default();
    let mut baseline_usage = 0.0;
    for kind in SliceKind::ALL {
        let sla = Sla::for_kind(kind);
        let baseline = RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            4,
            13,
        );
        let mut env = small_env(kind, 16, 99);
        baseline_usage += evaluate_policy(&baseline, &mut env, 1).avg_usage_percent;
    }
    baseline_usage /= 3.0;
    // After only two short online epochs the learner is still essentially the
    // (imperfect) clone of the baseline, so this only asserts that it stays in
    // the baseline's ballpark instead of drifting toward extreme allocations;
    // the paper-scale runs are where the usage drops *below* the baseline.
    assert!(
        test.avg_usage_percent <= baseline_usage * 1.6,
        "OnSlicing usage {:.1}% should stay in the ballpark of the baseline {:.1}% it imitated",
        test.avg_usage_percent,
        baseline_usage
    );
}

/// The coordination mechanism must always hand the domain managers a feasible
/// allocation, whatever the agents ask for.
#[test]
fn coordination_always_produces_feasible_allocations() {
    for mode in [CoordinationMode::default(), CoordinationMode::Projection] {
        let mut orch = DeploymentBuilder::new()
            .agent_config(AgentConfig::onrl()) // wild, untrained actions
            .coordination(mode)
            .scaled_down(8)
            .seed(3)
            .build();
        orch.env_mut().reset_all();
        for _ in 0..8 {
            let outcome = orch.run_slot(true);
            assert!(
                orch.domains().is_feasible(outcome.executed.iter()),
                "{mode:?}: executed allocation must respect every capacity"
            );
        }
    }
}

/// The 5G NR substrate must dominate 4G LTE on ping latency, as in Fig. 16.
#[test]
fn nr_outperforms_lte_on_ping_latency() {
    use onslicing::netsim::NetworkSimulator;
    let mut lte = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(1));
    let mut nr = NetworkSimulator::new(NetworkConfig::testbed_nr().with_seed(1));
    let lte_avg: f64 = (0..100).map(|_| lte.ping_rtt_ms()).sum::<f64>() / 100.0;
    let nr_avg: f64 = (0..100).map(|_| nr.ping_rtt_ms()).sum::<f64>() / 100.0;
    assert!(nr_avg < lte_avg);
}
