//! Property-based tests (proptest) on the workspace's core invariants:
//! action algebra, cost bounds, simulator sanity, coordination feasibility
//! and modifier monotonicity.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use onslicing::core::{ActionModifier, ModifierConfig};
use onslicing::domains::DomainSet;
use onslicing::netsim::{NetworkConfig, NetworkSimulator};
use onslicing::nn::{Activation, BatchWorkspace, Matrix, Mlp};
use onslicing::slices::{Action, Sla, SliceKind, SliceState, ACTION_DIM, STATE_DIM};
use onslicing::traffic::PoissonArrivals;

/// Naive `O(n³)` reference product, the specification the tiled kernels are
/// checked against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn matrix_from_pool(rows: usize, cols: usize, pool: &[f64]) -> Matrix {
    Matrix::from_vec(rows, cols, pool[..rows * cols].to_vec())
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop::collection::vec(0.0f64..=1.0, ACTION_DIM).prop_map(|v| Action::from_vec(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 9: the resource usage of any valid action stays within [0, 6] and
    /// the reward is its negation.
    #[test]
    fn action_usage_is_bounded_and_reward_is_negated(action in action_strategy()) {
        let usage = action.resource_usage();
        prop_assert!((0.0..=6.0).contains(&usage));
        prop_assert!((action.reward() + usage).abs() < 1e-12);
        prop_assert!((0.0..=100.0).contains(&action.resource_usage_percent()));
    }

    /// Round-tripping an action through its vector form is lossless.
    #[test]
    fn action_vector_round_trip(action in action_strategy()) {
        prop_assert_eq!(Action::from_vec(&action.to_vec()), action);
    }

    /// Eq. 10: the cost of any raw performance value is within [0, 1] for
    /// every slice kind.
    #[test]
    fn cost_is_always_a_probability(raw in 0.0f64..1.0e6, kind_idx in 0usize..3) {
        let sla = Sla::for_kind(SliceKind::ALL[kind_idx]);
        let cost = sla.cost_from_performance(raw);
        prop_assert!((0.0..=1.0).contains(&cost));
    }

    /// Every KPI the simulator produces passes its own validity checks and
    /// yields a finite observation vector, whatever the action and traffic.
    #[test]
    fn simulator_kpis_are_always_valid(
        action in action_strategy(),
        rate_scale in 0.0f64..=1.5,
        kind_idx in 0usize..3,
        seed in 0u64..50,
    ) {
        let kind = SliceKind::ALL[kind_idx];
        let sla = Sla::for_kind(kind);
        let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(seed));
        let rate = rate_scale * kind.default_peak_users_per_second();
        let kpi = sim.step_slice(kind, &sla, &action, rate);
        prop_assert!(kpi.validate().is_ok(), "invalid KPI: {:?}", kpi.validate());
        let state = SliceState::from_kpi(&sla, 1, 96, rate_scale, &kpi, kpi.cost);
        prop_assert!(state.is_finite());
        prop_assert_eq!(state.to_vec().len(), STATE_DIM);
    }

    /// Projection always yields a feasible allocation and never increases any
    /// share.
    #[test]
    fn projection_is_feasible_and_contractive(
        actions in prop::collection::vec(action_strategy(), 1..6)
    ) {
        let domains = DomainSet::testbed_default();
        let projected = domains.project(actions.iter());
        prop_assert!(domains.is_feasible(projected.iter()));
        for (orig, proj) in actions.iter().zip(projected.iter()) {
            for (a, b) in orig.to_vec().iter().zip(proj.to_vec().iter()) {
                prop_assert!(*b <= a + 1e-12);
            }
        }
    }

    /// The action modifier (without noise) never increases resource usage and
    /// respects its retention floor.
    #[test]
    fn modifier_is_contractive_and_floored(
        action in action_strategy(),
        betas in prop::collection::vec(0.0f64..=2.0, 6),
    ) {
        let modifier = ActionModifier::new(ModifierConfig { retention_floor: 0.6, noise_std: 0.0 });
        let mut rng = rand::thread_rng();
        let betas_arr = [betas[0], betas[1], betas[2], betas[3], betas[4], betas[5]];
        let modified = modifier.modify(&action, &betas_arr, &mut rng);
        prop_assert!(modified.resource_usage() <= action.resource_usage() + 1e-12);
        for r in onslicing::slices::ResourceKind::ALL {
            let original = action.resource_share(r);
            let new = modified.resource_share(r);
            prop_assert!(new + 1e-12 >= 0.6 * original, "floor violated: {new} < 0.6 * {original}");
        }
    }

    /// The Eq. 14 dual update keeps every beta non-negative and raises a beta
    /// only when its resource is over-requested.
    #[test]
    fn dual_update_signs_are_correct(
        actions in prop::collection::vec(action_strategy(), 1..5)
    ) {
        let mut domains = DomainSet::testbed_default();
        let excess = domains.excess(actions.iter());
        let betas = domains.update_coordination(actions.iter());
        for (i, beta) in betas.iter().enumerate() {
            prop_assert!(*beta >= 0.0);
            if excess[i] <= 0.0 {
                prop_assert!(*beta == 0.0, "beta grew for a feasible resource");
            }
        }
    }

    /// The register-tiled `matmul_into` matches the naive reference on
    /// random shapes, including empty and 1×N edge cases (every ragged-edge
    /// code path of the kernel is hit across the shape range).
    #[test]
    fn tiled_matmul_matches_naive_reference(
        m in 0usize..9,
        k in 0usize..21,
        n in 0usize..40,
        pool in prop::collection::vec(-2.0f64..2.0, 9 * 21 + 21 * 40),
    ) {
        let a = matrix_from_pool(m, k, &pool);
        let b = matrix_from_pool(k, n, &pool[9 * 21..]);
        let reference = naive_matmul(&a, &b);
        let mut tiled = Matrix::default();
        a.matmul_into(&b, &mut tiled);
        prop_assert_eq!((tiled.rows(), tiled.cols()), (m, n));
        for i in 0..m {
            for j in 0..n {
                prop_assert!(
                    (tiled.get(i, j) - reference.get(i, j)).abs() < 1e-12,
                    "({i},{j}): tiled {} vs naive {}", tiled.get(i, j), reference.get(i, j)
                );
            }
        }
        // The tiled transposed-A gradient kernel against the same reference:
        // aᵀ·b with a reinterpreted as (k × m).
        if m > 0 && k > 0 && n > 0 {
            let d = matrix_from_pool(k, m, &pool);
            let mut grad = Matrix::zeros(m, n);
            d.matmul_tn_acc_into(&b, &mut grad);
            let reference = naive_matmul(&d.transpose(), &b);
            for i in 0..m {
                for j in 0..n {
                    prop_assert!(
                        (grad.get(i, j) - reference.get(i, j)).abs() < 1e-12,
                        "tn ({i},{j}): {} vs {}", grad.get(i, j), reference.get(i, j)
                    );
                }
            }
        }
    }

    /// Poisson arrival timestamps are sorted and strictly inside the slot,
    /// whatever the rate, duration and seed.
    #[test]
    fn poisson_arrivals_are_sorted_and_within_the_slot(
        rate in 0.0f64..=20.0,
        duration in 1.0f64..=300.0,
        seed in 0u64..64,
    ) {
        let p = PoissonArrivals::new(rate, duration);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let times = p.sample(&mut rng);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "timestamps must be sorted");
        prop_assert!(times.iter().all(|&t| (0.0..duration).contains(&t)),
            "timestamps must fall within [0, {duration})");
    }

    /// The empirical mean arrival count matches `rate · duration` (a 5-sigma
    /// band around the Poisson expectation, so the property is sharp without
    /// being flaky).
    #[test]
    fn poisson_counts_match_rate_times_duration_in_expectation(
        rate in 0.5f64..=10.0,
        duration in 5.0f64..=60.0,
        seed in 0u64..16,
    ) {
        let p = PoissonArrivals::new(rate, duration);
        prop_assert!((p.expected_count() - rate * duration).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trials = 150usize;
        let total: usize = (0..trials).map(|_| p.sample(&mut rng).len()).sum();
        let mean = total as f64 / trials as f64;
        let lambda = rate * duration;
        // The mean of `trials` Poisson(λ) draws has std sqrt(λ / trials).
        let tolerance = 5.0 * (lambda / trials as f64).sqrt() + 0.5;
        prop_assert!(
            (mean - lambda).abs() <= tolerance,
            "empirical mean {mean} should be within {tolerance} of λ = {lambda}"
        );
    }

    /// The batched MLP forward matches the per-sample forward elementwise to
    /// 1e-12 on random inputs (the batched path must be a pure reshaping of
    /// the computation, not an approximation).
    #[test]
    fn forward_batch_matches_per_sample_forward(
        pool in prop::collection::vec(-3.0f64..3.0, 6 * STATE_DIM),
        seed in 0u64..32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::onslicing_default(STATE_DIM, ACTION_DIM, Activation::Sigmoid, &mut rng);
        let batch = matrix_from_pool(6, STATE_DIM, &pool);
        let mut ws = BatchWorkspace::new();
        let batched = net.forward_batch(&batch, &mut ws);
        for b in 0..6 {
            let per_sample = net.forward(batch.row(b));
            for (x, y) in batched.row(b).iter().zip(per_sample.iter()) {
                prop_assert!((x - y).abs() < 1e-12, "row {b}: batched {x} vs per-sample {y}");
            }
        }
    }
}
