//! Property-based tests (proptest) on the workspace's core invariants:
//! action algebra, cost bounds, simulator sanity, coordination feasibility
//! and modifier monotonicity.

use proptest::prelude::*;

use onslicing::core::{ActionModifier, ModifierConfig};
use onslicing::domains::DomainSet;
use onslicing::netsim::{NetworkConfig, NetworkSimulator};
use onslicing::slices::{Action, SliceKind, SliceState, Sla, ACTION_DIM, STATE_DIM};

fn action_strategy() -> impl Strategy<Value = Action> {
    prop::collection::vec(0.0f64..=1.0, ACTION_DIM).prop_map(|v| Action::from_vec(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 9: the resource usage of any valid action stays within [0, 6] and
    /// the reward is its negation.
    #[test]
    fn action_usage_is_bounded_and_reward_is_negated(action in action_strategy()) {
        let usage = action.resource_usage();
        prop_assert!((0.0..=6.0).contains(&usage));
        prop_assert!((action.reward() + usage).abs() < 1e-12);
        prop_assert!((0.0..=100.0).contains(&action.resource_usage_percent()));
    }

    /// Round-tripping an action through its vector form is lossless.
    #[test]
    fn action_vector_round_trip(action in action_strategy()) {
        prop_assert_eq!(Action::from_vec(&action.to_vec()), action);
    }

    /// Eq. 10: the cost of any raw performance value is within [0, 1] for
    /// every slice kind.
    #[test]
    fn cost_is_always_a_probability(raw in 0.0f64..1.0e6, kind_idx in 0usize..3) {
        let sla = Sla::for_kind(SliceKind::ALL[kind_idx]);
        let cost = sla.cost_from_performance(raw);
        prop_assert!((0.0..=1.0).contains(&cost));
    }

    /// Every KPI the simulator produces passes its own validity checks and
    /// yields a finite observation vector, whatever the action and traffic.
    #[test]
    fn simulator_kpis_are_always_valid(
        action in action_strategy(),
        rate_scale in 0.0f64..=1.5,
        kind_idx in 0usize..3,
        seed in 0u64..50,
    ) {
        let kind = SliceKind::ALL[kind_idx];
        let sla = Sla::for_kind(kind);
        let mut sim = NetworkSimulator::new(NetworkConfig::testbed_default().with_seed(seed));
        let rate = rate_scale * kind.default_peak_users_per_second();
        let kpi = sim.step_slice(kind, &sla, &action, rate);
        prop_assert!(kpi.validate().is_ok(), "invalid KPI: {:?}", kpi.validate());
        let state = SliceState::from_kpi(&sla, 1, 96, rate_scale, &kpi, kpi.cost);
        prop_assert!(state.is_finite());
        prop_assert_eq!(state.to_vec().len(), STATE_DIM);
    }

    /// Projection always yields a feasible allocation and never increases any
    /// share.
    #[test]
    fn projection_is_feasible_and_contractive(
        actions in prop::collection::vec(action_strategy(), 1..6)
    ) {
        let domains = DomainSet::testbed_default();
        let projected = domains.project(actions.iter());
        prop_assert!(domains.is_feasible(projected.iter()));
        for (orig, proj) in actions.iter().zip(projected.iter()) {
            for (a, b) in orig.to_vec().iter().zip(proj.to_vec().iter()) {
                prop_assert!(*b <= a + 1e-12);
            }
        }
    }

    /// The action modifier (without noise) never increases resource usage and
    /// respects its retention floor.
    #[test]
    fn modifier_is_contractive_and_floored(
        action in action_strategy(),
        betas in prop::collection::vec(0.0f64..=2.0, 6),
    ) {
        let modifier = ActionModifier::new(ModifierConfig { retention_floor: 0.6, noise_std: 0.0 });
        let mut rng = rand::thread_rng();
        let betas_arr = [betas[0], betas[1], betas[2], betas[3], betas[4], betas[5]];
        let modified = modifier.modify(&action, &betas_arr, &mut rng);
        prop_assert!(modified.resource_usage() <= action.resource_usage() + 1e-12);
        for r in onslicing::slices::ResourceKind::ALL {
            let original = action.resource_share(r);
            let new = modified.resource_share(r);
            prop_assert!(new + 1e-12 >= 0.6 * original, "floor violated: {new} < 0.6 * {original}");
        }
    }

    /// The Eq. 14 dual update keeps every beta non-negative and raises a beta
    /// only when its resource is over-requested.
    #[test]
    fn dual_update_signs_are_correct(
        actions in prop::collection::vec(action_strategy(), 1..5)
    ) {
        let mut domains = DomainSet::testbed_default();
        let excess = domains.excess(actions.iter());
        let betas = domains.update_coordination(actions.iter());
        for (i, beta) in betas.iter().enumerate() {
            prop_assert!(*beta >= 0.0);
            if excess[i] <= 0.0 {
                prop_assert!(*beta == 0.0, "beta grew for a feasible resource");
            }
        }
    }
}
