//! Integration tests of the safety mechanisms across crates: the switching
//! ablations (OnSlicing vs -NE vs -NB) and the constraint-aware reward
//! shaping, at CI scale.

use onslicing::core::{AgentConfig, CoordinationMode, DeploymentBuilder};

fn online_violation(config: AgentConfig, seed: u64) -> f64 {
    let mut orch = DeploymentBuilder::new()
        .agent_config(config)
        .coordination(CoordinationMode::default())
        .scaled_down(16)
        .seed(seed)
        .build();
    if config.enable_imitation {
        orch.offline_pretrain_all(2);
    }
    let curve = orch.run_online(3);
    curve.iter().map(|m| m.violation_percent).sum::<f64>() / curve.len() as f64
}

/// The Fig. 3 motivation: an unsafe fixed-penalty learner without imitation
/// violates far more than the full OnSlicing agent during online learning.
#[test]
fn unsafe_drl_violates_more_than_onslicing() {
    let onslicing = online_violation(AgentConfig::onslicing(), 5);
    let unsafe_drl = online_violation(AgentConfig::unsafe_drl(), 5);
    assert!(
        unsafe_drl >= onslicing,
        "unsafe DRL ({unsafe_drl:.1}%) should violate at least as much as OnSlicing ({onslicing:.1}%)"
    );
    assert!(
        unsafe_drl > 10.0,
        "a from-scratch learner with wide exploration should violate noticeably, got {unsafe_drl:.1}%"
    );
}

/// The Lagrangian multiplier only ratchets up under sustained violations.
#[test]
fn lambda_grows_only_for_violating_agents() {
    let mut orch = DeploymentBuilder::new()
        .agent_config(AgentConfig::onrl())
        .coordination(CoordinationMode::Projection)
        .scaled_down(12)
        .seed(9)
        .build();
    let lambda_before: Vec<f64> = orch.agents().iter().map(|a| a.lambda()).collect();
    orch.run_online(2);
    let lambda_after: Vec<f64> = orch.agents().iter().map(|a| a.lambda()).collect();
    // At least one untrained agent must have violated and raised its lambda;
    // no lambda may become negative.
    assert!(lambda_after.iter().any(|l| *l > lambda_before[0]));
    assert!(lambda_after.iter().all(|l| *l >= 0.0));
}

/// Switching variants: disabling the baseline switch can only increase (or
/// keep equal) the online violation rate relative to full OnSlicing.
#[test]
fn removing_the_switch_does_not_reduce_violations() {
    let with_switch = online_violation(AgentConfig::onslicing(), 21);
    let without_switch = online_violation(AgentConfig::onslicing_nb(), 21);
    assert!(
        without_switch + 1e-9 >= with_switch,
        "OnSlicing-NB ({without_switch:.1}%) should not violate less than OnSlicing ({with_switch:.1}%)"
    );
}
