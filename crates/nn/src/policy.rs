//! Gaussian policy head used by the PPO actor (policy `π_θ`).
//!
//! The OnSlicing actor outputs a resource-orchestration action whose every
//! dimension is a normalized share in `[0, 1]` (the paper uses Sigmoid output
//! activations, §6). During online learning PPO needs a *stochastic* policy
//! with a tractable log-density, so the policy is modeled as a diagonal
//! Gaussian over the pre-clip action:
//!
//! * the **mean** is produced by an [`Mlp`] trunk with Sigmoid output, and
//! * the **standard deviation** is a state-independent, learnable parameter
//!   per action dimension (stored as an unconstrained value mapped through
//!   softplus), the common PPO parameterization.
//!
//! Samples are clipped to `[0, 1]` when handed to the environment, but the
//! log-probability is always evaluated on the *unclipped* sample so that the
//! PPO ratio remains well defined.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::mlp::{BatchWorkspace, Mlp};
use crate::optimizer::ParameterSet;
use crate::softplus;
use crate::softplus_derivative;

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Kept local to avoid pulling in `rand_distr`; the policy and the Bayesian
/// layers only ever need scalar `N(0, 1)` draws.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A sample drawn from a [`GaussianPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySample {
    /// The raw (unclipped) Gaussian sample; this is what the log-probability
    /// refers to.
    pub raw_action: Vec<f64>,
    /// The sample clipped to `[0, 1]`, ready to hand to the environment.
    pub action: Vec<f64>,
    /// The policy mean at the sampled state.
    pub mean: Vec<f64>,
    /// The (per-dimension) standard deviation used for the sample.
    pub std: Vec<f64>,
    /// Log-density of `raw_action` under the policy.
    pub log_prob: f64,
}

/// Diagonal-Gaussian stochastic policy with an MLP mean and learnable,
/// state-independent standard deviations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianPolicy {
    mean_net: Mlp,
    /// Unconstrained per-dimension parameters; `std = softplus(rho) + min_std`.
    log_std_rho: Vec<f64>,
    grad_log_std_rho: Vec<f64>,
    min_std: f64,
}

impl GaussianPolicy {
    /// Creates a policy with the paper's default trunk (`128x64x32`, ReLU,
    /// Sigmoid output) and an initial standard deviation of roughly
    /// `initial_std` in every action dimension.
    pub fn new<R: Rng + ?Sized>(
        state_dim: usize,
        action_dim: usize,
        initial_std: f64,
        rng: &mut R,
    ) -> Self {
        let mean_net = Mlp::onslicing_default(state_dim, action_dim, Activation::Sigmoid, rng);
        Self::from_mean_net(mean_net, action_dim, initial_std)
    }

    /// Creates a policy around an arbitrary mean network (useful for small
    /// test networks).
    ///
    /// # Panics
    /// Panics if the network's output dimension does not equal `action_dim`
    /// or if `initial_std` is not strictly positive.
    pub fn from_mean_net(mean_net: Mlp, action_dim: usize, initial_std: f64) -> Self {
        assert_eq!(
            mean_net.output_dim(),
            action_dim,
            "mean network output must match the action dimension"
        );
        assert!(initial_std > 0.0, "initial_std must be positive");
        let min_std = 1e-3;
        // Invert softplus so that softplus(rho) + min_std == initial_std.
        let target = (initial_std - min_std).max(1e-6);
        let rho = if target > 30.0 {
            target
        } else {
            (target.exp() - 1.0).ln()
        };
        Self {
            grad_log_std_rho: vec![0.0; action_dim],
            log_std_rho: vec![rho; action_dim],
            mean_net,
            min_std,
        }
    }

    /// State dimensionality expected by the policy.
    pub fn state_dim(&self) -> usize {
        self.mean_net.input_dim()
    }

    /// Action dimensionality produced by the policy.
    pub fn action_dim(&self) -> usize {
        self.mean_net.output_dim()
    }

    /// The current per-dimension standard deviations.
    pub fn std(&self) -> Vec<f64> {
        self.log_std_rho
            .iter()
            .map(|&r| softplus(r) + self.min_std)
            .collect()
    }

    /// Deterministic action: the policy mean, already in `[0, 1]`.
    pub fn mean_action(&self, state: &[f64]) -> Vec<f64> {
        self.mean_net.forward(state)
    }

    /// Draws a stochastic action for the given state.
    pub fn sample<R: Rng + ?Sized>(&self, state: &[f64], rng: &mut R) -> PolicySample {
        let mean = self.mean_net.forward(state);
        let std = self.std();
        let mut raw = Vec::with_capacity(mean.len());
        for (m, s) in mean.iter().zip(std.iter()) {
            let z = standard_normal(rng);
            raw.push(m + s * z);
        }
        let log_prob = self.log_prob_given(&mean, &std, &raw);
        let action = raw.iter().map(|&a| a.clamp(0.0, 1.0)).collect();
        PolicySample {
            raw_action: raw,
            action,
            mean,
            std,
            log_prob,
        }
    }

    /// Like [`GaussianPolicy::sample`], but with the policy mean already
    /// computed — the scatter half of the fused cell batch hands each agent
    /// its mean row ([`crate::cell::CellBatch`]). Bit-identical to `sample`
    /// on a shared RNG stream whenever `mean` carries exactly the bits
    /// `mean_action(state)` would produce: the draw order, the raw-sample
    /// arithmetic and the log-density are the same code path.
    pub fn sample_with_mean<R: Rng + ?Sized>(&self, mean: &[f64], rng: &mut R) -> PolicySample {
        debug_assert_eq!(mean.len(), self.action_dim(), "mean length mismatch");
        let std = self.std();
        let mut raw = Vec::with_capacity(mean.len());
        for (m, s) in mean.iter().zip(std.iter()) {
            let z = standard_normal(rng);
            raw.push(m + s * z);
        }
        let log_prob = self.log_prob_given(mean, &std, &raw);
        let action = raw.iter().map(|&a| a.clamp(0.0, 1.0)).collect();
        PolicySample {
            raw_action: raw,
            action,
            mean: mean.to_vec(),
            std,
            log_prob,
        }
    }

    /// Log-density of `raw_action` under the policy evaluated at `state`.
    pub fn log_prob(&self, state: &[f64], raw_action: &[f64]) -> f64 {
        let mean = self.mean_net.forward(state);
        let std = self.std();
        self.log_prob_given(&mean, &std, raw_action)
    }

    fn log_prob_given(&self, mean: &[f64], std: &[f64], raw_action: &[f64]) -> f64 {
        assert_eq!(mean.len(), raw_action.len(), "action length mismatch");
        let mut lp = 0.0;
        for ((m, s), a) in mean.iter().zip(std.iter()).zip(raw_action.iter()) {
            let s = s.max(1e-9);
            let z = (a - m) / s;
            lp += -0.5 * z * z - s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        }
        lp
    }

    /// Entropy of the diagonal Gaussian (state independent because the
    /// standard deviation is state independent).
    pub fn entropy(&self) -> f64 {
        self.std()
            .iter()
            .map(|s| 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E * s * s).ln())
            .sum()
    }

    /// Accumulates the gradient of the loss `-weight · log π(raw_action | state)`
    /// with respect to all policy parameters, so that stepping the optimizer
    /// (which minimizes) performs policy-gradient *ascent* on
    /// `weight · log π`.
    ///
    /// This is the policy-gradient building block used by PPO: the caller
    /// computes the (clipped) surrogate weight per transition and this method
    /// backpropagates it. Gradients accumulate until [`GaussianPolicy::zero_grad`].
    ///
    /// Internally the std-deviation gradients are stored in the ascent
    /// convention and negated in [`GaussianPolicy::param_grad_pairs`]; the
    /// mean-network gradients are negated here at the MLP boundary.
    pub fn accumulate_log_prob_grad(&mut self, state: &[f64], raw_action: &[f64], weight: f64) {
        let mean = self.mean_net.forward_train(state);
        let std = self.std();
        // d logp / d mean_i = (a_i - m_i) / s_i^2
        // d logp / d s_i    = ((a_i - m_i)^2 - s_i^2) / s_i^3
        let mut grad_out = Vec::with_capacity(mean.len());
        for (i, ((m, s), a)) in mean
            .iter()
            .zip(std.iter())
            .zip(raw_action.iter())
            .enumerate()
        {
            let s = s.max(1e-9);
            let diff = a - m;
            // Descent gradient on -weight*logp wrt the mean output.
            grad_out.push(-weight * diff / (s * s));
            let d_logp_d_std = (diff * diff - s * s) / (s * s * s);
            let d_std_d_rho = softplus_derivative(self.log_std_rho[i]);
            // Ascent convention, negated later in `param_grad_pairs`.
            self.grad_log_std_rho[i] += weight * d_logp_d_std * d_std_d_rho;
        }
        self.mean_net.backward(&grad_out);
    }

    /// Batched log-probability evaluation: one forward GEMM per layer for
    /// the whole minibatch.
    ///
    /// `states` is `(batch × state_dim)`, `raw_actions` is
    /// `(batch × action_dim)`; `log_probs` is cleared and refilled with one
    /// log-density per row. The policy means stay cached in `ws`, so a
    /// following [`GaussianPolicy::accumulate_log_prob_grad_batch`] call
    /// reuses this single forward pass instead of running its own.
    pub fn log_probs_batch(
        &self,
        states: &Matrix,
        raw_actions: &Matrix,
        ws: &mut BatchWorkspace,
        log_probs: &mut Vec<f64>,
    ) {
        assert_eq!(states.rows(), raw_actions.rows(), "batch size mismatch");
        let buf = ws.input_mut(states.rows(), states.cols());
        buf.data_mut().copy_from_slice(states.data());
        self.log_probs_batch_prefilled(raw_actions, ws, log_probs);
    }

    /// Like [`GaussianPolicy::log_probs_batch`], but the state batch was
    /// already gathered into [`BatchWorkspace::input_mut`] (the PPO minibatch
    /// loop writes shuffled rows straight into the workspace).
    pub fn log_probs_batch_prefilled(
        &self,
        raw_actions: &Matrix,
        ws: &mut BatchWorkspace,
        log_probs: &mut Vec<f64>,
    ) {
        assert_eq!(raw_actions.cols(), self.action_dim(), "action dim mismatch");
        // The std is state independent, so the normalization constant and
        // the per-dimension precision are minibatch constants — the per-row
        // work reduces to one fused multiply-add per action dimension.
        let std = self.std();
        let mut log_norm = 0.0;
        let inv_two_var: Vec<f64> = std
            .iter()
            .map(|s| {
                let s = s.max(1e-9);
                log_norm += -s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
                0.5 / (s * s)
            })
            .collect();
        let means = self.mean_net.forward_batch_prefilled(ws);
        assert_eq!(means.rows(), raw_actions.rows(), "batch size mismatch");
        log_probs.clear();
        log_probs.reserve(raw_actions.rows());
        for b in 0..raw_actions.rows() {
            let mean_row = means.row(b);
            let action_row = raw_actions.row(b);
            let mut quad = 0.0;
            for ((m, w), a) in mean_row
                .iter()
                .zip(inv_two_var.iter())
                .zip(action_row.iter())
            {
                let diff = a - m;
                quad += diff * diff * w;
            }
            log_probs.push(log_norm - quad);
        }
    }

    /// Batched policy-gradient accumulation for the minibatch evaluated by
    /// the immediately preceding [`GaussianPolicy::log_probs_batch`] call on
    /// `ws` (the cached means and activations are reused — one forward and
    /// one backward GEMM pass per layer per minibatch in total).
    ///
    /// `weights[b]` is the per-transition surrogate weight; like the
    /// per-sample [`GaussianPolicy::accumulate_log_prob_grad`], the
    /// accumulated gradient descends `-Σ_b weights[b] · log π(a_b | s_b)`.
    /// `grad_buf` is a caller-owned scratch matrix.
    ///
    /// # Panics
    /// Panics if the buffer shapes do not line up with the cached forward.
    pub fn accumulate_log_prob_grad_batch(
        &mut self,
        raw_actions: &Matrix,
        weights: &[f64],
        ws: &mut BatchWorkspace,
        grad_buf: &mut Matrix,
    ) {
        let batch = raw_actions.rows();
        assert_eq!(weights.len(), batch, "weight count mismatch");
        {
            let means = ws.output();
            assert_eq!(
                (means.rows(), means.cols()),
                (batch, self.action_dim()),
                "workspace does not hold a matching forward pass"
            );
            // Hoist all per-dimension factors (state independent) out of the
            // batch loop; the per-element work is then multiply-add only.
            let std = self.std();
            let inv_var: Vec<f64> = std
                .iter()
                .map(|s| 1.0 / (s.max(1e-9) * s.max(1e-9)))
                .collect();
            // d logp/d s · ds/dρ = ((diff² − s²)/s³) · σ'(ρ), split into a
            // diff²-coefficient and a constant per dimension.
            let rho_quad: Vec<f64> = std
                .iter()
                .zip(self.log_std_rho.iter())
                .map(|(s, &r)| {
                    let s = s.max(1e-9);
                    softplus_derivative(r) / (s * s * s)
                })
                .collect();
            let rho_const: Vec<f64> = std
                .iter()
                .zip(self.log_std_rho.iter())
                .map(|(s, &r)| softplus_derivative(r) / s.max(1e-9))
                .collect();
            grad_buf.resize(batch, self.action_dim());
            for (b, &w) in weights.iter().enumerate() {
                let mean_row = means.row(b);
                let action_row = raw_actions.row(b);
                let grad_row = grad_buf.row_mut(b);
                for (i, (m, a)) in mean_row.iter().zip(action_row.iter()).enumerate() {
                    let diff = a - m;
                    // Descent gradient on -w·logp wrt the mean output.
                    grad_row[i] = -w * diff * inv_var[i];
                    // Ascent convention, negated in `param_grad_pairs`.
                    self.grad_log_std_rho[i] += w * (diff * diff * rho_quad[i] - rho_const[i]);
                }
            }
        }
        self.mean_net.backward_batch(grad_buf, ws);
    }

    /// Adds `coeff * d(-entropy)/d rho` to the std-deviation gradients,
    /// encouraging exploration when `coeff > 0` (entropy bonus).
    pub fn accumulate_entropy_grad(&mut self, coeff: f64) {
        for (i, &rho) in self.log_std_rho.iter().enumerate() {
            let s = softplus(rho) + self.min_std;
            // d entropy / d s = 1 / s ; ascent on entropy == descent on -entropy.
            let d_ent_d_rho = (1.0 / s) * softplus_derivative(rho);
            // Stored in ascent convention (see `param_grad_pairs`).
            self.grad_log_std_rho[i] += coeff * d_ent_d_rho;
        }
    }

    /// Resets accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.mean_net.zero_grad();
        for g in &mut self.grad_log_std_rho {
            *g = 0.0;
        }
    }

    /// Scales accumulated gradients (e.g. by `1 / batch_size`).
    pub fn scale_grad(&mut self, s: f64) {
        self.mean_net.scale_grad(s);
        for g in &mut self.grad_log_std_rho {
            *g *= s;
        }
    }

    /// Total number of trainable parameters (mean network + std parameters).
    pub fn num_parameters(&self) -> usize {
        self.mean_net.num_parameters() + self.log_std_rho.len()
    }

    /// `(parameter, gradient)` pairs in the *descent* convention expected by
    /// the optimizers: stepping along the negative gradient decreases
    /// `-(weight · log π)` (i.e. performs policy-gradient ascent).
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let mut pairs = self.mean_net.param_grad_pairs();
        let std_grads: Vec<f64> = self.grad_log_std_rho.iter().map(|g| -g).collect();
        pairs.extend(self.log_std_rho.iter_mut().zip(std_grads));
        pairs
    }

    /// Flat snapshot of all parameters (mean network, then std parameters).
    pub fn parameters(&self) -> Vec<f64> {
        let mut p = self.mean_net.parameters();
        p.extend_from_slice(&self.log_std_rho);
        p
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`GaussianPolicy::parameters`].
    ///
    /// # Panics
    /// Panics if the length does not match [`GaussianPolicy::num_parameters`].
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter length mismatch"
        );
        let n = self.mean_net.num_parameters();
        self.mean_net.set_parameters(&params[..n]);
        self.log_std_rho.copy_from_slice(&params[n..]);
    }

    /// Copies parameters from another policy with identical architecture.
    pub fn copy_parameters_from(&mut self, other: &GaussianPolicy) {
        self.set_parameters(&other.parameters());
    }

    /// Mutable access to the underlying mean network (used by behavior
    /// cloning, which regresses the mean directly).
    pub fn mean_net_mut(&mut self) -> &mut Mlp {
        &mut self.mean_net
    }

    /// Immutable access to the underlying mean network.
    pub fn mean_net(&self) -> &Mlp {
        &self.mean_net
    }
}

impl ParameterSet for GaussianPolicy {
    fn grad_norm_squared(&self) -> f64 {
        self.mean_net.grad_norm_squared() + self.grad_log_std_rho.iter().map(|g| g * g).sum::<f64>()
    }

    fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        self.mean_net.visit_param_blocks(f);
        // Std-deviation gradients are stored in the ascent convention; the
        // -1 scale flips them to the descent convention the optimizer
        // expects, matching `param_grad_pairs`.
        f(&mut self.log_std_rho, &self.grad_log_std_rho, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_policy(seed: u64) -> GaussianPolicy {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(&[4, 12, 3], Activation::Tanh, Activation::Sigmoid, &mut rng);
        GaussianPolicy::from_mean_net(net, 3, 0.2)
    }

    #[test]
    fn initial_std_is_respected() {
        let p = small_policy(0);
        for s in p.std() {
            assert!((s - 0.2).abs() < 1e-6, "std {s} should be ~0.2");
        }
    }

    #[test]
    fn mean_action_is_in_unit_interval() {
        let p = small_policy(1);
        let a = p.mean_action(&[0.5, -2.0, 3.0, 0.0]);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn sampled_actions_are_clipped_but_raw_actions_are_not_necessarily() {
        let p = small_policy(2);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            let s = p.sample(&[0.1, 0.2, 0.3, 0.4], &mut rng);
            assert!(s.action.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(s.raw_action.len(), 3);
            assert!(s.log_prob.is_finite());
        }
    }

    #[test]
    fn sample_with_mean_is_bit_identical_to_sample() {
        let p = small_policy(14);
        let state = [0.4, -0.1, 0.7, 0.0];
        let mean = p.mean_action(&state);
        let mut rng_a = ChaCha8Rng::seed_from_u64(41);
        let mut rng_b = rng_a.clone();
        for _ in 0..50 {
            let a = p.sample(&state, &mut rng_a);
            let b = p.sample_with_mean(&mean, &mut rng_b);
            assert_eq!(a, b, "sample paths diverged");
        }
    }

    #[test]
    fn log_prob_is_highest_at_the_mean() {
        let p = small_policy(3);
        let state = [0.3, 0.3, 0.3, 0.3];
        let mean = p.mean_action(&state);
        let at_mean = p.log_prob(&state, &mean);
        let off: Vec<f64> = mean.iter().map(|m| m + 0.3).collect();
        assert!(at_mean > p.log_prob(&state, &off));
    }

    #[test]
    fn log_prob_matches_analytic_gaussian_density() {
        let p = small_policy(4);
        let state = [0.0, 1.0, -1.0, 0.5];
        let mean = p.mean_action(&state);
        let std = p.std();
        let action: Vec<f64> = mean.iter().map(|m| m + 0.1).collect();
        let expected: f64 = mean
            .iter()
            .zip(std.iter())
            .zip(action.iter())
            .map(|((m, s), a)| {
                let z = (a - m) / s;
                -0.5 * z * z - s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
            })
            .sum();
        assert!((p.log_prob(&state, &action) - expected).abs() < 1e-12);
    }

    #[test]
    fn entropy_increases_with_std() {
        let low = GaussianPolicy::from_mean_net(
            Mlp::new(
                &[2, 4, 2],
                Activation::Relu,
                Activation::Sigmoid,
                &mut ChaCha8Rng::seed_from_u64(5),
            ),
            2,
            0.05,
        );
        let high = GaussianPolicy::from_mean_net(
            Mlp::new(
                &[2, 4, 2],
                Activation::Relu,
                Activation::Sigmoid,
                &mut ChaCha8Rng::seed_from_u64(6),
            ),
            2,
            0.5,
        );
        assert!(high.entropy() > low.entropy());
    }

    #[test]
    fn policy_gradient_ascent_moves_mean_toward_rewarded_action() {
        // A single-state bandit: reward is higher when the action is close to
        // 0.8. Ascending weight * logp with weight = advantage should move the
        // policy mean toward 0.8.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let mut policy = GaussianPolicy::from_mean_net(net, 1, 0.15);
        let mut opt = crate::optimizer::Adam::new(policy.num_parameters(), 5e-3);
        let state = [1.0];
        for _ in 0..600 {
            policy.zero_grad();
            let mut batch = Vec::new();
            for _ in 0..16 {
                let s = policy.sample(&state, &mut rng);
                let reward = -(s.action[0] - 0.8) * (s.action[0] - 0.8);
                batch.push((s, reward));
            }
            let mean_r = batch.iter().map(|(_, r)| *r).sum::<f64>() / batch.len() as f64;
            for (s, r) in &batch {
                let advantage = r - mean_r;
                policy.accumulate_log_prob_grad(&state, &s.raw_action, advantage / 16.0);
            }
            opt.step(policy.param_grad_pairs());
        }
        let m = policy.mean_action(&state)[0];
        assert!(
            (m - 0.8).abs() < 0.1,
            "policy mean {m} did not move toward 0.8"
        );
    }

    #[test]
    fn parameter_roundtrip_preserves_behaviour() {
        let mut p = small_policy(8);
        let params = p.parameters();
        assert_eq!(params.len(), p.num_parameters());
        let state = [0.2, 0.4, 0.6, 0.8];
        let before = p.mean_action(&state);
        p.set_parameters(&params);
        assert_eq!(p.mean_action(&state), before);
    }

    #[test]
    fn copy_parameters_from_clones_behaviour() {
        let a = small_policy(9);
        let mut b = small_policy(10);
        b.copy_parameters_from(&a);
        let state = [0.9, -0.3, 0.0, 0.1];
        assert_eq!(a.mean_action(&state), b.mean_action(&state));
        assert_eq!(a.std(), b.std());
    }

    #[test]
    fn entropy_bonus_increases_std() {
        let mut p = small_policy(11);
        let before: f64 = p.std().iter().sum();
        let mut opt = crate::optimizer::Adam::new(p.num_parameters(), 1e-2);
        for _ in 0..50 {
            p.zero_grad();
            p.accumulate_entropy_grad(0.1);
            opt.step(p.param_grad_pairs());
        }
        let after: f64 = p.std().iter().sum();
        assert!(
            after > before,
            "entropy bonus should inflate std: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "mean network output must match")]
    fn mismatched_action_dim_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let net = Mlp::new(&[2, 4, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        let _ = GaussianPolicy::from_mean_net(net, 3, 0.1);
    }
}
