//! Bayes-by-backprop variational layers for the cost value estimator (π_φ).
//!
//! The proactive baseline switching mechanism (paper §3, Eq. 6–8) needs both
//! the **mean** and the **standard deviation** of the baseline policy's
//! remaining-episode cost under the current state. The paper trains a
//! probabilistic model with variational inference: the weight posterior is
//! approximated by a diagonal Gaussian `q(φ) = N(μ, σ²)`, trained by
//! maximizing the evidence lower bound
//!
//! ```text
//! ELBO = E_q[ log p(D | φ) ] − KL( q(φ) ‖ p(φ) )        (Eq. 7)
//! ```
//!
//! with a standard-normal prior `p(φ)`. This module implements that with the
//! local reparameterization trick: each forward pass samples
//! `w = μ + softplus(ρ) · ε`, `ε ∼ N(0, 1)`, and gradients flow through both
//! `μ` and `ρ`.
//!
//! [`BayesianMlp::predict`] aggregates several stochastic forward passes into
//! a predictive mean and standard deviation, which is exactly the `(μ, σ)`
//! pair the switching rule consumes.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::policy::standard_normal;
use crate::{softplus, softplus_derivative};

/// Summary statistics of the stochastic predictions of a [`BayesianMlp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BayesianPrediction {
    /// Predictive mean across weight samples.
    pub mean: f64,
    /// Predictive standard deviation across weight samples (epistemic
    /// uncertainty); never negative.
    pub std: f64,
}

/// A single variational dense layer `y = act(W x + b)` whose weights and
/// biases carry a factorized Gaussian posterior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesianLinear {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    /// Posterior means for the weights (row-major `out_dim x in_dim`).
    weight_mu: Matrix,
    /// Unconstrained posterior scale parameters; `sigma = softplus(rho)`.
    weight_rho: Matrix,
    bias_mu: Vec<f64>,
    bias_rho: Vec<f64>,
    // Gradients.
    grad_weight_mu: Matrix,
    grad_weight_rho: Matrix,
    grad_bias_mu: Vec<f64>,
    grad_bias_rho: Vec<f64>,
    // Caches from the last stochastic forward pass.
    cached_input: Vec<f64>,
    cached_pre_activation: Vec<f64>,
    cached_weight_eps: Matrix,
    cached_bias_eps: Vec<f64>,
    // Materialized weight sample `W = μ + softplus(ρ)·ε` for the batched
    // path, where one posterior draw serves a whole minibatch.
    sampled_weights: Matrix,
    sampled_bias: Vec<f64>,
    /// Weight of the prior's standard deviation (standard-normal prior when 1).
    prior_std: f64,
}

impl BayesianLinear {
    /// Creates a variational layer with posterior means initialized like a
    /// small deterministic layer and posterior scales initialized small
    /// (σ ≈ 0.05) so early training behaves like a point estimate.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (in_dim + out_dim).max(1) as f64).sqrt();
        let mut weight_mu = Matrix::zeros(out_dim, in_dim);
        for r in 0..out_dim {
            for c in 0..in_dim {
                weight_mu.set(r, c, rng.gen_range(-limit..limit));
            }
        }
        // softplus(-3.0) ≈ 0.0486
        let mut weight_rho = Matrix::zeros(out_dim, in_dim);
        weight_rho.fill(-3.0);
        Self {
            in_dim,
            out_dim,
            activation,
            weight_mu,
            weight_rho,
            bias_mu: vec![0.0; out_dim],
            bias_rho: vec![-3.0; out_dim],
            grad_weight_mu: Matrix::zeros(out_dim, in_dim),
            grad_weight_rho: Matrix::zeros(out_dim, in_dim),
            grad_bias_mu: vec![0.0; out_dim],
            grad_bias_rho: vec![0.0; out_dim],
            cached_input: Vec::new(),
            cached_pre_activation: Vec::new(),
            cached_weight_eps: Matrix::zeros(out_dim, in_dim),
            cached_bias_eps: vec![0.0; out_dim],
            // Deliberately empty until the first `resample_weights` call, so
            // the batched passes can detect a never-drawn sample.
            sampled_weights: Matrix::default(),
            sampled_bias: vec![0.0; out_dim],
            prior_std: 1.0,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass using only the posterior means (a deterministic
    /// point-estimate prediction).
    pub fn forward_mean(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut pre = self.weight_mu.matvec(input);
        for (p, b) in pre.iter_mut().zip(self.bias_mu.iter()) {
            *p += b;
        }
        pre.iter().map(|&x| self.activation.apply(x)).collect()
    }

    /// Stochastic forward pass sampling weights with the reparameterization
    /// trick and caching everything needed by [`BayesianLinear::backward`].
    #[allow(clippy::needless_range_loop)] // row/column ranges mirror the math
    pub fn forward_sample<R: Rng + ?Sized>(&mut self, input: &[f64], rng: &mut R) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut pre = vec![0.0; self.out_dim];
        let mut eps_w = Matrix::zeros(self.out_dim, self.in_dim);
        let mut eps_b = vec![0.0; self.out_dim];
        for r in 0..self.out_dim {
            let mut acc = 0.0;
            for c in 0..self.in_dim {
                let eps = standard_normal(rng);
                eps_w.set(r, c, eps);
                let w = self.weight_mu.get(r, c) + softplus(self.weight_rho.get(r, c)) * eps;
                acc += w * input[c];
            }
            let eb = standard_normal(rng);
            eps_b[r] = eb;
            let b = self.bias_mu[r] + softplus(self.bias_rho[r]) * eb;
            pre[r] = acc + b;
        }
        let out = pre.iter().map(|&x| self.activation.apply(x)).collect();
        self.cached_input = input.to_vec();
        self.cached_pre_activation = pre;
        self.cached_weight_eps = eps_w;
        self.cached_bias_eps = eps_b;
        out
    }

    /// Backward pass through the last [`BayesianLinear::forward_sample`] call.
    ///
    /// `grad_output` is `dL/dy`; the return value is `dL/dx`. Gradients for
    /// `μ` and `ρ` are accumulated.
    ///
    /// # Panics
    /// Panics if called before `forward_sample`.
    #[allow(clippy::needless_range_loop)] // row/column ranges mirror the math
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        assert!(
            !self.cached_pre_activation.is_empty(),
            "backward called before forward_sample"
        );
        debug_assert_eq!(grad_output.len(), self.out_dim);
        let mut grad_input = vec![0.0; self.in_dim];
        for r in 0..self.out_dim {
            let delta = grad_output[r] * self.activation.derivative(self.cached_pre_activation[r]);
            if delta == 0.0 {
                continue;
            }
            for c in 0..self.in_dim {
                let eps = self.cached_weight_eps.get(r, c);
                let rho = self.weight_rho.get(r, c);
                let x = self.cached_input[c];
                // w = mu + softplus(rho) * eps
                self.grad_weight_mu
                    .set(r, c, self.grad_weight_mu.get(r, c) + delta * x);
                self.grad_weight_rho.set(
                    r,
                    c,
                    self.grad_weight_rho.get(r, c) + delta * x * eps * softplus_derivative(rho),
                );
                let w = self.weight_mu.get(r, c) + softplus(rho) * eps;
                grad_input[c] += delta * w;
            }
            self.grad_bias_mu[r] += delta;
            self.grad_bias_rho[r] +=
                delta * self.cached_bias_eps[r] * softplus_derivative(self.bias_rho[r]);
        }
        grad_input
    }

    /// Draws one posterior weight sample and materializes the effective
    /// `W = μ + softplus(ρ)·ε` and bias for the batched passes below. The ε
    /// draw is cached so [`BayesianLinear::backward_batch`] can route
    /// gradients through both `μ` and `ρ`.
    pub fn resample_weights<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.sampled_weights.resize(self.out_dim, self.in_dim);
        for r in 0..self.out_dim {
            for c in 0..self.in_dim {
                let eps = standard_normal(rng);
                self.cached_weight_eps.set(r, c, eps);
                let w = self.weight_mu.get(r, c) + softplus(self.weight_rho.get(r, c)) * eps;
                self.sampled_weights.set(r, c, w);
            }
        }
        for r in 0..self.out_dim {
            let eps = standard_normal(rng);
            self.cached_bias_eps[r] = eps;
            self.sampled_bias[r] = self.bias_mu[r] + softplus(self.bias_rho[r]) * eps;
        }
    }

    /// Batched stochastic forward pass under the weight sample drawn by the
    /// last [`BayesianLinear::resample_weights`] — one GEMM for the whole
    /// minibatch (one shared posterior draw). `weights_t` is the
    /// transposed-weight scratch (see [`crate::layer::Dense::forward_batch_into`]).
    ///
    /// # Panics
    /// Panics if [`BayesianLinear::resample_weights`] has never been called
    /// (the materialized sample would otherwise silently be all zeros).
    pub fn forward_batch_into(
        &self,
        input: &Matrix,
        weights_t: &mut Matrix,
        pre: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            (self.sampled_weights.rows(), self.sampled_weights.cols()),
            (self.out_dim, self.in_dim),
            "forward_batch called before resample_weights"
        );
        debug_assert_eq!(
            input.cols(),
            self.in_dim,
            "bayesian batch input size mismatch"
        );
        self.sampled_weights.transpose_into(weights_t);
        input.matmul_into(weights_t, pre);
        pre.add_row_broadcast(&self.sampled_bias);
        out.resize(pre.rows(), pre.cols());
        self.activation.apply_into(pre.data(), out.data_mut());
    }

    /// Batched backward pass through the last
    /// [`BayesianLinear::forward_batch_into`].
    ///
    /// `delta` enters as `dL/dy` and is turned into `dL/d(pre)` in place;
    /// `grad_scratch` is a caller-owned `(out × in)` buffer for the shared
    /// `δᵀ·X` GEMM, whose result feeds both the `μ` gradient (directly) and
    /// the `ρ` gradient (chained through the cached ε and softplus').
    pub fn backward_batch(
        &mut self,
        delta: &mut Matrix,
        input: &Matrix,
        pre: &Matrix,
        grad_scratch: &mut Matrix,
        grad_input: Option<&mut Matrix>,
    ) {
        assert_eq!(
            delta.cols(),
            self.out_dim,
            "bayesian backward output dim mismatch"
        );
        assert_eq!(
            input.rows(),
            delta.rows(),
            "bayesian backward batch mismatch"
        );
        self.activation
            .mul_derivative_into(pre.data(), delta.data_mut());
        grad_scratch.resize(self.out_dim, self.in_dim);
        delta.matmul_tn_acc_into(input, grad_scratch);
        for r in 0..self.out_dim {
            for c in 0..self.in_dim {
                let g = grad_scratch.get(r, c);
                self.grad_weight_mu
                    .set(r, c, self.grad_weight_mu.get(r, c) + g);
                let chain = self.cached_weight_eps.get(r, c)
                    * softplus_derivative(self.weight_rho.get(r, c));
                self.grad_weight_rho
                    .set(r, c, self.grad_weight_rho.get(r, c) + g * chain);
            }
        }
        for b in 0..delta.rows() {
            for (r, d) in delta.row(b).iter().enumerate() {
                self.grad_bias_mu[r] += d;
                self.grad_bias_rho[r] +=
                    d * self.cached_bias_eps[r] * softplus_derivative(self.bias_rho[r]);
            }
        }
        if let Some(grad_input) = grad_input {
            delta.matmul_into(&self.sampled_weights, grad_input);
        }
    }

    /// Squared l2 norm of all accumulated gradients.
    pub fn grad_norm_squared(&self) -> f64 {
        self.grad_weight_mu
            .data()
            .iter()
            .map(|g| g * g)
            .sum::<f64>()
            + self
                .grad_weight_rho
                .data()
                .iter()
                .map(|g| g * g)
                .sum::<f64>()
            + self.grad_bias_mu.iter().map(|g| g * g).sum::<f64>()
            + self.grad_bias_rho.iter().map(|g| g * g).sum::<f64>()
    }

    /// Visits `(params, grads, scale)` blocks in
    /// [`BayesianLinear::param_grad_pairs`] order without allocating.
    pub fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        f(self.weight_mu.data_mut(), self.grad_weight_mu.data(), 1.0);
        f(self.weight_rho.data_mut(), self.grad_weight_rho.data(), 1.0);
        f(&mut self.bias_mu, &self.grad_bias_mu, 1.0);
        f(&mut self.bias_rho, &self.grad_bias_rho, 1.0);
    }

    /// KL divergence `KL(q(φ) ‖ p(φ))` of this layer's posterior from the
    /// standard-normal prior, summed over all weights and biases.
    pub fn kl_to_prior(&self) -> f64 {
        let mut kl = 0.0;
        let prior_var = self.prior_std * self.prior_std;
        for r in 0..self.out_dim {
            for c in 0..self.in_dim {
                let mu = self.weight_mu.get(r, c);
                let sigma = softplus(self.weight_rho.get(r, c)).max(1e-9);
                kl += (self.prior_std / sigma).ln() + (sigma * sigma + mu * mu) / (2.0 * prior_var)
                    - 0.5;
            }
        }
        for (mu, rho) in self.bias_mu.iter().zip(self.bias_rho.iter()) {
            let sigma = softplus(*rho).max(1e-9);
            kl +=
                (self.prior_std / sigma).ln() + (sigma * sigma + mu * mu) / (2.0 * prior_var) - 0.5;
        }
        kl
    }

    /// Accumulates the gradient of `weight · KL(q ‖ p)` into the layer.
    ///
    /// Called once per optimizer step with `weight = kl_weight / dataset_size`
    /// (the standard Bayes-by-backprop minibatch scaling).
    pub fn accumulate_kl_grad(&mut self, weight: f64) {
        let prior_var = self.prior_std * self.prior_std;
        for r in 0..self.out_dim {
            for c in 0..self.in_dim {
                let mu = self.weight_mu.get(r, c);
                let rho = self.weight_rho.get(r, c);
                let sigma = softplus(rho).max(1e-9);
                // d KL / d mu = mu / prior_var
                self.grad_weight_mu.set(
                    r,
                    c,
                    self.grad_weight_mu.get(r, c) + weight * mu / prior_var,
                );
                // d KL / d sigma = -1/sigma + sigma/prior_var
                let d_sigma = -1.0 / sigma + sigma / prior_var;
                self.grad_weight_rho.set(
                    r,
                    c,
                    self.grad_weight_rho.get(r, c) + weight * d_sigma * softplus_derivative(rho),
                );
            }
        }
        for i in 0..self.out_dim {
            let mu = self.bias_mu[i];
            let rho = self.bias_rho[i];
            let sigma = softplus(rho).max(1e-9);
            self.grad_bias_mu[i] += weight * mu / prior_var;
            let d_sigma = -1.0 / sigma + sigma / prior_var;
            self.grad_bias_rho[i] += weight * d_sigma * softplus_derivative(rho);
        }
    }

    /// Resets accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight_mu.fill(0.0);
        self.grad_weight_rho.fill(0.0);
        for g in &mut self.grad_bias_mu {
            *g = 0.0;
        }
        for g in &mut self.grad_bias_rho {
            *g = 0.0;
        }
    }

    /// Number of trainable parameters (`μ` and `ρ` for weights and biases).
    pub fn num_parameters(&self) -> usize {
        2 * (self.out_dim * self.in_dim + self.out_dim)
    }

    /// `(parameter, gradient)` pairs for the optimizer, ordered
    /// `weight_mu, weight_rho, bias_mu, bias_rho`.
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let grads: Vec<f64> = self
            .grad_weight_mu
            .data()
            .iter()
            .copied()
            .chain(self.grad_weight_rho.data().iter().copied())
            .chain(self.grad_bias_mu.iter().copied())
            .chain(self.grad_bias_rho.iter().copied())
            .collect();
        self.weight_mu
            .data_mut()
            .iter_mut()
            .chain(self.weight_rho.data_mut().iter_mut())
            .chain(self.bias_mu.iter_mut())
            .chain(self.bias_rho.iter_mut())
            .zip(grads)
            .collect()
    }
}

/// Reusable scratch buffers for the batched Bayesian forward/backward pass
/// (mirrors [`crate::mlp::BatchWorkspace`] plus the shared-GEMM gradient
/// scratch the variational backward pass needs).
#[derive(Debug, Clone, Default)]
pub struct BayesWorkspace {
    /// `activations[0]` is the input batch, `activations[i + 1]` layer `i`'s
    /// output.
    activations: Vec<Matrix>,
    pre_activations: Vec<Matrix>,
    weights_t: Vec<Matrix>,
    delta_a: Matrix,
    delta_b: Matrix,
    grad_scratch: Matrix,
}

impl BayesWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The output batch of the last batched forward pass.
    pub fn output(&self) -> &Matrix {
        self.activations
            .last()
            .expect("forward_batch has not run on this workspace")
    }
}

/// Reusable scratch for the fast predict path ([`BayesianMlp::predict_with`]).
///
/// Holds the materialized posterior scales `σ = softplus(ρ)` (so the hot
/// sampling loop pays one multiply-add per weight instead of a `softplus`
/// evaluation per draw) plus ping-pong activation buffers, making repeated
/// predictions allocation-free at steady state.
///
/// The σ cache is **stale after any parameter update**: the owner must call
/// [`PredictScratch::invalidate`] after `fit`/optimizer steps so the next
/// prediction recomputes it. A freshly created (or deserialized-into-default)
/// scratch starts invalid, so forgetting to persist it can never change
/// results.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    /// Per-layer `softplus(weight_rho)`.
    sigma_w: Vec<Matrix>,
    /// Per-layer `softplus(bias_rho)`.
    sigma_b: Vec<Vec<f64>>,
    /// Ping-pong activation buffers.
    x: Vec<f64>,
    y: Vec<f64>,
    /// Scalar outputs of the stochastic passes of one predict call.
    values: Vec<f64>,
    /// Whether the σ cache matches the network's current parameters.
    fresh: bool,
}

impl PredictScratch {
    /// Creates an empty (invalid) scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the σ cache stale; the next [`BayesianMlp::predict_with`] call
    /// recomputes it. Call after any update to the network's parameters.
    pub fn invalidate(&mut self) {
        self.fresh = false;
    }
}

/// A small Bayesian MLP producing a scalar prediction with uncertainty.
///
/// Used as the cost value estimator: input is the slice state, output is the
/// estimated remaining-episode cost of the baseline policy, reported as a
/// predictive mean and standard deviation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesianMlp {
    layers: Vec<BayesianLinear>,
}

impl BayesianMlp {
    /// Builds a Bayesian MLP from layer sizes, ReLU hidden activations and an
    /// identity output (a regression head).
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(
            sizes.len() >= 2,
            "a Bayesian MLP needs at least input and output sizes"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, w) in sizes.windows(2).enumerate() {
            let is_last = i == sizes.len() - 2;
            let act = if is_last {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(BayesianLinear::new(w[0], w[1], act, rng));
        }
        Self { layers }
    }

    /// The paper's default estimator trunk (`128x64x32`) with a scalar head.
    pub fn onslicing_default<R: Rng + ?Sized>(input_dim: usize, rng: &mut R) -> Self {
        Self::new(&[input_dim, 128, 64, 32, 1], rng)
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_dim())
    }

    /// Output dimensionality (1 for the cost-value estimator).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Deterministic forward pass through the posterior means.
    pub fn forward_mean(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward_mean(&x);
        }
        x
    }

    /// One stochastic forward pass (weights sampled from the posterior),
    /// caching intermediates for [`BayesianMlp::backward`].
    pub fn forward_sample<R: Rng + ?Sized>(&mut self, input: &[f64], rng: &mut R) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &mut self.layers {
            x = layer.forward_sample(&x, rng);
        }
        x
    }

    /// Backpropagates through the last stochastic forward pass.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Draws one posterior weight sample per layer for the batched passes.
    pub fn resample_weights<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for layer in &mut self.layers {
            layer.resample_weights(rng);
        }
    }

    /// Batched stochastic forward pass under the current weight sample — one
    /// GEMM per layer for the whole minibatch. `input` is
    /// `(batch × input_dim)`; the returned reference is the output batch
    /// inside `ws`. Call [`BayesianMlp::resample_weights`] first.
    pub fn forward_batch<'w>(&self, input: &Matrix, ws: &'w mut BayesWorkspace) -> &'w Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward_batch input dim mismatch"
        );
        ws.activations
            .resize_with(self.layers.len() + 1, Matrix::default);
        ws.pre_activations
            .resize_with(self.layers.len(), Matrix::default);
        ws.weights_t.resize_with(self.layers.len(), Matrix::default);
        ws.activations[0].resize(input.rows(), input.cols());
        ws.activations[0].data_mut().copy_from_slice(input.data());
        for (i, layer) in self.layers.iter().enumerate() {
            let BayesWorkspace {
                activations,
                pre_activations,
                weights_t,
                ..
            } = ws;
            let (head, tail) = activations.split_at_mut(i + 1);
            layer.forward_batch_into(
                &head[i],
                &mut weights_t[i],
                &mut pre_activations[i],
                &mut tail[0],
            );
        }
        ws.output()
    }

    /// Batched backward pass over the caches of the last
    /// [`BayesianMlp::forward_batch`]; `grad_output` is `dL/dy` for the whole
    /// minibatch. Gradients for `μ` and `ρ` accumulate into the layers.
    pub fn backward_batch(&mut self, grad_output: &Matrix, ws: &mut BayesWorkspace) {
        assert_eq!(
            ws.activations.len(),
            self.layers.len() + 1,
            "backward_batch called before forward_batch"
        );
        ws.delta_a.resize(grad_output.rows(), grad_output.cols());
        ws.delta_a.data_mut().copy_from_slice(grad_output.data());
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let BayesWorkspace {
                activations,
                pre_activations,
                delta_a,
                delta_b,
                grad_scratch,
                ..
            } = ws;
            let grad_input = if i > 0 { Some(&mut *delta_b) } else { None };
            layer.backward_batch(
                delta_a,
                &activations[i],
                &pre_activations[i],
                grad_scratch,
                grad_input,
            );
            if i > 0 {
                std::mem::swap(delta_a, delta_b);
            }
        }
    }

    /// Total KL divergence of the posterior from the prior.
    pub fn kl_to_prior(&self) -> f64 {
        self.layers.iter().map(|l| l.kl_to_prior()).sum()
    }

    /// Accumulates `weight · d KL/dφ` across all layers.
    pub fn accumulate_kl_grad(&mut self, weight: f64) {
        for layer in &mut self.layers {
            layer.accumulate_kl_grad(weight);
        }
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    /// `(parameter, gradient)` pairs across all layers.
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &mut self.layers {
            out.extend(layer.param_grad_pairs());
        }
        out
    }

    /// Squared l2 norm of all accumulated gradients.
    pub fn grad_norm_squared(&self) -> f64 {
        self.layers
            .iter()
            .map(BayesianLinear::grad_norm_squared)
            .sum()
    }

    /// Predictive mean and standard deviation of the scalar output, estimated
    /// from `num_samples` stochastic forward passes.
    ///
    /// # Panics
    /// Panics if the network output is not scalar or `num_samples == 0`.
    pub fn predict<R: Rng + ?Sized>(
        &mut self,
        input: &[f64],
        num_samples: usize,
        rng: &mut R,
    ) -> BayesianPrediction {
        assert_eq!(
            self.output_dim(),
            1,
            "predict requires a scalar output head"
        );
        assert!(num_samples > 0, "at least one posterior sample is required");
        let mut values = Vec::with_capacity(num_samples);
        for _ in 0..num_samples {
            values.push(self.forward_sample(input, rng)[0]);
        }
        let mean = values.iter().sum::<f64>() / num_samples as f64;
        let var = if num_samples > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (num_samples - 1) as f64
        } else {
            0.0
        };
        BayesianPrediction {
            mean,
            std: var.max(0.0).sqrt(),
        }
    }

    /// Fast form of [`BayesianMlp::predict`]: same stochastic passes, same
    /// RNG draw sequence, same accumulation order — **bit-identical** output
    /// — but through caller-owned scratch buffers, with the posterior scales
    /// `softplus(ρ)` cached in `scratch` instead of recomputed per draw, and
    /// zero allocations at steady state.
    ///
    /// Unlike `predict` this takes `&self`: it does not populate the
    /// backward caches (`predict` results are never backpropagated). The
    /// caller must [`PredictScratch::invalidate`] the scratch after any
    /// parameter update.
    ///
    /// # Panics
    /// Panics if the network output is not scalar or `num_samples == 0`.
    pub fn predict_with<R: Rng + ?Sized>(
        &self,
        input: &[f64],
        num_samples: usize,
        rng: &mut R,
        scratch: &mut PredictScratch,
    ) -> BayesianPrediction {
        assert_eq!(
            self.output_dim(),
            1,
            "predict requires a scalar output head"
        );
        assert!(num_samples > 0, "at least one posterior sample is required");
        assert_eq!(input.len(), self.input_dim(), "predict input dim mismatch");
        if !scratch.fresh {
            self.refresh_sigma_cache(scratch);
        }
        let PredictScratch {
            sigma_w,
            sigma_b,
            x,
            y,
            values,
            ..
        } = scratch;
        values.clear();
        for _ in 0..num_samples {
            x.clear();
            x.extend_from_slice(input);
            for (layer, (sw, sb)) in self.layers.iter().zip(sigma_w.iter().zip(sigma_b.iter())) {
                debug_assert_eq!(x.len(), layer.in_dim);
                y.resize(layer.out_dim, 0.0);
                for r in 0..layer.out_dim {
                    let mu_row = layer.weight_mu.row(r);
                    let sig_row = sw.row(r);
                    // Single sequential accumulator and the exact draw order
                    // of `forward_sample` (per row: in_dim weight draws, then
                    // one bias draw) — this is what keeps the fast path
                    // bit-identical on a shared RNG stream.
                    let mut acc = 0.0;
                    for (c, &xc) in x.iter().enumerate() {
                        let eps = standard_normal(rng);
                        let w = mu_row[c] + sig_row[c] * eps;
                        acc += w * xc;
                    }
                    let eb = standard_normal(rng);
                    let b = layer.bias_mu[r] + sb[r] * eb;
                    y[r] = layer.activation.apply(acc + b);
                }
                std::mem::swap(x, y);
            }
            values.push(x[0]);
        }
        let mean = values.iter().sum::<f64>() / num_samples as f64;
        let var = if num_samples > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (num_samples - 1) as f64
        } else {
            0.0
        };
        BayesianPrediction {
            mean,
            std: var.max(0.0).sqrt(),
        }
    }

    /// Rematerializes `softplus(ρ)` for every weight and bias into `scratch`.
    fn refresh_sigma_cache(&self, scratch: &mut PredictScratch) {
        scratch
            .sigma_w
            .resize_with(self.layers.len(), Matrix::default);
        scratch.sigma_b.resize_with(self.layers.len(), Vec::new);
        for (layer, (sw, sb)) in self
            .layers
            .iter()
            .zip(scratch.sigma_w.iter_mut().zip(scratch.sigma_b.iter_mut()))
        {
            sw.resize(layer.out_dim, layer.in_dim);
            for (s, &r) in sw.data_mut().iter_mut().zip(layer.weight_rho.data()) {
                *s = softplus(r);
            }
            sb.clear();
            sb.extend(layer.bias_rho.iter().map(|&r| softplus(r)));
        }
        scratch.fresh = true;
    }
}

impl crate::optimizer::ParameterSet for BayesianMlp {
    fn grad_norm_squared(&self) -> f64 {
        BayesianMlp::grad_norm_squared(self)
    }

    fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        for layer in &mut self.layers {
            layer.visit_param_blocks(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_mean_has_expected_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = BayesianMlp::new(&[3, 8, 1], &mut rng);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 1);
        let y = net.forward_mean(&[0.1, 0.2, 0.3]);
        assert_eq!(y.len(), 1);
        assert!(y[0].is_finite());
    }

    #[test]
    fn stochastic_passes_differ_but_stay_near_the_mean_pass() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = BayesianMlp::new(&[2, 16, 1], &mut rng);
        let x = [0.4, 0.6];
        let mean_pass = net.forward_mean(&x)[0];
        let a = net.forward_sample(&x, &mut rng)[0];
        let b = net.forward_sample(&x, &mut rng)[0];
        assert_ne!(a, b, "posterior sampling should produce different outputs");
        assert!((a - mean_pass).abs() < 5.0);
    }

    #[test]
    fn kl_to_prior_is_nonnegative_and_shrinks_sigma_reduces_it_to_mu_term() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = BayesianMlp::new(&[2, 4, 1], &mut rng);
        assert!(net.kl_to_prior().is_finite());
        // KL must be >= 0 only when sigma <= prior and mu small; in general
        // the Gaussian KL is always >= 0.
        assert!(net.kl_to_prior() >= 0.0);
    }

    #[test]
    fn backward_mu_gradients_match_finite_differences_when_sigma_is_tiny() {
        // With rho very negative the sampled weights equal mu, so the
        // stochastic gradient must match the deterministic finite difference.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = BayesianLinear::new(3, 2, Activation::Tanh, &mut rng);
        for r in 0..2 {
            for c in 0..3 {
                layer.weight_rho.set(r, c, -40.0);
            }
        }
        for rho in &mut layer.bias_rho {
            *rho = -40.0;
        }
        let x = [0.3, -0.2, 0.5];
        layer.zero_grad();
        let _ = layer.forward_sample(&x, &mut rng);
        let _ = layer.backward(&[1.0, 1.0]);
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let orig = layer.weight_mu.get(r, c);
                layer.weight_mu.set(r, c, orig + h);
                let fp: f64 = layer.forward_mean(&x).iter().sum();
                layer.weight_mu.set(r, c, orig - h);
                let fm: f64 = layer.forward_mean(&x).iter().sum();
                layer.weight_mu.set(r, c, orig);
                let numeric = (fp - fm) / (2.0 * h);
                let analytic = layer.grad_weight_mu.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "mu grad mismatch at ({r},{c}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn bayesian_regression_learns_mean_and_reports_uncertainty() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = BayesianMlp::new(&[1, 24, 1], &mut rng);
        let mut opt = Adam::new(net.num_parameters(), 5e-3);
        // Fit y = 2x on x in [0, 1].
        let dataset: Vec<(f64, f64)> = (0..32)
            .map(|i| {
                let x = i as f64 / 32.0;
                (x, 2.0 * x)
            })
            .collect();
        for _ in 0..400 {
            net.zero_grad();
            for (x, t) in &dataset {
                let y = net.forward_sample(&[*x], &mut rng)[0];
                // d/dy of 0.5*(y-t)^2, averaged over the dataset
                net.backward(&[(y - t) / dataset.len() as f64]);
            }
            net.accumulate_kl_grad(1e-4 / dataset.len() as f64);
            opt.step(net.param_grad_pairs());
        }
        let pred = net.predict(&[0.5], 64, &mut rng);
        assert!(
            (pred.mean - 1.0).abs() < 0.2,
            "predictive mean {} should be near 1.0",
            pred.mean
        );
        assert!(
            pred.std >= 0.0 && pred.std < 1.0,
            "uncertainty {} should be modest",
            pred.std
        );
    }

    #[test]
    fn fast_predict_is_bit_identical_to_reference_predict() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut net = BayesianMlp::new(&[3, 17, 9, 1], &mut rng);
        let mut scratch = PredictScratch::new();
        let input = [0.25, -0.4, 0.9];
        for samples in [1usize, 2, 16] {
            let mut rng_ref = ChaCha8Rng::seed_from_u64(777 + samples as u64);
            let mut rng_fast = rng_ref.clone();
            let reference = net.predict(&input, samples, &mut rng_ref);
            let fast = net.predict_with(&input, samples, &mut rng_fast, &mut scratch);
            assert_eq!(fast.mean.to_bits(), reference.mean.to_bits());
            assert_eq!(fast.std.to_bits(), reference.std.to_bits());
            // Both paths must consume the identical number of draws.
            assert_eq!(rng_ref.gen::<u64>(), rng_fast.gen::<u64>());
        }
    }

    #[test]
    fn fast_predict_tracks_parameter_updates_after_invalidate() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut net = BayesianMlp::new(&[2, 8, 1], &mut rng);
        let mut scratch = PredictScratch::new();
        let input = [0.3, 0.6];
        let _ = net.predict_with(&input, 4, &mut ChaCha8Rng::seed_from_u64(1), &mut scratch);
        // Perturb the posterior scales; a stale σ cache would now diverge.
        for layer in &mut net.layers {
            layer.weight_rho.fill(-1.0);
            for rho in &mut layer.bias_rho {
                *rho = -1.0;
            }
        }
        scratch.invalidate();
        let mut rng_ref = ChaCha8Rng::seed_from_u64(2);
        let mut rng_fast = rng_ref.clone();
        let reference = net.predict(&input, 8, &mut rng_ref);
        let fast = net.predict_with(&input, 8, &mut rng_fast, &mut scratch);
        assert_eq!(fast.mean.to_bits(), reference.mean.to_bits());
        assert_eq!(fast.std.to_bits(), reference.std.to_bits());
    }

    #[test]
    fn predict_with_one_sample_has_zero_std() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = BayesianMlp::new(&[2, 8, 1], &mut rng);
        let p = net.predict(&[0.2, 0.8], 1, &mut rng);
        assert_eq!(p.std, 0.0);
    }

    #[test]
    fn kl_gradient_pushes_mu_toward_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut net = BayesianMlp::new(&[2, 4, 1], &mut rng);
        let mut opt = Adam::new(net.num_parameters(), 1e-2);
        let before = net.kl_to_prior();
        for _ in 0..200 {
            net.zero_grad();
            net.accumulate_kl_grad(1.0);
            opt.step(net.param_grad_pairs());
        }
        let after = net.kl_to_prior();
        assert!(
            after < before,
            "optimizing the KL alone must reduce it: {before} -> {after}"
        );
    }

    #[test]
    fn num_parameters_counts_mu_and_rho() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let layer = BayesianLinear::new(3, 2, Activation::Relu, &mut rng);
        assert_eq!(layer.num_parameters(), 2 * (3 * 2 + 2));
    }

    #[test]
    #[should_panic(expected = "forward_batch called before resample_weights")]
    fn batched_forward_without_resample_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let net = BayesianMlp::new(&[2, 4, 1], &mut rng);
        let mut ws = BayesWorkspace::new();
        let input = Matrix::zeros(3, 2);
        let _ = net.forward_batch(&input, &mut ws);
    }

    #[test]
    #[should_panic(expected = "backward called before forward_sample")]
    fn backward_without_forward_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut layer = BayesianLinear::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.backward(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar output head")]
    fn predict_requires_scalar_output() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut net = BayesianMlp::new(&[2, 4, 2], &mut rng);
        let _ = net.predict(&[0.1, 0.2], 4, &mut rng);
    }
}
