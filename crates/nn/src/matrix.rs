//! A minimal row-major dense matrix used for batched linear algebra.
//!
//! The networks in this repository are small (at most a few hundred units per
//! layer), so a straightforward `Vec<f64>`-backed matrix with naive `O(n^3)`
//! multiplication is more than fast enough and keeps the code easy to audit.

use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            let row = self.row(i);
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Transposed-matrix-vector product `selfᵀ * v`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a * vi;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place element-wise addition of `scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Outer product of two vectors: `a ⊗ b` with shape `(a.len(), b.len())`.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                out.data[i * b.len() + j] = ai * bj;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Fills the matrix with a constant value.
    pub fn fill(&mut self, v: f64) {
        for x in &mut self.data {
            *x = v;
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (l2) norm of a slice.
pub fn l2_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.5, -1.0];
        let mv = a.matvec(&v);
        assert_eq!(mv, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
        let u = vec![2.0, -1.0];
        let tv = a.t_matvec(&u);
        assert_eq!(tv, vec![2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.rows(), 2);
        assert_eq!(o.cols(), 3);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, -2.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 0.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.add_scaled_assign(&g, 0.5);
        a.add_scaled_assign(&g, 0.5);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((squared_distance(&[1.0, 1.0], &[2.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_matches_l2_of_flat_data() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
