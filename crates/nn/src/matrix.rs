//! A minimal row-major dense matrix used for batched linear algebra.
//!
//! This is the numeric hot path of the whole reproduction: every agent
//! decision and every PPO minibatch funnels through these kernels. Three
//! design rules keep it fast without pulling in a BLAS:
//!
//! * **caller-owned outputs** — every product has an `_into` variant writing
//!   into a reusable buffer, so steady-state training performs no heap
//!   allocation;
//! * **register-tiled kernels** — [`Matrix::matmul_into`] accumulates a
//!   `4 × W` output tile entirely in registers (the batched dense-layer
//!   forward transposes `W` once per minibatch via
//!   [`Matrix::transpose_into`] to reach it), and
//!   [`Matrix::matmul_tn_acc_into`] does the same for the `δᵀ · X` weight
//!   gradients;
//! * **unrolled reductions** — [`dot`] runs over four independent
//!   accumulators, breaking the floating-point add dependency chain that
//!   serializes a naive loop, and [`Matrix::matvec_into`] interleaves four
//!   output rows through the same reduction ([`dot4`]) so single-sample
//!   inference pipelines too.
//!
//! ## Determinism
//!
//! Every kernel computes each output element with a fixed, tiling-invariant
//! reduction order: `matmul_into` sums the inner dimension sequentially per
//! element (whatever the tile width), and the matvec kernels reproduce
//! [`dot`]'s four-accumulator order per row. Cell-fused callers
//! (`onslicing_nn::cell`) therefore produce bit-identical results to the
//! per-slice paths they replace, and the optional rayon row-tile parallelism
//! in [`Matrix::matmul_into`] cannot change a single bit: threads only
//! partition *which* 4-row block a worker computes, never the reduction
//! order within an element.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Widest register tile, in output columns, tried by the tiled GEMM kernels
/// ([`Matrix::matmul_into`], [`Matrix::matmul_tn_acc_into`]).
///
/// This is the **single tuning knob** of the row-tile cascade: the kernels
/// sweep tile widths `TILE_W, TILE_W/2, TILE_W/4, TILE_W/8, 1` until the
/// remaining columns fit, so the scalar tail (`W = 1`) only runs for the
/// final `n mod 2` column. 16 columns × 4 rows keeps the accumulator tile
/// inside the 32 architectural vector registers of AVX-512/NEON-class cores
/// while remaining profitable on AVX2 (register spills stay L1-resident).
/// Must be a power of two ≥ 8. Changing it is safe for determinism — the
/// per-element reduction order is tile-width-invariant (see module docs).
pub const TILE_W: usize = 16;

/// 4-row output blocks beyond which [`Matrix::matmul_into`] fans the blocks
/// out across the rayon pool (only when more than one worker is configured).
/// 16 blocks = 64 output rows ≈ the smallest GEMM where spawn overhead is
/// clearly amortized on the minibatch shapes this workspace uses.
const PAR_ROW_BLOCKS_MIN: usize = 16;

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Register-tile micro-kernel for `matmul_into`: accumulates a
/// `4 × W` output tile (four rows of `A` against `W` columns of `B`) across
/// the whole inner dimension, entirely in registers.
#[inline(always)]
fn gemm_tile_rows<const W: usize>(
    a: [&[f64]; 4],
    b_data: &[f64],
    n: usize,
    j: usize,
) -> [[f64; W]; 4] {
    let mut acc = [[0.0f64; W]; 4];
    for k in 0..a[0].len() {
        let b: &[f64; W] = b_data[k * n + j..k * n + j + W]
            .try_into()
            .expect("tile width");
        let aq = [a[0][k], a[1][k], a[2][k], a[3][k]];
        for (acc_row, aq) in acc.iter_mut().zip(aq) {
            for (o, b) in acc_row.iter_mut().zip(b) {
                *o += aq * b;
            }
        }
    }
    acc
}

/// Register-tile micro-kernel for `matmul_tn_acc_into`: accumulates the
/// `4 × W` tile `δᵀ·X` (four δ columns at `k` against `W` X columns at `j`)
/// across the whole batch, entirely in registers.
#[inline(always)]
fn gemm_tile_tn<const W: usize>(
    d_data: &[f64],
    d_cols: usize,
    x_data: &[f64],
    n: usize,
    batch: usize,
    k: usize,
    j: usize,
) -> [[f64; W]; 4] {
    let mut acc = [[0.0f64; W]; 4];
    for b in 0..batch {
        let d_at = b * d_cols + k;
        let d = [
            d_data[d_at],
            d_data[d_at + 1],
            d_data[d_at + 2],
            d_data[d_at + 3],
        ];
        let x: &[f64; W] = x_data[b * n + j..b * n + j + W]
            .try_into()
            .expect("tile width");
        for (acc_row, d) in acc.iter_mut().zip(d) {
            for (o, x) in acc_row.iter_mut().zip(x) {
                *o += d * x;
            }
        }
    }
    acc
}

/// One 4-row block of `out = A · B`: runs the register-tile cascade
/// (`TILE_W` down to the scalar tail) over all `n` output columns of rows
/// `i..i + 4`, writing into the block's slice of the output buffer.
///
/// Shared by the sequential and the rayon row-tiled drivers of
/// [`Matrix::matmul_into`], so the two orderings are the same code path per
/// element — bit-identity across thread counts by construction.
#[inline(always)]
fn gemm_block_rows(a_data: &[f64], kd: usize, b_data: &[f64], n: usize, i: usize, out: &mut [f64]) {
    let a = [
        &a_data[i * kd..(i + 1) * kd],
        &a_data[(i + 1) * kd..(i + 2) * kd],
        &a_data[(i + 2) * kd..(i + 3) * kd],
        &a_data[(i + 3) * kd..(i + 4) * kd],
    ];
    let mut j = 0;
    macro_rules! row_tile_pass {
        ($w:expr) => {
            // `j + $w <= n` keeps every width on the same literal guard —
            // clippy's `j < n` suggestion only holds for the `$w == 1` pass.
            #[allow(clippy::int_plus_one)]
            while j + $w <= n {
                let acc = gemm_tile_rows::<{ $w }>(a, b_data, n, j);
                for (r, acc_row) in acc.iter().enumerate() {
                    out[r * n + j..r * n + j + $w].copy_from_slice(acc_row);
                }
                j += $w;
            }
        };
    }
    row_tile_pass!(TILE_W);
    row_tile_pass!(TILE_W / 2);
    row_tile_pass!(TILE_W / 4);
    row_tile_pass!(TILE_W / 8);
    row_tile_pass!(1);
}

/// Four-row interleaved [`dot`] micro-kernel: `out[r] = rows[r] · v` for four
/// matrix rows in a single pass over `v`.
///
/// Each row keeps its own four accumulators and combines them exactly as
/// [`dot`] does — `(s0 + s1) + (s2 + s3) + tail` over sequential 4-chunks —
/// so every output is **bit-identical** to `dot(rows[r], v)`; interleaving
/// only widens the instruction-level parallelism from 4 to 16 independent
/// FMA chains and lets the four rows share each load of `v`.
#[inline(always)]
pub fn dot4(rows: [&[f64]; 4], v: &[f64]) -> [f64; 4] {
    let len = v.len();
    for row in &rows {
        assert_eq!(row.len(), len, "dot4 length mismatch");
    }
    let main = len - len % 4;
    let mut acc = [[0.0f64; 4]; 4];
    let mut k = 0;
    while k < main {
        let vb = [v[k], v[k + 1], v[k + 2], v[k + 3]];
        for (acc_row, row) in acc.iter_mut().zip(rows.iter()) {
            acc_row[0] += row[k] * vb[0];
            acc_row[1] += row[k + 1] * vb[1];
            acc_row[2] += row[k + 2] * vb[2];
            acc_row[3] += row[k + 3] * vb[3];
        }
        k += 4;
    }
    let mut out = [0.0f64; 4];
    for (o, (acc_row, row)) in out.iter_mut().zip(acc.iter().zip(rows.iter())) {
        let mut tail = 0.0;
        for (x, y) in row[main..].iter().zip(v[main..].iter()) {
            tail += x * y;
        }
        *o = (acc_row[0] + acc_row[1]) + (acc_row[2] + acc_row[3]) + tail;
    }
    out
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (a convenient workspace placeholder —
    /// [`Matrix::resize`] gives it its real shape on first use).
    fn default() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix in place, reusing the existing allocation when it
    /// is large enough. The contents after a resize are all zeros.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies a slice into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != cols`.
    pub fn copy_row_from(&mut self, r: usize, src: &[f64]) {
        self.row_mut(r).copy_from_slice(src);
    }

    /// Adds `bias` to every row (the batched dense-layer bias term).
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `out = self * other`, writing into a caller-owned
    /// buffer (resized as needed, no allocation once warm).
    ///
    /// The main body runs a register-tiled micro-kernel: a `4 × TILE_W`
    /// output tile (four rows of `A` against [`TILE_W`] columns of `B`) is
    /// accumulated entirely in registers while the `B` panel for the tile
    /// stays L1-resident, giving independent FMA streams per `k` step
    /// instead of a store-bandwidth-bound row update. Ragged edges fall back
    /// to an unrolled row-axpy loop.
    ///
    /// When the rayon pool has more than one worker and the output is at
    /// least `4 × PAR_ROW_BLOCKS_MIN` rows tall, the independent 4-row
    /// blocks fan out across the pool. Each block runs the identical
    /// [`gemm_block_rows`] cascade, so results are bit-identical at any
    /// thread count (the parallel driver does allocate a transient block
    /// list; the steady-state single-thread path allocates nothing).
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.resize(self.rows, other.cols);
        let (m, kd, n) = (self.rows, self.cols, other.cols);
        let m_main = m - m % 4;
        let blocks = m_main / 4;
        if blocks >= PAR_ROW_BLOCKS_MIN && n > 0 && rayon::current_num_threads() > 1 {
            let block_views: Vec<(usize, &mut [f64])> = out.data[..m_main * n]
                .chunks_mut(4 * n)
                .enumerate()
                .collect();
            block_views.into_par_iter().for_each(|(blk, out_block)| {
                gemm_block_rows(&self.data, kd, &other.data, n, blk * 4, out_block);
            });
        } else {
            for blk in 0..blocks {
                let i = blk * 4;
                gemm_block_rows(
                    &self.data,
                    kd,
                    &other.data,
                    n,
                    i,
                    &mut out.data[i * n..(i + 4) * n],
                );
            }
        }
        // Ragged row edge: plain unrolled axpy over the full width.
        for i in m_main..m {
            let a_row = &self.data[i * kd..(i + 1) * kd];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Accumulating transposed-A product `out += selfᵀ * other`.
    ///
    /// This is the batched weight-gradient kernel: with `self = δ`
    /// (batch × out) and `other = X` (batch × in), it accumulates
    /// `δᵀ · X` (out × in) straight into the layer's gradient buffer.
    ///
    /// # Panics
    /// Panics if the batch dimensions disagree or `out` has the wrong shape.
    #[allow(clippy::int_plus_one)] // `j + 1 <= n` arises from the W=1 tile macro instantiation
    pub fn matmul_tn_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn batch dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_tn output shape mismatch"
        );
        let n = other.cols;
        let batch = self.rows;
        // Register-tiled like `matmul_into`: a 4 (δ columns) × W (X
        // columns) gradient tile accumulates in registers across the whole
        // batch, then is added back into `out` once.
        let k_main = self.cols - self.cols % 4;
        let mut n_main = 0;
        for k in (0..k_main).step_by(4) {
            let mut j = 0;
            macro_rules! tn_tile_pass {
                ($w:expr) => {
                    while j + $w <= n {
                        let acc = gemm_tile_tn::<{ $w }>(
                            &self.data,
                            self.cols,
                            &other.data,
                            n,
                            batch,
                            k,
                            j,
                        );
                        for (r, acc_row) in acc.iter().enumerate() {
                            let out_row = &mut out.data[(k + r) * n + j..(k + r) * n + j + $w];
                            for (o, a) in out_row.iter_mut().zip(acc_row) {
                                *o += a;
                            }
                        }
                        j += $w;
                    }
                };
            }
            tn_tile_pass!(TILE_W);
            tn_tile_pass!(TILE_W / 2);
            tn_tile_pass!(TILE_W / 4);
            tn_tile_pass!(TILE_W / 8);
            tn_tile_pass!(1);
            n_main = j;
        }
        // Ragged edges: per-sample axpy on the leftover δ columns / X
        // columns (< 4 wide).
        for b in 0..batch {
            let d_row = self.row(b);
            let x_row = &other.data[b * n..(b + 1) * n];
            for (k, &d) in d_row.iter().enumerate() {
                let (j_start, j_end) = if k < k_main { (n_main, n) } else { (0, n) };
                if j_start == j_end {
                    continue;
                }
                let out_row = &mut out.data[k * n + j_start..k * n + j_end];
                for (o, x) in out_row.iter_mut().zip(x_row[j_start..j_end].iter()) {
                    *o += d * x;
                }
            }
        }
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix-vector product into a caller-owned buffer.
    ///
    /// Processes four output rows at a time through [`dot4`] (the rows share
    /// each load of `v` and the FMA chains interleave), falling back to
    /// [`dot`] for the ragged `rows mod 4` tail. Both kernels reduce in the
    /// identical order, so each output element is bit-for-bit what a plain
    /// `dot(row, v)` loop produces.
    ///
    /// # Panics
    /// Panics if the dimensions disagree.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        assert_eq!(self.rows, out.len(), "matvec output length mismatch");
        let main = self.rows - self.rows % 4;
        for i in (0..main).step_by(4) {
            let vals = dot4(
                [
                    self.row(i),
                    self.row(i + 1),
                    self.row(i + 2),
                    self.row(i + 3),
                ],
                v,
            );
            out[i..i + 4].copy_from_slice(&vals);
        }
        for (i, slot) in out.iter_mut().enumerate().skip(main) {
            *slot = dot(self.row(i), v);
        }
    }

    /// Transposed-matrix-vector product `selfᵀ * v`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_matvec_into(v, &mut out);
        out
    }

    /// Transposed-matrix-vector product into a caller-owned buffer.
    ///
    /// # Panics
    /// Panics if the dimensions disagree.
    pub fn t_matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        assert_eq!(self.cols, out.len(), "t_matvec output length mismatch");
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            let row = self.row(i);
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a * vi;
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose into a caller-owned buffer (resized as needed).
    ///
    /// The batched layer forward pays this `O(rows · cols)` copy once per
    /// minibatch so the `O(batch · rows · cols)` GEMM can run the
    /// vectorizable row-streaming kernel of [`Matrix::matmul_into`].
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise addition of `scale * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Outer product of two vectors: `a ⊗ b` with shape `(a.len(), b.len())`.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                out.data[i * b.len() + j] = ai * bj;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Fills the matrix with a constant value.
    pub fn fill(&mut self, v: f64) {
        for x in &mut self.data {
            *x = v;
        }
    }
}

/// Dot product of two equal-length slices.
///
/// Runs over four independent accumulators so the floating-point adds
/// pipeline instead of forming one serial dependency chain; this is the inner
/// kernel of every matrix product above.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Euclidean (l2) norm of a slice.
pub fn l2_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, 0.5, -1.0];
        let mv = a.matvec(&v);
        assert_eq!(mv, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
        let u = vec![2.0, -1.0];
        let tv = a.t_matvec(&u);
        assert_eq!(tv, vec![2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.rows(), 2);
        assert_eq!(o.cols(), 3);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, -2.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 0.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.add_scaled_assign(&g, 0.5);
        a.add_scaled_assign(&g, 0.5);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((squared_distance(&[1.0, 1.0], &[2.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_matches_l2_of_flat_data() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_handles_empty_and_degenerate_shapes() {
        // Empty inner dimension: the product is the zero matrix.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let c = a.matmul(&b);
        assert_eq!((c.rows(), c.cols()), (3, 4));
        assert!(c.data().iter().all(|&v| v == 0.0));
        // Fully empty operands.
        let c = Matrix::zeros(0, 5).matmul(&Matrix::zeros(5, 0));
        assert_eq!((c.rows(), c.cols()), (0, 0));
        // 1×N row vector times N×1 column vector: a dot product.
        let row = Matrix::from_vec(1, 5, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let col = Matrix::from_vec(5, 1, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        let c = row.matmul(&col);
        assert_eq!((c.rows(), c.cols()), (1, 1));
        assert!((c.get(0, 0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_into_reuses_buffers_across_shapes() {
        let mut out = Matrix::default();
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.row(0), &[19.0, 22.0]);
        // Shrinking and re-growing the output leaves no stale values behind.
        let small = Matrix::from_rows(&[vec![2.0]]);
        small.matmul_into(&Matrix::from_rows(&[vec![3.0]]), &mut out);
        assert_eq!((out.rows(), out.cols()), (1, 1));
        assert_eq!(out.get(0, 0), 6.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_acc_accumulates_transposed_product() {
        // δ (2×3), X (2×2): out (3×2) += δᵀ · X.
        let delta = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, -1.0]]);
        let x = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut out = Matrix::zeros(3, 2);
        delta.matmul_tn_acc_into(&x, &mut out);
        let expected = delta.transpose().matmul(&x);
        for i in 0..3 {
            for j in 0..2 {
                assert!((out.get(i, j) - expected.get(i, j)).abs() < 1e-12);
            }
        }
        // A second call accumulates on top.
        delta.matmul_tn_acc_into(&x, &mut out);
        assert!((out.get(0, 0) - 2.0 * expected.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul_tn batch dimension mismatch")]
    fn matmul_tn_acc_rejects_mismatched_batches() {
        let delta = Matrix::zeros(2, 3);
        let x = Matrix::zeros(4, 5);
        let mut out = Matrix::zeros(3, 5);
        delta.matmul_tn_acc_into(&x, &mut out);
    }

    #[test]
    #[should_panic(expected = "matmul_tn output shape mismatch")]
    fn matmul_tn_acc_rejects_bad_output_shape() {
        let delta = Matrix::zeros(2, 3);
        let x = Matrix::zeros(2, 5);
        let mut out = Matrix::zeros(5, 3); // transposed by mistake
        delta.matmul_tn_acc_into(&x, &mut out);
    }

    /// Deterministic pseudo-random fill so the kernel-equivalence tests
    /// exercise non-trivial mantissas without an RNG dependency.
    fn lcg_fill(data: &mut [f64], seed: &mut u64) {
        for x in data {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x = ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        }
    }

    /// Scalar reference for `matmul_into`: one sequential-`k` accumulator
    /// per output element — the reduction order the tiled cascade must
    /// reproduce exactly.
    fn scalar_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_scalar_at_awkward_widths() {
        // Shapes straddling every tile width (TILE_W .. scalar tail) and the
        // 4-row blocking, including non-multiples of 8 in every dimension.
        let mut seed = 0x5EED;
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 9, 17),
            (5, 13, 19),
            (7, 8, 33),
            (8, 31, 15),
            (12, 6, 23),
            (65, 9, 21),
        ] {
            let mut a = Matrix::zeros(m, k);
            let mut b = Matrix::zeros(k, n);
            lcg_fill(a.data_mut(), &mut seed);
            lcg_fill(b.data_mut(), &mut seed);
            let tiled = a.matmul(&b);
            let reference = scalar_matmul(&a, &b);
            assert_eq!(
                tiled.data(),
                reference.data(),
                "tiled matmul diverged bitwise at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn tiled_matmul_tn_is_bit_identical_to_scalar_accumulation() {
        let mut seed = 0xACC;
        for &(batch, out_dim, in_dim) in &[(1, 3, 5), (5, 7, 17), (9, 8, 31), (32, 13, 19)] {
            let mut delta = Matrix::zeros(batch, out_dim);
            let mut x = Matrix::zeros(batch, in_dim);
            lcg_fill(delta.data_mut(), &mut seed);
            lcg_fill(x.data_mut(), &mut seed);
            let mut tiled = Matrix::zeros(out_dim, in_dim);
            delta.matmul_tn_acc_into(&x, &mut tiled);
            // Scalar reference: per output element, accumulate over the
            // batch sequentially (the order the tile kernel uses).
            let mut reference = Matrix::zeros(out_dim, in_dim);
            for kk in 0..out_dim {
                for j in 0..in_dim {
                    let mut acc = 0.0;
                    for b in 0..batch {
                        acc += delta.get(b, kk) * x.get(b, j);
                    }
                    reference.set(kk, j, acc);
                }
            }
            assert_eq!(
                tiled.data(),
                reference.data(),
                "tn kernel diverged bitwise at batch={batch} {out_dim}x{in_dim}"
            );
        }
    }

    #[test]
    fn dot4_matches_dot_bit_for_bit_including_tails() {
        let mut seed = 0xD04;
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 31, 64, 129] {
            let mut m = Matrix::zeros(4, len);
            let mut v = vec![0.0; len];
            lcg_fill(m.data_mut(), &mut seed);
            lcg_fill(&mut v, &mut seed);
            let grouped = dot4([m.row(0), m.row(1), m.row(2), m.row(3)], &v);
            for (r, &g) in grouped.iter().enumerate() {
                let single = dot(m.row(r), &v);
                assert!(
                    g.to_bits() == single.to_bits(),
                    "dot4 row {r} diverged from dot at len {len}"
                );
            }
        }
    }

    #[test]
    fn matvec_into_is_bit_identical_to_per_row_dot() {
        let mut seed = 0x11;
        for &(rows, cols) in &[(1, 9), (3, 5), (4, 4), (5, 13), (64, 9), (33, 21)] {
            let mut m = Matrix::zeros(rows, cols);
            let mut v = vec![0.0; cols];
            lcg_fill(m.data_mut(), &mut seed);
            lcg_fill(&mut v, &mut seed);
            let mut out = vec![0.0; rows];
            m.matvec_into(&v, &mut out);
            for (r, &o) in out.iter().enumerate() {
                assert_eq!(o.to_bits(), dot(m.row(r), &v).to_bits());
            }
        }
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut t = Matrix::default();
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_every_row() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -2.0]);
        }
    }
}
