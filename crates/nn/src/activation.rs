//! Activation functions and their derivatives.
//!
//! The paper's policy networks use ReLU hidden layers and Sigmoid actor
//! outputs (so every action dimension is a normalized share in `[0, 1]`,
//! §6 "The OnSlicing agents"). `Tanh` and `Identity` are provided for value
//! heads and regression outputs.

use serde::{Deserialize, Serialize};

use crate::sigmoid;

/// Supported element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, output in `(0, 1)`.
    Sigmoid,
    /// Hyperbolic tangent, output in `(-1, 1)`.
    Tanh,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Pass-through (no nonlinearity).
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of the *pre-activation*
    /// input `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to every element of a slice, returning a new vector.
    pub fn apply_vec(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Writes `act(src[i])` into `dst[i]` — the allocation-free batched
    /// forward kernel.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn apply_into(self, src: &[f64], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "activation buffer length mismatch");
        match self {
            // Specialized loops keep the hot ReLU/Identity cases branch-free
            // inside the element body.
            Activation::Relu => {
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = if s > 0.0 { s } else { 0.0 };
                }
            }
            Activation::Identity => dst.copy_from_slice(src),
            act => {
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = act.apply(s);
                }
            }
        }
    }

    /// Multiplies `delta[i]` by `act'(pre[i])` in place — the batched
    /// backward kernel turning `dL/dy` into `dL/d(pre-activation)`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn mul_derivative_into(self, pre: &[f64], delta: &mut [f64]) {
        assert_eq!(pre.len(), delta.len(), "derivative buffer length mismatch");
        match self {
            Activation::Relu => {
                // Branchless select: the pre-activation sign is data
                // dependent, so a conditional store would mispredict half
                // the time and block vectorization.
                for (d, &z) in delta.iter_mut().zip(pre.iter()) {
                    *d = if z > 0.0 { *d } else { 0.0 };
                }
            }
            Activation::Identity => {}
            act => {
                for (d, &z) in delta.iter_mut().zip(pre.iter()) {
                    *d *= act.derivative(z);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(a: Activation, x: f64) -> f64 {
        let h = 1e-6;
        (a.apply(x + h) - a.apply(x - h)) / (2.0 * h)
    }

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::Relu.apply(-1.5), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let a = Activation::Sigmoid;
        assert!((a.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(a.apply(20.0) > 0.999);
        assert!(a.apply(-20.0) < 0.001);
    }

    #[test]
    fn analytic_derivatives_match_numeric_ones() {
        for act in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
            Activation::LeakyRelu,
        ] {
            for i in -10..=10 {
                let x = i as f64 / 3.0 + 0.05; // avoid the ReLU kink at 0
                let analytic = act.derivative(x);
                let numeric = numeric_derivative(act, x);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "{act:?} derivative mismatch at {x}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn apply_vec_maps_each_element() {
        let v = Activation::Relu.apply_vec(&[-1.0, 0.0, 2.0]);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn tanh_is_odd_function() {
        let a = Activation::Tanh;
        for i in 1..20 {
            let x = i as f64 / 4.0;
            assert!((a.apply(x) + a.apply(-x)).abs() < 1e-12);
        }
    }
}
