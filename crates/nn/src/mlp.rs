//! Multi-layer perceptron built from [`Dense`](crate::layer::Dense) layers.
//!
//! The OnSlicing paper uses 3-layer fully connected trunks of sizes
//! `128 x 64 x 32` with ReLU hidden activations for every policy network
//! (§6, "The OnSlicing agents"); [`Mlp::onslicing_default`] builds exactly
//! that shape.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layer::Dense;
use crate::matrix::Matrix;

/// Reusable per-layer scratch buffers for the batched forward/backward pass.
///
/// One workspace serves one network (or several networks of identical
/// architecture). All buffers are plain [`Matrix`] values that are *resized*,
/// never reallocated, between minibatches — after the first (largest) batch
/// the steady-state forward/backward path performs zero heap allocations.
///
/// The workspace also carries the caches the backward pass needs
/// (per-layer inputs and pre-activations), which keeps `Mlp::forward_batch`
/// usable through `&self` and lets one network own many concurrent batched
/// evaluations if needed.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    /// `activations[0]` is the input batch; `activations[i + 1]` is layer
    /// `i`'s output. Length `num_layers + 1` once used.
    activations: Vec<Matrix>,
    /// `pre_activations[i]` is layer `i`'s pre-activation batch.
    pre_activations: Vec<Matrix>,
    /// Per-layer transposed-weight scratch for the forward GEMM.
    weights_t: Vec<Matrix>,
    /// Ping-pong buffers for the backward delta.
    delta_a: Matrix,
    delta_b: Matrix,
}

impl BatchWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, num_layers: usize) {
        self.activations
            .resize_with(num_layers + 1, Matrix::default);
        self.pre_activations
            .resize_with(num_layers, Matrix::default);
        self.weights_t.resize_with(num_layers, Matrix::default);
    }

    /// The input buffer, resized to `(batch × dim)`; fill it (e.g. by
    /// gathering minibatch rows) and pass the workspace to
    /// [`Mlp::forward_batch`] with `input: None` to avoid an extra copy.
    pub fn input_mut(&mut self, batch: usize, dim: usize) -> &mut Matrix {
        if self.activations.is_empty() {
            self.activations.push(Matrix::default());
        }
        self.activations[0].resize(batch, dim);
        &mut self.activations[0]
    }

    /// The output batch of the last `forward_batch` call.
    pub fn output(&self) -> &Matrix {
        self.activations
            .last()
            .expect("forward_batch has not run on this workspace")
    }
}

/// A feed-forward network: a stack of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from a list of layer sizes.
    ///
    /// `sizes = [in, h1, ..., out]`; hidden layers use `hidden_activation`,
    /// the final layer uses `output_activation`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output size"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_last = layers.len() == sizes.len() - 2;
            let act = if is_last {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Dense::new(w[0], w[1], act, rng));
        }
        Self { layers }
    }

    /// The paper's default trunk: `input -> 128 -> 64 -> 32 -> output` with
    /// ReLU hidden layers.
    pub fn onslicing_default<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self::new(
            &[input_dim, 128, 64, 32, output_dim],
            Activation::Relu,
            output_activation,
            rng,
        )
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.in_dim())
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Immutable view of the layer stack (used by benchmarks reconstructing
    /// reference implementations around the same weights).
    pub fn layers_ref(&self) -> &[Dense] {
        &self.layers
    }

    /// Inference-only forward pass.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass caching intermediate values for [`Mlp::backward`].
    pub fn forward_train(&mut self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &mut self.layers {
            x = layer.forward_train(&x);
        }
        x
    }

    /// Backpropagates `dL/dy` through the network and accumulates parameter
    /// gradients. Returns `dL/dx` (rarely needed, but useful when an MLP is a
    /// sub-module of a larger differentiable computation).
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Batched forward pass: one GEMM per layer for the whole minibatch.
    ///
    /// `input` is `(batch × input_dim)`. Activations and pre-activations are
    /// cached in `ws` for a subsequent [`Mlp::backward_batch`]; the returned
    /// reference is the `(batch × output_dim)` output living inside `ws`.
    /// Steady state performs zero heap allocations.
    pub fn forward_batch<'w>(&self, input: &Matrix, ws: &'w mut BatchWorkspace) -> &'w Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "forward_batch input dim mismatch"
        );
        let buf = ws.input_mut(input.rows(), input.cols());
        buf.data_mut().copy_from_slice(input.data());
        self.forward_batch_prefilled(ws)
    }

    /// Like [`Mlp::forward_batch`], but the input batch was already written
    /// into [`BatchWorkspace::input_mut`] — the gather-into-workspace pattern
    /// the PPO minibatch loop uses to skip one copy.
    pub fn forward_batch_prefilled<'w>(&self, ws: &'w mut BatchWorkspace) -> &'w Matrix {
        ws.prepare(self.layers.len());
        assert_eq!(
            ws.activations[0].cols(),
            self.input_dim(),
            "workspace input dim mismatch"
        );
        for (i, layer) in self.layers.iter().enumerate() {
            // Split so the layer reads activations[i] and writes
            // pre_activations[i] / activations[i + 1] without overlap.
            let BatchWorkspace {
                activations,
                pre_activations,
                weights_t,
                ..
            } = ws;
            let (head, tail) = activations.split_at_mut(i + 1);
            layer.forward_batch_into(
                &head[i],
                &mut weights_t[i],
                &mut pre_activations[i],
                &mut tail[0],
            );
        }
        ws.output()
    }

    /// Batched backward pass over the caches of the last
    /// [`Mlp::forward_batch`] on `ws`: `grad_output` is `dL/dy` for the whole
    /// minibatch `(batch × output_dim)`. Parameter gradients accumulate into
    /// the layers (one GEMM per layer); the input gradient is not computed —
    /// no caller needs `dL/dx` on the batched path.
    ///
    /// # Panics
    /// Panics if `ws` was not filled by a matching forward pass.
    pub fn backward_batch(&mut self, grad_output: &Matrix, ws: &mut BatchWorkspace) {
        assert_eq!(
            ws.activations.len(),
            self.layers.len() + 1,
            "backward_batch called before forward_batch"
        );
        ws.delta_a.resize(grad_output.rows(), grad_output.cols());
        ws.delta_a.data_mut().copy_from_slice(grad_output.data());
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let BatchWorkspace {
                activations,
                pre_activations,
                delta_a,
                delta_b,
                ..
            } = ws;
            let grad_input = if i > 0 { Some(&mut *delta_b) } else { None };
            layer.backward_batch(delta_a, &activations[i], &pre_activations[i], grad_input);
            if i > 0 {
                std::mem::swap(delta_a, delta_b);
            }
        }
    }

    /// Squared l2 norm of all accumulated gradients.
    pub fn grad_norm_squared(&self) -> f64 {
        self.layers.iter().map(Dense::grad_norm_squared).sum()
    }

    /// Visits `(params, grads, scale)` blocks in [`Mlp::param_grad_pairs`]
    /// order without allocating.
    pub fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        for layer in &mut self.layers {
            layer.visit_param_blocks(f);
        }
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Scales all accumulated gradients (e.g. by `1/batch_size`).
    pub fn scale_grad(&mut self, s: f64) {
        for layer in &mut self.layers {
            layer.scale_grad(s);
        }
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    /// Returns `(parameter, gradient)` pairs across all layers.
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &mut self.layers {
            out.extend(layer.param_grad_pairs());
        }
        out
    }

    /// Flat snapshot of all parameters.
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        for layer in &self.layers {
            out.extend(layer.parameters());
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if the length does not match [`Mlp::num_parameters`].
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.num_parameters();
            layer.set_parameters(&params[offset..offset + n]);
            offset += n;
        }
    }

    /// Copies the parameters from another MLP with the same architecture.
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_parameters_from(&mut self, other: &Mlp) {
        self.set_parameters(&other.parameters());
    }
}

impl crate::optimizer::ParameterSet for Mlp {
    fn grad_norm_squared(&self) -> f64 {
        Mlp::grad_norm_squared(self)
    }

    fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        Mlp::visit_param_blocks(self, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse_grad, mse_loss};
    use crate::optimizer::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dimensions_are_derived_from_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Mlp::new(
            &[7, 16, 8, 3],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        assert_eq!(net.input_dim(), 7);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_layers(), 3);
    }

    #[test]
    fn onslicing_default_has_paper_architecture() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Mlp::onslicing_default(20, 10, Activation::Sigmoid, &mut rng);
        assert_eq!(net.num_layers(), 4);
        assert_eq!(net.input_dim(), 20);
        assert_eq!(net.output_dim(), 10);
        // 20*128+128 + 128*64+64 + 64*32+32 + 32*10+10
        assert_eq!(
            net.num_parameters(),
            20 * 128 + 128 + 128 * 64 + 64 + 64 * 32 + 32 + 32 * 10 + 10
        );
    }

    #[test]
    fn sigmoid_output_is_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Sigmoid, &mut rng);
        let y = net.forward(&[10.0, -10.0, 3.0, 0.0]);
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradient_check_full_network() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = vec![0.2, -0.4, 0.8];
        let target = vec![0.5, -0.5];

        net.zero_grad();
        let y = net.forward_train(&x);
        let grad = mse_grad(&y, &target);
        net.backward(&grad);

        let analytic: Vec<f64> = net.param_grad_pairs().iter().map(|(_, g)| *g).collect();
        let params = net.parameters();
        let h = 1e-6;
        for i in (0..params.len()).step_by(7) {
            let mut plus = params.clone();
            plus[i] += h;
            let mut minus = params.clone();
            minus[i] -= h;
            let mut np = net.clone();
            np.set_parameters(&plus);
            let mut nm = net.clone();
            nm.set_parameters(&minus);
            let lp = mse_loss(&np.forward(&x), &target);
            let lm = mse_loss(&nm.forward(&x), &target);
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - analytic[i]).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn can_learn_a_simple_regression_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = Mlp::new(
            &[2, 24, 24, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(net.num_parameters(), 5e-3);
        // Learn f(a, b) = a * 0.5 + b * 0.25.
        let dataset: Vec<(Vec<f64>, Vec<f64>)> = (0..64)
            .map(|i| {
                let a = (i % 8) as f64 / 8.0;
                let b = (i / 8) as f64 / 8.0;
                (vec![a, b], vec![0.5 * a + 0.25 * b])
            })
            .collect();
        for _ in 0..400 {
            net.zero_grad();
            for (x, t) in &dataset {
                let y = net.forward_train(x);
                let mut g = mse_grad(&y, t);
                for gi in &mut g {
                    *gi /= dataset.len() as f64;
                }
                net.backward(&g);
            }
            opt.step(net.param_grad_pairs());
        }
        let mut total = 0.0;
        for (x, t) in &dataset {
            total += mse_loss(&net.forward(x), t);
        }
        assert!(
            total / (dataset.len() as f64) < 1e-3,
            "network failed to fit linear target"
        );
    }

    #[test]
    fn forward_batch_matches_per_sample_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = Mlp::new(
            &[5, 16, 8, 3],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let mut batch = Matrix::zeros(7, 5);
        for b in 0..7 {
            for c in 0..5 {
                batch.set(b, c, (b as f64 - 3.0) * 0.3 + c as f64 * 0.1);
            }
        }
        let mut ws = BatchWorkspace::new();
        let out = net.forward_batch(&batch, &mut ws);
        for b in 0..7 {
            let per_sample = net.forward(batch.row(b));
            for (x, y) in out.row(b).iter().zip(per_sample.iter()) {
                assert!((x - y).abs() < 1e-12, "row {b}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn backward_batch_accumulates_the_same_gradients_as_per_sample_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let proto = Mlp::new(
            &[4, 12, 6, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let mut per_sample = proto.clone();
        let mut batched = proto.clone();
        let batch = 9;
        let mut inputs = Matrix::zeros(batch, 4);
        let mut grads = Matrix::zeros(batch, 2);
        for b in 0..batch {
            for c in 0..4 {
                inputs.set(b, c, ((b * 4 + c) as f64 * 0.37).sin());
            }
            grads.set(b, 0, 0.5 - b as f64 * 0.1);
            grads.set(b, 1, 0.2 + b as f64 * 0.05);
        }

        per_sample.zero_grad();
        for b in 0..batch {
            let _ = per_sample.forward_train(inputs.row(b));
            per_sample.backward(grads.row(b));
        }
        batched.zero_grad();
        let mut ws = BatchWorkspace::new();
        let _ = batched.forward_batch(&inputs, &mut ws);
        batched.backward_batch(&grads, &mut ws);

        let a: Vec<f64> = per_sample
            .param_grad_pairs()
            .iter()
            .map(|(_, g)| *g)
            .collect();
        let b: Vec<f64> = batched.param_grad_pairs().iter().map(|(_, g)| *g).collect();
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() < 1e-12,
                "grad {i}: per-sample {x} vs batched {y}"
            );
        }
    }

    #[test]
    fn workspace_serves_varying_batch_sizes_without_confusion() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        let mut ws = BatchWorkspace::new();
        for &batch in &[16usize, 3, 16, 1] {
            let mut input = Matrix::zeros(batch, 3);
            for b in 0..batch {
                input.set(b, 0, b as f64 * 0.1);
            }
            let out = net.forward_batch(&input, &mut ws);
            assert_eq!((out.rows(), out.cols()), (batch, 2));
            for b in 0..batch {
                let reference = net.forward(input.row(b));
                for (x, y) in out.row(b).iter().zip(reference.iter()) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn copy_parameters_from_makes_networks_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        let mut b = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        b.copy_parameters_from(&a);
        let x = vec![0.1, 0.9, -0.3];
        assert_eq!(a.forward(&x), b.forward(&x));
    }
}
