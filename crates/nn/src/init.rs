//! Weight initialization schemes.
//!
//! He initialization is used for ReLU trunks and Xavier/Glorot for
//! sigmoid/tanh output heads. Both draw from a uniform distribution whose
//! half-width is derived from the fan-in/fan-out of the layer.

use rand::Rng;

use crate::activation::Activation;

/// Initialization scheme for a dense layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// He (Kaiming) uniform initialization, suited to ReLU-family activations.
    HeUniform,
    /// Xavier (Glorot) uniform initialization, suited to sigmoid/tanh.
    XavierUniform,
    /// All-zero initialization (used for biases and some heads).
    Zeros,
    /// Constant initialization.
    Constant(f64),
}

impl Init {
    /// Chooses a sensible default scheme for the given activation.
    pub fn for_activation(act: Activation) -> Self {
        match act {
            Activation::Relu | Activation::LeakyRelu => Init::HeUniform,
            Activation::Sigmoid | Activation::Tanh | Activation::Identity => Init::XavierUniform,
        }
    }

    /// Samples a single weight for a layer with the given fan-in and fan-out.
    pub fn sample<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> f64 {
        match self {
            Init::HeUniform => {
                let limit = (6.0 / fan_in.max(1) as f64).sqrt();
                rng.gen_range(-limit..limit)
            }
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                rng.gen_range(-limit..limit)
            }
            Init::Zeros => 0.0,
            Init::Constant(c) => c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn he_uniform_stays_within_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let limit = (6.0f64 / 64.0).sqrt();
        for _ in 0..1000 {
            let w = Init::HeUniform.sample(64, 32, &mut rng);
            assert!(w.abs() <= limit);
        }
    }

    #[test]
    fn xavier_uniform_stays_within_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let limit = (6.0f64 / 96.0).sqrt();
        for _ in 0..1000 {
            let w = Init::XavierUniform.sample(64, 32, &mut rng);
            assert!(w.abs() <= limit);
        }
    }

    #[test]
    fn zeros_and_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(Init::Zeros.sample(10, 10, &mut rng), 0.0);
        assert_eq!(Init::Constant(0.3).sample(10, 10, &mut rng), 0.3);
    }

    #[test]
    fn default_scheme_matches_activation_family() {
        assert_eq!(Init::for_activation(Activation::Relu), Init::HeUniform);
        assert_eq!(
            Init::for_activation(Activation::Sigmoid),
            Init::XavierUniform
        );
        assert_eq!(
            Init::for_activation(Activation::Identity),
            Init::XavierUniform
        );
    }

    #[test]
    fn samples_are_roughly_zero_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mean: f64 = (0..20_000)
            .map(|_| Init::HeUniform.sample(128, 64, &mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!(mean.abs() < 0.01);
    }
}
