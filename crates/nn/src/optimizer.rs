//! First-order optimizers (SGD with momentum, Adam).
//!
//! Both optimizers work on `(parameter, gradient)` pairs as produced by
//! [`Mlp::param_grad_pairs`](crate::mlp::Mlp::param_grad_pairs), so the same
//! optimizer drives plain MLPs, Gaussian policies and Bayesian networks.

use serde::{Deserialize, Serialize};

/// A model whose parameters and accumulated gradients can be visited as
/// contiguous blocks — the allocation-free alternative to
/// [`Mlp::param_grad_pairs`](crate::mlp::Mlp::param_grad_pairs).
///
/// Implementations must visit the same blocks in the same order on every
/// call, and the total length must match the size the optimizer was created
/// with. The `scale` passed to the visitor multiplies the stored gradient
/// (used by the Gaussian policy, whose std-deviation gradients are stored in
/// the ascent convention and stepped with `scale = -1`).
pub trait ParameterSet {
    /// Squared l2 norm of all accumulated gradients.
    fn grad_norm_squared(&self) -> f64;

    /// Visits every `(params, grads, scale)` block in a stable order.
    fn visit_param_blocks(&mut self, f: &mut ParamBlockVisitor<'_>);
}

/// Visitor over `(params, grads, scale)` parameter blocks.
pub type ParamBlockVisitor<'a> = dyn FnMut(&mut [f64], &[f64], f64) + 'a;

/// Adam optimizer (Kingma & Ba, 2015) with optional gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    /// Global-norm gradient clip; `None` disables clipping.
    max_grad_norm: Option<f64>,
    step_count: u64,
    first_moment: Vec<f64>,
    second_moment: Vec<f64>,
}

impl Adam {
    /// Creates an Adam optimizer for `num_params` parameters.
    pub fn new(num_params: usize, learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_grad_norm: Some(5.0),
            step_count: 0,
            first_moment: vec![0.0; num_params],
            second_moment: vec![0.0; num_params],
        }
    }

    /// Sets the global-norm gradient clip (`None` disables clipping).
    pub fn with_max_grad_norm(mut self, clip: Option<f64>) -> Self {
        self.max_grad_norm = clip;
        self
    }

    /// Changes the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.learning_rate = lr;
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update to the given `(parameter, gradient)` pairs.
    ///
    /// # Panics
    /// Panics if the number of pairs does not match the size the optimizer
    /// was created with.
    pub fn step(&mut self, pairs: Vec<(&mut f64, f64)>) {
        assert_eq!(
            pairs.len(),
            self.first_moment.len(),
            "optimizer was created for a different parameter count"
        );
        self.step_count += 1;
        let mut grads: Vec<f64> = pairs.iter().map(|(_, g)| *g).collect();
        if let Some(clip) = self.max_grad_norm {
            let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > clip && norm > 0.0 {
                let scale = clip / norm;
                for g in &mut grads {
                    *g *= scale;
                }
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for (i, (param, _)) in pairs.into_iter().enumerate() {
            let g = grads[i];
            self.first_moment[i] = self.beta1 * self.first_moment[i] + (1.0 - self.beta1) * g;
            self.second_moment[i] = self.beta2 * self.second_moment[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.first_moment[i] / bc1;
            let v_hat = self.second_moment[i] / bc2;
            *param -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    /// Applies one Adam update directly on a [`ParameterSet`] — numerically
    /// identical to [`Adam::step`] but without materializing the
    /// `(parameter, gradient)` pair vector, so the training loop stays free
    /// of per-step heap allocations.
    ///
    /// # Panics
    /// Panics if the set's total parameter count does not match the size the
    /// optimizer was created with.
    pub fn step_set<P: ParameterSet + ?Sized>(&mut self, set: &mut P) {
        self.step_count += 1;
        let clip_scale = match self.max_grad_norm {
            Some(clip) => {
                let norm = set.grad_norm_squared().sqrt();
                if norm > clip && norm > 0.0 {
                    clip / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let inv_bc1 = 1.0 / (1.0 - self.beta1.powi(self.step_count as i32));
        let inv_bc2 = 1.0 / (1.0 - self.beta2.powi(self.step_count as i32));
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        let first = &mut self.first_moment;
        let second = &mut self.second_moment;
        let mut offset = 0usize;
        set.visit_param_blocks(&mut |params, grads, scale| {
            assert_eq!(
                params.len(),
                grads.len(),
                "parameter/gradient block length mismatch"
            );
            assert!(
                offset + params.len() <= first.len(),
                "optimizer was created for a different parameter count"
            );
            let fm = &mut first[offset..offset + params.len()];
            let sm = &mut second[offset..offset + params.len()];
            let g_scale = scale * clip_scale;
            // Zipped iteration (no index bounds checks) so the update
            // vectorizes; the bias corrections are hoisted reciprocals, so
            // the loop carries one sqrt and one division per parameter.
            for (((p, &g_raw), m), v) in params
                .iter_mut()
                .zip(grads.iter())
                .zip(fm.iter_mut())
                .zip(sm.iter_mut())
            {
                let g = g_raw * g_scale;
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let m_hat = *m * inv_bc1;
                let v_hat = *v * inv_bc2;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            offset += params.len();
        });
        assert_eq!(
            offset,
            self.first_moment.len(),
            "optimizer was created for a different parameter count"
        );
    }

    /// Resets the moment estimates and step counter.
    pub fn reset(&mut self) {
        self.step_count = 0;
        for m in &mut self.first_moment {
            *m = 0.0;
        }
        for v in &mut self.second_moment {
            *v = 0.0;
        }
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer for `num_params` parameters.
    pub fn new(num_params: usize, learning_rate: f64, momentum: f64) -> Self {
        Self {
            learning_rate,
            momentum,
            velocity: vec![0.0; num_params],
        }
    }

    /// Applies one SGD update.
    ///
    /// # Panics
    /// Panics if the number of pairs does not match the optimizer size.
    pub fn step(&mut self, pairs: Vec<(&mut f64, f64)>) {
        assert_eq!(pairs.len(), self.velocity.len(), "parameter count mismatch");
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.learning_rate * grad;
            *param += self.velocity[i];
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 starting at 0 and checks convergence.
    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut x = 0.0f64;
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = 2.0 * (x - 3.0);
            opt.step(vec![(&mut x, grad)]);
        }
        assert!((x - 3.0).abs() < 1e-3, "adam did not converge: {x}");
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut x = 10.0f64;
        let mut opt = Sgd::new(1, 0.05, 0.9);
        for _ in 0..500 {
            let grad = 2.0 * (x - 3.0);
            opt.step(vec![(&mut x, grad)]);
        }
        assert!((x - 3.0).abs() < 1e-2, "sgd did not converge: {x}");
    }

    #[test]
    fn adam_handles_multidimensional_problems() {
        let mut params = [5.0f64, -4.0, 2.0];
        let targets = [1.0, 2.0, 3.0];
        let mut opt = Adam::new(3, 0.05);
        for _ in 0..2000 {
            let grads: Vec<f64> = params
                .iter()
                .zip(targets.iter())
                .map(|(p, t)| 2.0 * (p - t))
                .collect();
            let pairs: Vec<(&mut f64, f64)> = params.iter_mut().zip(grads).collect();
            opt.step(pairs);
        }
        for (p, t) in params.iter().zip(targets.iter()) {
            assert!((p - t).abs() < 1e-2);
        }
    }

    #[test]
    fn gradient_clipping_limits_update_magnitude() {
        let mut x = 0.0f64;
        let mut opt = Adam::new(1, 1.0).with_max_grad_norm(Some(1e-3));
        opt.step(vec![(&mut x, 1e9)]);
        // With clipping, Adam's first step is bounded by the learning rate.
        assert!(x.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut x = 0.0f64;
        let mut opt = Adam::new(1, 0.1);
        opt.step(vec![(&mut x, 1.0)]);
        assert_eq!(opt.steps_taken(), 1);
        opt.reset();
        assert_eq!(opt.steps_taken(), 0);
    }

    #[test]
    #[should_panic(expected = "different parameter count")]
    fn wrong_parameter_count_panics() {
        let mut x = 0.0f64;
        let mut opt = Adam::new(2, 0.1);
        opt.step(vec![(&mut x, 1.0)]);
    }
}
