//! Loss functions and their gradients.
//!
//! Training in this repository is done with explicit gradient computation:
//! the caller evaluates the loss gradient with respect to the network output
//! and passes it to [`Mlp::backward`](crate::mlp::Mlp::backward).

/// Mean squared error `1/n Σ (y - t)²`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mse_loss(prediction: &[f64], target: &[f64]) -> f64 {
    assert_eq!(prediction.len(), target.len(), "mse length mismatch");
    assert!(!prediction.is_empty(), "mse of empty vectors");
    prediction
        .iter()
        .zip(target.iter())
        .map(|(y, t)| (y - t) * (y - t))
        .sum::<f64>()
        / prediction.len() as f64
}

/// Gradient of [`mse_loss`] with respect to the prediction.
pub fn mse_grad(prediction: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(prediction.len(), target.len(), "mse length mismatch");
    let n = prediction.len() as f64;
    prediction
        .iter()
        .zip(target.iter())
        .map(|(y, t)| 2.0 * (y - t) / n)
        .collect()
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over elements.
pub fn huber_loss(prediction: &[f64], target: &[f64], delta: f64) -> f64 {
    assert_eq!(prediction.len(), target.len(), "huber length mismatch");
    assert!(!prediction.is_empty(), "huber of empty vectors");
    prediction
        .iter()
        .zip(target.iter())
        .map(|(y, t)| {
            let e = (y - t).abs();
            if e <= delta {
                0.5 * e * e
            } else {
                delta * (e - 0.5 * delta)
            }
        })
        .sum::<f64>()
        / prediction.len() as f64
}

/// Gradient of [`huber_loss`] with respect to the prediction.
pub fn huber_grad(prediction: &[f64], target: &[f64], delta: f64) -> Vec<f64> {
    assert_eq!(prediction.len(), target.len(), "huber length mismatch");
    let n = prediction.len() as f64;
    prediction
        .iter()
        .zip(target.iter())
        .map(|(y, t)| {
            let e = y - t;
            if e.abs() <= delta {
                e / n
            } else {
                delta * e.signum() / n
            }
        })
        .collect()
}

/// Negative log-likelihood of observing `target` under a univariate Gaussian
/// with the given `mean` and `std` (σ > 0).
///
/// Used to train the variational cost-value estimator: the likelihood term of
/// the ELBO in Eq. 7 of the paper.
pub fn gaussian_nll(mean: f64, std: f64, target: f64) -> f64 {
    let std = std.max(1e-6);
    let var = std * std;
    0.5 * ((2.0 * std::f64::consts::PI * var).ln() + (target - mean) * (target - mean) / var)
}

/// Gradient of [`gaussian_nll`] with respect to `(mean, std)`.
pub fn gaussian_nll_grad(mean: f64, std: f64, target: f64) -> (f64, f64) {
    let std = std.max(1e-6);
    let var = std * std;
    let d_mean = (mean - target) / var;
    let d_std = 1.0 / std - (target - mean) * (target - mean) / (var * std);
    (d_mean, d_std)
}

/// KL divergence `KL(N(mu_q, sigma_q²) || N(mu_p, sigma_p²))` between two
/// univariate Gaussians.
///
/// Used both for the variational posterior regularization (Eq. 7, second
/// term) and as a diagnostic for PPO policy updates.
pub fn gaussian_kl(mu_q: f64, sigma_q: f64, mu_p: f64, sigma_p: f64) -> f64 {
    let sigma_q = sigma_q.max(1e-9);
    let sigma_p = sigma_p.max(1e-9);
    (sigma_p / sigma_q).ln()
        + (sigma_q * sigma_q + (mu_q - mu_p) * (mu_q - mu_p)) / (2.0 * sigma_p * sigma_p)
        - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_perfect_prediction_is_zero() {
        assert_eq!(mse_loss(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_matches_hand_computed_value() {
        // ((1-0)^2 + (3-1)^2) / 2 = 2.5
        assert!((mse_loss(&[1.0, 3.0], &[0.0, 1.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_grad_matches_finite_differences() {
        let y = vec![0.3, -0.7, 1.2];
        let t = vec![0.1, 0.0, 1.0];
        let g = mse_grad(&y, &t);
        let h = 1e-6;
        for i in 0..y.len() {
            let mut yp = y.clone();
            yp[i] += h;
            let mut ym = y.clone();
            ym[i] -= h;
            let numeric = (mse_loss(&yp, &t) - mse_loss(&ym, &t)) / (2.0 * h);
            assert!((numeric - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_equals_mse_half_for_small_errors() {
        let y = vec![0.1];
        let t = vec![0.0];
        assert!((huber_loss(&y, &t, 1.0) - 0.5 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn huber_is_linear_for_large_errors() {
        let l1 = huber_loss(&[10.0], &[0.0], 1.0);
        let l2 = huber_loss(&[11.0], &[0.0], 1.0);
        assert!((l2 - l1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huber_grad_matches_finite_differences() {
        let y = vec![0.3, 5.0, -3.0];
        let t = vec![0.0, 0.0, 0.0];
        let g = huber_grad(&y, &t, 1.0);
        let h = 1e-6;
        for i in 0..y.len() {
            let mut yp = y.clone();
            yp[i] += h;
            let mut ym = y.clone();
            ym[i] -= h;
            let numeric = (huber_loss(&yp, &t, 1.0) - huber_loss(&ym, &t, 1.0)) / (2.0 * h);
            assert!((numeric - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn gaussian_nll_is_minimized_at_the_target_mean() {
        let at_target = gaussian_nll(2.0, 1.0, 2.0);
        let off_target = gaussian_nll(3.0, 1.0, 2.0);
        assert!(at_target < off_target);
    }

    #[test]
    fn gaussian_nll_grad_matches_finite_differences() {
        let (mean, std, target) = (0.7, 0.6, 0.2);
        let (dm, ds) = gaussian_nll_grad(mean, std, target);
        let h = 1e-6;
        let ndm =
            (gaussian_nll(mean + h, std, target) - gaussian_nll(mean - h, std, target)) / (2.0 * h);
        let nds =
            (gaussian_nll(mean, std + h, target) - gaussian_nll(mean, std - h, target)) / (2.0 * h);
        assert!((dm - ndm).abs() < 1e-5);
        assert!((ds - nds).abs() < 1e-5);
    }

    #[test]
    fn kl_of_identical_gaussians_is_zero() {
        assert!(gaussian_kl(0.3, 0.7, 0.3, 0.7).abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative() {
        let cases = [
            (0.0, 1.0, 1.0, 1.0),
            (0.0, 0.5, 0.0, 2.0),
            (-1.0, 0.1, 1.0, 0.3),
            (3.0, 2.0, -3.0, 0.2),
        ];
        for (a, b, c, d) in cases {
            assert!(gaussian_kl(a, b, c, d) >= -1e-12);
        }
    }
}
