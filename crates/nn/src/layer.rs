//! Fully connected (dense) layer with explicit forward/backward passes.
//!
//! Gradients are *accumulated* into the layer (`grad_weights`, `grad_bias`)
//! so that minibatch training simply calls `forward_train`/`backward` once
//! per sample and divides by the batch size before the optimizer step (or
//! equivalently scales the loss gradient by `1 / batch`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::init::Init;
use crate::matrix::Matrix;

/// A dense layer `y = act(W x + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    activation: Activation,
    // Caches populated by `forward_train` and consumed by `backward`.
    cached_input: Vec<f64>,
    cached_pre_activation: Vec<f64>,
}

impl Dense {
    /// Creates a new dense layer with the default initialization for the
    /// chosen activation (He for ReLU-family, Xavier otherwise) and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let init = Init::for_activation(activation);
        let mut weights = Matrix::zeros(out_dim, in_dim);
        for r in 0..out_dim {
            for c in 0..in_dim {
                weights.set(r, c, init.sample(in_dim, out_dim, rng));
            }
        }
        Self {
            weights,
            bias: vec![0.0; out_dim],
            grad_weights: Matrix::zeros(out_dim, in_dim),
            grad_bias: vec![0.0; out_dim],
            activation,
            cached_input: Vec::new(),
            cached_pre_activation: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Inference-only forward pass (does not populate caches).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(
            input.len(),
            self.in_dim(),
            "dense layer input size mismatch"
        );
        let mut pre = self.weights.matvec(input);
        for (p, b) in pre.iter_mut().zip(self.bias.iter()) {
            *p += b;
        }
        pre.iter().map(|&x| self.activation.apply(x)).collect()
    }

    /// Inference forward pass into a caller-owned row buffer — the
    /// zero-allocation form of [`Dense::forward`] used by the fused cell
    /// batch ([`crate::cell::CellBatch`]).
    ///
    /// Bit-identical to [`Dense::forward`]: the matvec kernel, the bias
    /// addition and the activation are applied per element in the same
    /// order, so `out[r]` carries exactly the bits `forward(input)[r]`
    /// would.
    pub fn forward_row_into(&self, input: &[f64], out: &mut [f64]) {
        debug_assert_eq!(
            input.len(),
            self.in_dim(),
            "dense layer input size mismatch"
        );
        debug_assert_eq!(
            out.len(),
            self.out_dim(),
            "dense layer output size mismatch"
        );
        self.weights.matvec_into(input, out);
        for (p, b) in out.iter_mut().zip(self.bias.iter()) {
            *p = self.activation.apply(*p + b);
        }
    }

    /// Forward pass that caches the input and pre-activation for `backward`.
    pub fn forward_train(&mut self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(
            input.len(),
            self.in_dim(),
            "dense layer input size mismatch"
        );
        let mut pre = self.weights.matvec(input);
        for (p, b) in pre.iter_mut().zip(self.bias.iter()) {
            *p += b;
        }
        let out = pre.iter().map(|&x| self.activation.apply(x)).collect();
        self.cached_input = input.to_vec();
        self.cached_pre_activation = pre;
        out
    }

    /// Backward pass. `grad_output` is `dL/dy`; the return value is `dL/dx`.
    ///
    /// Parameter gradients are accumulated into the layer.
    ///
    /// # Panics
    /// Panics if called before `forward_train` (no cached activations).
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        assert!(
            !self.cached_pre_activation.is_empty(),
            "backward called before forward_train"
        );
        debug_assert_eq!(grad_output.len(), self.out_dim());
        // delta = dL/d(pre-activation)
        let delta: Vec<f64> = grad_output
            .iter()
            .zip(self.cached_pre_activation.iter())
            .map(|(&g, &z)| g * self.activation.derivative(z))
            .collect();
        // dL/dW += delta ⊗ input, dL/db += delta
        let gw = Matrix::outer(&delta, &self.cached_input);
        self.grad_weights.add_scaled_assign(&gw, 1.0);
        for (gb, d) in self.grad_bias.iter_mut().zip(delta.iter()) {
            *gb += d;
        }
        // dL/dx = Wᵀ delta
        self.weights.t_matvec(&delta)
    }

    /// Batched forward pass: one GEMM for the whole minibatch.
    ///
    /// `input` is `(batch × in_dim)`; `pre` and `out` are caller-owned
    /// buffers resized to `(batch × out_dim)` (no allocation once warm).
    /// `weights_t` is a scratch buffer receiving `Wᵀ`: transposing the
    /// weights once per minibatch (`O(out·in)`) lets the `O(batch·out·in)`
    /// GEMM run the row-streaming kernel whose inner loop the compiler
    /// vectorizes, instead of a scalar dot-reduction per output element.
    /// `pre` receives the pre-activation `X·Wᵀ + b` — keep it around and hand
    /// it back to [`Dense::backward_batch`] for training, or pass a scratch
    /// buffer for pure inference.
    pub fn forward_batch_into(
        &self,
        input: &Matrix,
        weights_t: &mut Matrix,
        pre: &mut Matrix,
        out: &mut Matrix,
    ) {
        debug_assert_eq!(
            input.cols(),
            self.in_dim(),
            "dense layer batch input size mismatch"
        );
        self.weights.transpose_into(weights_t);
        input.matmul_into(weights_t, pre);
        pre.add_row_broadcast(&self.bias);
        out.resize(pre.rows(), pre.cols());
        self.activation.apply_into(pre.data(), out.data_mut());
    }

    /// Batched backward pass.
    ///
    /// `delta` enters as `dL/dy` (batch × out_dim) and is turned into
    /// `dL/d(pre-activation)` in place using the `pre` buffer produced by the
    /// matching [`Dense::forward_batch_into`] call on `input`. Parameter
    /// gradients for the whole minibatch accumulate into the layer with one
    /// GEMM; when `grad_input` is `Some`, `dL/dx` is written into it (skip it
    /// for the first layer — its input gradient is never consumed).
    ///
    /// # Panics
    /// Panics if the buffer shapes are inconsistent.
    pub fn backward_batch(
        &mut self,
        delta: &mut Matrix,
        input: &Matrix,
        pre: &Matrix,
        grad_input: Option<&mut Matrix>,
    ) {
        assert_eq!(
            (delta.rows(), delta.cols()),
            (pre.rows(), pre.cols()),
            "backward_batch delta shape mismatch"
        );
        assert_eq!(
            delta.cols(),
            self.out_dim(),
            "backward_batch output dim mismatch"
        );
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "backward_batch input dim mismatch"
        );
        assert_eq!(
            input.rows(),
            delta.rows(),
            "backward_batch batch size mismatch"
        );
        // delta <- dL/dy ⊙ act'(pre), whole minibatch at once.
        self.activation
            .mul_derivative_into(pre.data(), delta.data_mut());
        // dL/dW += δᵀ · X (one GEMM), dL/db += column sums of δ.
        delta.matmul_tn_acc_into(input, &mut self.grad_weights);
        for b in 0..delta.rows() {
            for (gb, d) in self.grad_bias.iter_mut().zip(delta.row(b).iter()) {
                *gb += d;
            }
        }
        // dL/dx = δ · W.
        if let Some(grad_input) = grad_input {
            delta.matmul_into(&self.weights, grad_input);
        }
    }

    /// Immutable access to the weight matrix (used by batched policy code).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable access to the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Squared l2 norm of the accumulated gradients (for global-norm
    /// clipping without materializing a flat gradient vector).
    pub fn grad_norm_squared(&self) -> f64 {
        self.grad_weights.data().iter().map(|g| g * g).sum::<f64>()
            + self.grad_bias.iter().map(|g| g * g).sum::<f64>()
    }

    /// Visits `(params, grads, scale)` blocks in the same order as
    /// [`Dense::param_grad_pairs`] without allocating.
    pub fn visit_param_blocks(&mut self, f: &mut crate::optimizer::ParamBlockVisitor<'_>) {
        f(self.weights.data_mut(), self.grad_weights.data(), 1.0);
        f(&mut self.bias, &self.grad_bias, 1.0);
    }

    /// Resets accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad_weights.fill(0.0);
        for g in &mut self.grad_bias {
            *g = 0.0;
        }
    }

    /// Number of trainable parameters in this layer.
    pub fn num_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Returns `(parameter, gradient)` pairs for the optimizer.
    ///
    /// Gradients are copied (they are small), parameters are mutable
    /// references so that an optimizer can update them in place.
    pub fn param_grad_pairs(&mut self) -> Vec<(&mut f64, f64)> {
        let grads: Vec<f64> = self
            .grad_weights
            .data()
            .iter()
            .copied()
            .chain(self.grad_bias.iter().copied())
            .collect();
        self.weights
            .data_mut()
            .iter_mut()
            .chain(self.bias.iter_mut())
            .zip(grads)
            .collect()
    }

    /// Immutable snapshot of the flat parameter vector (weights then bias).
    pub fn parameters(&self) -> Vec<f64> {
        self.weights
            .data()
            .iter()
            .copied()
            .chain(self.bias.iter().copied())
            .collect()
    }

    /// Overwrites parameters from a flat vector produced by [`Dense::parameters`].
    ///
    /// # Panics
    /// Panics if the length does not match [`Dense::num_parameters`].
    pub fn set_parameters(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "parameter length mismatch"
        );
        let nw = self.weights.rows() * self.weights.cols();
        self.weights.data_mut().copy_from_slice(&params[..nw]);
        self.bias.copy_from_slice(&params[nw..]);
    }

    /// Scales accumulated gradients by `s` (used to average over a batch).
    pub fn scale_grad(&mut self, s: f64) {
        let scaled = self.grad_weights.scale(s);
        self.grad_weights = scaled;
        for g in &mut self.grad_bias {
            *g *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        layer.set_parameters(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let y = layer.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn forward_train_equals_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut layer = Dense::new(5, 3, Activation::Relu, &mut rng);
        let x = vec![0.1, -0.2, 0.3, 0.4, -0.5];
        let a = layer.forward(&x);
        let b = layer.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = vec![0.3, -0.7, 0.2];
        // Loss = sum(y). dL/dy = ones.
        let loss = |layer: &Dense| -> f64 { layer.forward(&x).iter().sum() };

        layer.zero_grad();
        let _ = layer.forward_train(&x);
        let _ = layer.backward(&[1.0, 1.0]);
        let analytic: Vec<f64> = layer
            .grad_weights
            .data()
            .iter()
            .copied()
            .chain(layer.grad_bias.iter().copied())
            .collect();

        let params = layer.parameters();
        let h = 1e-6;
        for (i, analytic_g) in analytic.iter().enumerate() {
            let mut plus = params.clone();
            plus[i] += h;
            let mut minus = params.clone();
            minus[i] -= h;
            let mut l_plus = layer.clone();
            l_plus.set_parameters(&plus);
            let mut l_minus = layer.clone();
            l_minus.set_parameters(&minus);
            let numeric = (loss(&mut l_plus) - loss(&mut l_minus)) / (2.0 * h);
            assert!(
                (numeric - analytic_g).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {analytic_g}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = Dense::new(4, 3, Activation::Sigmoid, &mut rng);
        let x = vec![0.5, -0.1, 0.9, 0.0];
        let _ = layer.forward_train(&x);
        let dx = layer.backward(&[1.0, 1.0, 1.0]);
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fp: f64 = layer.forward(&xp).iter().sum();
            let fm: f64 = layer.forward(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * h);
            assert!((numeric - dx[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.forward_train(&[1.0, 1.0]);
        let _ = layer.backward(&[1.0, 1.0]);
        layer.zero_grad();
        let pairs = layer.param_grad_pairs();
        assert!(pairs.iter().all(|(_, g)| *g == 0.0));
    }

    #[test]
    fn parameter_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut layer = Dense::new(6, 4, Activation::Relu, &mut rng);
        let p = layer.parameters();
        assert_eq!(p.len(), layer.num_parameters());
        layer.set_parameters(&p);
        assert_eq!(layer.parameters(), p);
    }

    #[test]
    #[should_panic(expected = "backward called before forward_train")]
    fn backward_without_forward_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.backward(&[1.0, 1.0]);
    }
}
