//! # onslicing-nn
//!
//! A small, dependency-light dense neural-network library used by the
//! OnSlicing reproduction in place of PyTorch.
//!
//! The paper's agents only need fully connected networks of modest size
//! (`128 x 64 x 32` trunks with ReLU activations and Sigmoid policy heads),
//! trained with Adam. This crate provides exactly that, plus the two less
//! common pieces the paper relies on:
//!
//! * a **Gaussian policy head** ([`policy::GaussianPolicy`]) producing a
//!   squashed mean in `(0, 1)` with a learnable, state-independent standard
//!   deviation — the form used by the PPO actor (policy `π_θ`), and
//! * a **Bayes-by-backprop variational layer** ([`bayesian::BayesianLinear`],
//!   [`bayesian::BayesianMlp`]) used for the cost-value estimator (policy
//!   `π_φ`), which must report both a mean and a standard deviation of the
//!   baseline policy's remaining cost (paper §3, Eq. 6–8).
//!
//! All math is `f64`, all storage is plain `Vec<f64>`, and randomness flows
//! through explicit [`rand`] RNGs so experiments are reproducible.
//!
//! ## Quick example
//!
//! ```
//! use onslicing_nn::{Mlp, Activation, Adam, mse_loss, mse_grad};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! // 2-in, 1-out regression network.
//! let mut net = Mlp::new(&[2, 16, 16, 1], Activation::Relu, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(net.num_parameters(), 1e-2);
//! for _ in 0..500 {
//!     let x = vec![0.3, 0.7];
//!     let target = vec![0.3f64 + 0.7];
//!     net.zero_grad();
//!     let y = net.forward_train(&x);
//!     let grad = mse_grad(&y, &target);
//!     net.backward(&grad);
//!     opt.step(net.param_grad_pairs());
//! }
//! let y = net.forward(&[0.3, 0.7]);
//! assert!((y[0] - 1.0).abs() < 0.05);
//! ```

pub mod activation;
pub mod bayesian;
pub mod cell;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optimizer;
pub mod policy;

pub use activation::Activation;
pub use bayesian::{
    BayesWorkspace, BayesianLinear, BayesianMlp, BayesianPrediction, PredictScratch,
};
pub use cell::CellBatch;
pub use layer::Dense;
pub use loss::{gaussian_nll, gaussian_nll_grad, huber_grad, huber_loss, mse_grad, mse_loss};
pub use matrix::Matrix;
pub use mlp::{BatchWorkspace, Mlp};
pub use optimizer::{Adam, ParameterSet, Sgd};
pub use policy::{GaussianPolicy, PolicySample};

/// Numerically stable softplus, `log(1 + e^x)`.
///
/// Used to map unconstrained parameters to positive standard deviations in
/// the variational layers and the Gaussian policy head.
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Derivative of [`softplus`], i.e. the logistic sigmoid.
pub fn softplus_derivative(x: f64) -> f64 {
    sigmoid(x)
}

/// Logistic sigmoid `1 / (1 + e^-x)` with saturation guards.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_is_positive_and_monotone() {
        let mut prev = softplus(-40.0);
        assert!(prev >= 0.0);
        for i in -39..40 {
            let v = softplus(i as f64);
            assert!(v > 0.0);
            assert!(v >= prev, "softplus must be monotone");
            prev = v;
        }
    }

    #[test]
    fn softplus_matches_reference_values() {
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((softplus(50.0) - 50.0).abs() < 1e-9);
        assert!(softplus(-50.0) < 1e-20);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric() {
        for i in -50..=50 {
            let x = i as f64 / 5.0;
            let s = sigmoid(x);
            assert!(s > 0.0 && s < 1.0);
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softplus_derivative_is_sigmoid() {
        for i in -20..=20 {
            let x = i as f64 / 2.0;
            let h = 1e-6;
            let numeric = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((numeric - softplus_derivative(x)).abs() < 1e-5);
        }
    }
}
