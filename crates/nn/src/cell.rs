//! Cell-wide fused inference batch (gather → fused per-layer sweep → scatter).
//!
//! Every slice agent in a cell shares one trunk architecture, so the per-slot
//! hot path used to pay one full network dispatch per slice: `n_slices`
//! separate `Mlp::forward` calls, each walking all layers and allocating its
//! own activation vectors. [`CellBatch`] restructures that into a single
//! layer-major sweep over the whole cell: the orchestrator stacks the active
//! slices' observation rows into one batch matrix, and each layer of the
//! stack is evaluated for *all* rows back-to-back before moving to the next
//! layer. The per-row weights may differ (each slice owns its own learned
//! parameters), so layer `l` is a *grouped* fused pass — one
//! [`crate::layer::Dense::forward_row_into`] per row, sharing the two
//! ping-pong activation matrices — rather than a literal single GEMM; when
//! all rows share one network the loop degenerates to a batched
//! matrix-matrix product evaluated row-tile by row-tile through the same
//! [`crate::matrix::dot4`] microkernel.
//!
//! # Bit-identity contract
//!
//! The fused sweep is **bit-identical** to the dispatched per-slice path: row
//! `i` of the output carries exactly the bits `net_i.forward(row_i)` would
//! produce, because each row is computed by the same matvec kernel
//! ([`crate::matrix::Matrix::matvec_into`], whose per-row reduction order
//! equals [`crate::matrix::dot`]), the same bias addition and the same
//! activation application, in the same element order. Only the *scheduling*
//! changes (layer-major instead of slice-major), never the arithmetic. This
//! is what lets the orchestrator adopt fusion without regenerating goldens.
//!
//! # Allocation discipline
//!
//! The workspace is caller-owned and reaches a steady state: after the first
//! slot at a given cell size, `input_mut` and `forward_grouped` only resize
//! within already-reserved capacity ([`Matrix::resize`] never shrinks its
//! backing buffer), so repeated slots allocate nothing.

use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Caller-owned workspace for cell-wide fused forward passes.
///
/// Typical use per slot:
///
/// 1. gather: `input_mut(n_rows, dim)` and fill one observation row per
///    active slice;
/// 2. fuse: `forward_grouped(|i| &nets[i])` runs the layer-major sweep;
/// 3. scatter: read `output().row(i)` back into slice `i`'s decision.
#[derive(Debug, Clone, Default)]
pub struct CellBatch {
    /// Gathered observation rows, one per active slice.
    input: Matrix,
    /// Ping-pong activation buffers; after `forward_grouped`, `x` holds the
    /// output batch.
    x: Matrix,
    y: Matrix,
}

impl CellBatch {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gathered rows.
    pub fn rows(&self) -> usize {
        self.input.rows()
    }

    /// Resizes the gather buffer to `rows x dim` and returns it for filling
    /// (one observation row per active slice). Contents are zeroed.
    pub fn input_mut(&mut self, rows: usize, dim: usize) -> &mut Matrix {
        self.input.resize(rows, dim);
        &mut self.input
    }

    /// The gathered observation rows as last shaped by
    /// [`CellBatch::input_mut`]. `forward_grouped` reads but never mutates
    /// them, so callers can keep feeding per-row consumers (e.g. the
    /// switching-statistic estimator) off the same gather.
    pub fn input(&self) -> &Matrix {
        &self.input
    }

    /// Runs the fused layer-major sweep: for each layer of the shared trunk
    /// shape, evaluates that layer for every gathered row (row `i` under
    /// `net_of(i)`'s weights) before advancing to the next layer. Returns the
    /// output batch; row `i` is bit-identical to `net_of(i).forward(row_i)`.
    ///
    /// All networks must share the trunk *shape* (layer count and per-layer
    /// dimensions); their weights are free to differ per row. With zero rows
    /// the sweep is a no-op returning an empty batch.
    ///
    /// # Panics
    /// Panics if any network disagrees with row 0's layer count or any
    /// per-layer dimension, or if the gathered rows do not match the trunk's
    /// input dimensionality.
    pub fn forward_grouped<'n, F>(&mut self, mut net_of: F) -> &Matrix
    where
        F: FnMut(usize) -> &'n Mlp,
    {
        let rows = self.input.rows();
        if rows == 0 {
            self.x.resize(0, 0);
            return &self.x;
        }
        let num_layers = net_of(0).num_layers();
        assert_eq!(
            self.input.cols(),
            net_of(0).input_dim(),
            "cell batch input dim mismatch"
        );
        self.x.resize(rows, self.input.cols());
        self.x.data_mut().copy_from_slice(self.input.data());
        for l in 0..num_layers {
            let out_dim = net_of(0).layers_ref()[l].out_dim();
            {
                let Self { x, y, .. } = self;
                y.resize(rows, out_dim);
                for i in 0..rows {
                    let net = net_of(i);
                    assert_eq!(
                        net.num_layers(),
                        num_layers,
                        "cell batch: row {i} trunk depth mismatch"
                    );
                    let layer = &net.layers_ref()[l];
                    assert_eq!(
                        (layer.in_dim(), layer.out_dim()),
                        (x.cols(), out_dim),
                        "cell batch: row {i} layer {l} shape mismatch"
                    );
                    layer.forward_row_into(x.row(i), y.row_mut(i));
                }
            }
            std::mem::swap(&mut self.x, &mut self.y);
        }
        &self.x
    }

    /// The output batch of the last [`CellBatch::forward_grouped`] call.
    pub fn output(&self) -> &Matrix {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_net(sizes: &[usize], seed: u64) -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Mlp::new(sizes, Activation::Relu, Activation::Sigmoid, &mut rng)
    }

    fn random_state(dim: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..dim)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn empty_cell_is_a_noop() {
        let mut cb = CellBatch::new();
        cb.input_mut(0, 9);
        let out = cb.forward_grouped(|_| unreachable!("no rows, no nets"));
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn single_row_matches_per_slice_forward_bit_for_bit() {
        let net = random_net(&[9, 16, 8, 3], 7);
        let state = random_state(9, 3);
        let mut cb = CellBatch::new();
        cb.input_mut(1, 9).row_mut(0).copy_from_slice(&state);
        let fused = cb.forward_grouped(|_| &net);
        let reference = net.forward(&state);
        assert_eq!(fused.row(0), reference.as_slice());
    }

    #[test]
    fn grouped_rows_with_distinct_weights_match_their_own_nets() {
        let nets: Vec<Mlp> = (0..5).map(|i| random_net(&[6, 13, 4], 100 + i)).collect();
        let states: Vec<Vec<f64>> = (0..5).map(|i| random_state(6, 50 + i)).collect();
        let mut cb = CellBatch::new();
        {
            let input = cb.input_mut(5, 6);
            for (i, s) in states.iter().enumerate() {
                input.row_mut(i).copy_from_slice(s);
            }
        }
        let fused = cb.forward_grouped(|i| &nets[i]);
        for (i, s) in states.iter().enumerate() {
            let reference = nets[i].forward(s);
            for (f, r) in fused.row(i).iter().zip(reference.iter()) {
                assert_eq!(f.to_bits(), r.to_bits(), "row {i} diverged");
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_changing_cell_sizes() {
        let nets: Vec<Mlp> = (0..8).map(|i| random_net(&[4, 10, 2], i)).collect();
        let mut cb = CellBatch::new();
        // Grow, shrink (teardown mid-run), then grow again: every pass must
        // still match the per-slice reference.
        for &n in &[3usize, 8, 1, 0, 5] {
            let states: Vec<Vec<f64>> = (0..n).map(|i| random_state(4, 900 + i as u64)).collect();
            {
                let input = cb.input_mut(n, 4);
                for (i, s) in states.iter().enumerate() {
                    input.row_mut(i).copy_from_slice(s);
                }
            }
            let fused = cb.forward_grouped(|i| &nets[i]);
            assert_eq!(fused.rows(), n);
            for (i, s) in states.iter().enumerate() {
                assert_eq!(fused.row(i), nets[i].forward(s).as_slice());
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_trunk_shapes_panic() {
        let a = random_net(&[4, 8, 2], 1);
        let b = random_net(&[4, 6, 2], 2);
        let nets = [a, b];
        let mut cb = CellBatch::new();
        cb.input_mut(2, 4);
        let _ = cb.forward_grouped(|i| &nets[i]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite: fused cell-batch forward ≡ per-slice forwards
        /// bit-for-bit for random trunk shapes, slice counts (including 0
        /// and 1) and seeds.
        #[test]
        fn fused_forward_is_bit_identical_to_per_slice(
            n_rows in 0usize..7,
            in_dim in 1usize..12,
            hidden in 1usize..24,
            out_dim in 1usize..6,
            seed in 0u64..1000,
        ) {
            let sizes = [in_dim, hidden, out_dim];
            let nets: Vec<Mlp> = (0..n_rows.max(1))
                .map(|i| random_net(&sizes, seed * 31 + i as u64))
                .collect();
            let states: Vec<Vec<f64>> =
                (0..n_rows).map(|i| random_state(in_dim, seed + i as u64)).collect();
            let mut cb = CellBatch::new();
            {
                let input = cb.input_mut(n_rows, in_dim);
                for (i, s) in states.iter().enumerate() {
                    input.row_mut(i).copy_from_slice(s);
                }
            }
            let fused = cb.forward_grouped(|i| &nets[i]);
            prop_assert_eq!(fused.rows(), n_rows);
            for (i, s) in states.iter().enumerate() {
                let reference = nets[i].forward(s);
                for (f, r) in fused.row(i).iter().zip(reference.iter()) {
                    prop_assert_eq!(f.to_bits(), r.to_bits());
                }
            }
        }
    }
}
