//! End-to-end CLI contract: the binary walks a workspace tree, skips the
//! exempt directories, writes the JSON artifact, and exits non-zero
//! exactly when something fired — the behavior CI's `static-analysis`
//! job depends on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

struct FakeWorkspace {
    root: PathBuf,
}

impl FakeWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("detlint-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, source).unwrap();
    }
}

impl Drop for FakeWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn detlint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("cannot run detlint")
}

#[test]
fn findings_in_shipping_code_fail_the_run_and_land_in_the_json() {
    let ws = FakeWorkspace::new("dirty");
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    // Violations in skipped directories are invisible by construction:
    // tests, benches, fixtures and vendored code are exempt.
    ws.write(
        "crates/core/tests/timing.rs",
        "pub fn t() { let _ = std::time::Instant::now(); }\n",
    );
    ws.write(
        "vendor/serde/src/lib.rs",
        "pub use std::collections::HashMap;\n",
    );
    ws.write(
        "crates/core/benches/clock.rs",
        "pub fn b() { let _ = std::time::SystemTime::now(); }\n",
    );

    let json_path = ws.root.join("report.json");
    let out = detlint(&ws.root, &["--json", json_path.to_str().unwrap()]);
    assert!(!out.status.success(), "violations must fail the run");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("crates/core/src/lib.rs:2: [wall-clock-in-det]"),
        "{stdout}"
    );
    assert!(stdout.contains("1 finding(s)"), "{stdout}");
    assert!(
        !stdout.contains("tests/timing.rs") && !stdout.contains("vendor/"),
        "skipped dirs leaked into the report: {stdout}"
    );

    // The artifact is written even on failure — that is what CI uploads.
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"rule\":\"wall-clock-in-det\""), "{json}");
    assert!(json.contains("\"files_scanned\":1"), "{json}");
}

#[test]
fn clean_workspaces_exit_zero_with_a_summary() {
    let ws = FakeWorkspace::new("clean");
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn shift(x: u64) -> u64 {\n    x.rotate_left(1)\n}\n",
    );
    ws.write(
        "crates/fleetd/src/lib.rs",
        "pub fn reply(e: &str) -> String {\n    format!(\"{{\\\"ok\\\":false,\\\"error\\\":\\\"{e}\\\"}}\")\n}\n",
    );

    let out = detlint(&ws.root, &[]);
    assert!(out.status.success(), "clean tree must exit zero");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean — 2 files"), "{stdout}");
    assert!(stdout.contains("0 findings"), "{stdout}");
}

#[test]
fn stale_pragmas_fail_even_an_otherwise_clean_tree() {
    let ws = FakeWorkspace::new("stale");
    ws.write(
        "crates/scenario/src/lib.rs",
        "// detlint: allow(wall-clock) -- used to time the step loop\npub fn f() -> u32 {\n    3\n}\n",
    );
    let out = detlint(&ws.root, &[]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[stale-allow]"), "{stdout}");
}

#[test]
fn list_rules_names_the_whole_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--list-rules")
        .output()
        .expect("cannot run detlint");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "wall-clock-in-det",
        "unordered-container",
        "panic-in-daemon",
        "invalid-pragma",
        "stale-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule}: {stdout}");
    }
}

#[test]
fn unknown_flags_are_an_error_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--fix")
        .output()
        .expect("cannot run detlint");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument `--fix`"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}
