//! Positive: unordered containers in a deterministic crate must fire,
//! including in `use` declarations.

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: std::collections::HashSet<u32> = Default::default();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_default() += 1;
    }
    seen.len()
}
