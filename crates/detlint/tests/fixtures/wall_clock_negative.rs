//! Negative: annotated, quoted, commented and test-gated wall-clock must
//! not fire — and none of the decoys below may trip the lexer.

pub fn report_timer() -> u64 {
    // detlint: allow(wall-clock) -- report-only: feeds wall_clock_ms,
    // which the byte-compared trace never serializes.
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}

pub fn trailing_pragma() -> bool {
    let t = std::time::SystemTime::now(); // detlint: allow(wall-clock) -- epoch feeds a report header only
    t.elapsed().is_ok()
}

/// Docs may mention `Instant::now()` freely, and may even show the
/// grammar itself: `// detlint: allow(wall-clock) -- reason`.
pub fn quoted() -> &'static str {
    let raw = r#"let t = Instant::now(); SystemTime::now();"#;
    let fenced = r##"raw strings with "#"-bearing fences: Instant::now()"##;
    let plain = "SystemTime inside an ordinary string";
    let byte = b"Instant::now() in a byte string";
    /* a nested comment holds no hazards:
       /* Instant::now(); SystemTime */
       still inside the outer comment */
    let _ = (fenced, plain, byte);
    raw
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 100);
        let _ = std::time::SystemTime::now();
    }
}
