//! Negative: error responses, justified pragmas and test-only panics
//! must not fire.

pub fn handle(line: &str) -> Result<String, String> {
    let value: usize = line
        .trim()
        .parse()
        .map_err(|e| format!("malformed request: {e}"))?;
    value
        .checked_mul(2)
        .map(|d| d.to_string())
        .ok_or_else(|| "doubling overflowed".to_string())
}

pub fn socket_name(path: &std::path::Path) -> &str {
    // detlint: allow(panic-in-daemon) -- the config parser rejected
    // non-UTF-8 paths at startup, before any request was accepted.
    path.to_str().expect("validated at startup")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_in_tests_are_fine() {
        assert_eq!(handle("21").unwrap(), "42");
        handle("oops").unwrap_err();
    }

    #[test]
    #[should_panic]
    fn explicit_test_panic() {
        panic!("tests may panic");
    }
}
