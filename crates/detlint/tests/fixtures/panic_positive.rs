//! Positive: panicking request paths in a daemon crate must fire.

pub fn handle(line: &str) -> String {
    let value: usize = line.trim().parse().unwrap();
    let doubled = value.checked_mul(2).expect("doubling overflowed");
    if doubled > 1_000 {
        panic!("request too large");
    }
    doubled.to_string()
}
