//! Positive: bare wall-clock reads in a deterministic crate must fire.

pub fn timed_step() -> u64 {
    let start = std::time::Instant::now();
    let _ = start;
    let epoch = std::time::SystemTime::now();
    let _ = epoch;
    0
}
