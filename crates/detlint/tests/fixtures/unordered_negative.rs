//! Negative: ordered containers, an order-insensitivity pragma, and
//! test-only hash containers must not fire.

use std::collections::{BTreeMap, BTreeSet};

pub fn ordered_tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    let dedup: BTreeSet<u32> = xs.iter().copied().collect();
    for x in dedup {
        counts.insert(x, 1);
    }
    counts
}

pub fn summed(xs: &[u32]) -> u64 {
    let pool: std::collections::HashSet<u32> = xs.iter().copied().collect(); // detlint: allow(unordered-container) -- only the sum leaves this fn, and addition over u64 is order-insensitive
    pool.iter().map(|&x| u64::from(x)).sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_maps_in_tests_are_fine() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
