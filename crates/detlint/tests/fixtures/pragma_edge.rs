//! Pragma grammar violations and staleness: every annotation below is
//! itself a finding.

// detlint: allow(wall-clock)
pub fn missing_reason() {}

// detlint: allow(made-up-rule) -- sounds plausible but is not registered
pub fn unknown_rule() {}

// detlint: allow(wall-clock) -- nothing below reads the clock anymore
pub fn stale_standalone() -> u32 {
    7
}

pub fn stale_trailing() -> u32 {
    9 // detlint: allow(unordered-container) -- the HashMap is long gone
}

// detlint: deny(wall-clock) -- wrong verb, only allow() exists
pub fn wrong_verb() {}
