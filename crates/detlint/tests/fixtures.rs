//! Fixture corpus: every rule has a positive case proving it fires and a
//! negative case proving it does not over-fire. Fixtures live under
//! `tests/fixtures/` (which the workspace walk skips, so the deliberate
//! violations in them never show up in a real run) and are linted here
//! under synthetic workspace paths, because the contract a file is held
//! to depends on which crate the path says it belongs to.

use onslicing_detlint::{lint_source, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture(rel_path: &str, name: &str) -> Vec<Finding> {
    lint_source(rel_path, &fixture(name))
}

/// The compact shape assertions compare against: `(rule, line)` pairs in
/// report order.
fn shape(findings: &[Finding]) -> Vec<(&str, usize)> {
    findings.iter().map(|f| (f.rule.as_str(), f.line)).collect()
}

const DET_PATH: &str = "crates/core/src/lib.rs";
const DAEMON_PATH: &str = "crates/fleetd/src/handler.rs";

#[test]
fn wall_clock_fires_on_bare_reads_in_det_crates() {
    let findings = lint_fixture(DET_PATH, "wall_clock_positive.rs");
    assert_eq!(
        shape(&findings),
        vec![("wall-clock-in-det", 4), ("wall-clock-in-det", 6)]
    );
    assert!(
        findings[0].message.contains("Instant::now()"),
        "{:?}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("SystemTime"),
        "{:?}",
        findings[1]
    );
}

#[test]
fn wall_clock_is_silent_outside_det_crates() {
    for path in [
        "crates/bench/src/lib.rs",
        "crates/detlint/src/lib.rs",
        "tools/gen.rs",
    ] {
        let findings = lint_fixture(path, "wall_clock_positive.rs");
        assert!(findings.is_empty(), "{path}: {:?}", shape(&findings));
    }
}

#[test]
fn wall_clock_respects_pragmas_strings_comments_and_tests() {
    // The negative fixture packs every way a clock read may legitimately
    // appear: under a (multi-line) pragma, behind a trailing pragma,
    // inside doc comments, raw strings (fenced and plain), byte strings,
    // nested block comments, and `#[cfg(test)]` code. None may fire, and
    // neither pragma may be reported stale.
    let findings = lint_fixture(DET_PATH, "wall_clock_negative.rs");
    assert!(findings.is_empty(), "{:?}", shape(&findings));
}

#[test]
fn unordered_container_fires_per_mention_in_det_crates() {
    let findings = lint_fixture(DET_PATH, "unordered_positive.rs");
    assert_eq!(
        shape(&findings),
        vec![
            ("unordered-container", 4),
            ("unordered-container", 7),
            ("unordered-container", 8),
            ("unordered-container", 8),
        ]
    );
    assert!(
        findings[0].message.contains("BTreeMap"),
        "{:?}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("BTreeSet"),
        "{:?}",
        findings[1]
    );
}

#[test]
fn unordered_container_accepts_btree_pragma_and_test_code() {
    let findings = lint_fixture(DET_PATH, "unordered_negative.rs");
    assert!(findings.is_empty(), "{:?}", shape(&findings));
    // The same hash containers outside a deterministic crate are fine.
    let findings = lint_fixture("crates/fleetd/src/lib.rs", "unordered_positive.rs");
    assert!(findings.is_empty(), "{:?}", shape(&findings));
}

#[test]
fn panic_fires_on_unwrap_expect_and_panic_in_daemon_code() {
    let findings = lint_fixture(DAEMON_PATH, "panic_positive.rs");
    assert_eq!(
        shape(&findings),
        vec![
            ("panic-in-daemon", 4),
            ("panic-in-daemon", 5),
            ("panic-in-daemon", 7),
        ]
    );
    assert!(
        findings[0].message.contains(".unwrap()"),
        "{:?}",
        findings[0]
    );
    assert!(
        findings[1].message.contains(".expect()"),
        "{:?}",
        findings[1]
    );
    assert!(findings[2].message.contains("panic!"), "{:?}", findings[2]);
}

#[test]
fn panic_is_silent_outside_daemon_crates_and_in_handled_code() {
    // Deterministic crates may unwrap: the chaos harness and goldens
    // catch their failures, and a sim crash is not a fleet outage.
    let findings = lint_fixture(DET_PATH, "panic_positive.rs");
    assert!(findings.is_empty(), "{:?}", shape(&findings));
    // Error-response style, a justified pragma and test-only panics pass.
    let findings = lint_fixture(DAEMON_PATH, "panic_negative.rs");
    assert!(findings.is_empty(), "{:?}", shape(&findings));
}

#[test]
fn pragma_grammar_violations_and_staleness_are_findings() {
    let findings = lint_fixture("crates/replay/src/lib.rs", "pragma_edge.rs");
    assert_eq!(
        shape(&findings),
        vec![
            ("invalid-pragma", 4),
            ("invalid-pragma", 7),
            ("stale-allow", 10),
            ("stale-allow", 16),
            ("invalid-pragma", 19),
        ]
    );
    // Missing reason names the fix; unknown rule enumerates the registry.
    assert!(
        findings[0].message.contains("justification"),
        "{:?}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("unknown rule `made-up-rule`")
            && findings[1].message.contains("wall-clock"),
        "{:?}",
        findings[1]
    );
    // Staleness reports both the dead target line and the original reason,
    // so the cleanup commit writes itself.
    assert!(
        findings[2].message.contains("line 11") && findings[2].message.contains("reason was"),
        "{:?}",
        findings[2]
    );
}

#[test]
fn pragma_findings_fire_regardless_of_crate_classification() {
    // Grammar and staleness are not crate-gated: a rotten annotation in a
    // tool crate is just as misleading as one in a deterministic crate.
    let findings = lint_fixture("tools/gen.rs", "pragma_edge.rs");
    assert_eq!(findings.len(), 5, "{:?}", shape(&findings));
}

#[test]
fn findings_render_as_clickable_file_line_rule() {
    let findings = lint_fixture(DET_PATH, "wall_clock_positive.rs");
    assert!(findings[0]
        .render()
        .starts_with("crates/core/src/lib.rs:4: [wall-clock-in-det]"));
}
