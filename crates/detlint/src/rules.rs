//! The named rule registry.
//!
//! Rules are registered by name, mirroring the policy-registry idiom of
//! the fleet's admission/balance policies: lookups by unknown names fail
//! with an error that enumerates the registered set, and the same names
//! are the currency of `allow(...)` pragmas and of findings. Three rules
//! are token scanners over one file; two (`invalid-pragma`,
//! `stale-allow`) are driven by the pragma table in the lint driver and
//! exist in the registry so their names are reserved, listable and
//! documented in one place.

use crate::lexer::{Token, TokenKind};

/// Per-file context a scan rule sees: tokens, the test mask, and the
/// file's contract classification derived from its workspace path.
pub struct FileView<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// The lexed tokens.
    pub tokens: &'a [Token],
    /// `in_test[i]` — token `i` sits in `#[test]`/`#[cfg(test)]` code.
    pub in_test: &'a [bool],
    /// The file belongs to a deterministic crate (traces must be a pure
    /// function of config + seed).
    pub is_det: bool,
    /// The file belongs to a daemon crate (request paths must degrade to
    /// error responses, never panic).
    pub is_daemon: bool,
}

/// One raw (pre-suppression) finding: the line it fires on and its text.
pub struct RawFinding {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation, actionable without opening the docs.
    pub message: String,
}

/// A registered lint rule.
pub trait LintRule {
    /// Registry name, as reported in findings.
    fn name(&self) -> &'static str;
    /// The key accepted inside `allow(...)` pragmas (a short alias; the
    /// full registry name is accepted too).
    fn pragma_key(&self) -> &'static str {
        self.name()
    }
    /// One-line catalogue description.
    fn summary(&self) -> &'static str;
    /// Token scan over one file. Registry-level rules return nothing
    /// here; the driver computes their findings from the pragma table.
    fn scan(&self, file: &FileView<'_>) -> Vec<RawFinding>;
}

/// `wall-clock-in-det`: `Instant::now()` / `SystemTime` in deterministic
/// crates. Wall-clock readings may only ever feed report-only fields
/// (latency percentiles, `wall_clock_ms`) — never traces — and every such
/// site must say so in an allow pragma.
struct WallClockInDet;

impl LintRule for WallClockInDet {
    fn name(&self) -> &'static str {
        "wall-clock-in-det"
    }
    fn pragma_key(&self) -> &'static str {
        "wall-clock"
    }
    fn summary(&self) -> &'static str {
        "Instant::now()/SystemTime in a deterministic crate: wall-clock is report-only and every site needs an audited allow pragma"
    }
    fn scan(&self, file: &FileView<'_>) -> Vec<RawFinding> {
        if !file.is_det {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = file.tokens;
        for i in 0..toks.len() {
            if file.in_test[i] || toks[i].kind != TokenKind::Ident {
                continue;
            }
            if toks[i].text == "Instant"
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Punct(':'))
                && matches!(toks.get(i + 2), Some(t) if t.kind == TokenKind::Punct(':'))
                && matches!(toks.get(i + 3), Some(t) if t.text == "now")
            {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: "Instant::now() in a deterministic crate; wall-clock may feed \
                              reports only, never traces — fix it or annotate \
                              `allow(wall-clock)` with the reason"
                        .to_string(),
                });
            } else if toks[i].text == "SystemTime" {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: "SystemTime in a deterministic crate; wall-clock may feed \
                              reports only, never traces — fix it or annotate \
                              `allow(wall-clock)` with the reason"
                        .to_string(),
                });
            }
        }
        out
    }
}

/// `unordered-container`: `HashMap`/`HashSet` anywhere in a deterministic
/// crate. Their iteration order is seeded per process, so any value that
/// flows from one toward a trace breaks byte-determinism; deterministic
/// crates use `BTreeMap`/`BTreeSet` or carry a proof of order-insensitivity
/// in an allow pragma.
struct UnorderedContainer;

impl LintRule for UnorderedContainer {
    fn name(&self) -> &'static str {
        "unordered-container"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet in a deterministic crate: iteration order is unseeded, use BTreeMap/BTreeSet or prove order-insensitivity in a pragma"
    }
    fn scan(&self, file: &FileView<'_>) -> Vec<RawFinding> {
        if !file.is_det {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.in_test[i] || tok.kind != TokenKind::Ident {
                continue;
            }
            if tok.text == "HashMap" || tok.text == "HashSet" {
                out.push(RawFinding {
                    line: tok.line,
                    message: format!(
                        "{} in a deterministic crate; iteration order is not deterministic \
                         — use BTree{} or annotate `allow(unordered-container)` with an \
                         order-insensitivity argument",
                        tok.text,
                        tok.text.trim_start_matches("Hash"),
                    ),
                });
            }
        }
        out
    }
}

/// `panic-in-daemon`: `.unwrap()` / `.expect(` / `panic!` in a daemon
/// crate's non-test code. A daemon request path that panics takes the
/// whole fleet down with the one bad request; these must become error
/// responses (or carry a pragma explaining why the panic is unreachable).
struct PanicInDaemon;

impl LintRule for PanicInDaemon {
    fn name(&self) -> &'static str {
        "panic-in-daemon"
    }
    fn summary(&self) -> &'static str {
        ".unwrap()/.expect()/panic! in daemon non-test code: request paths must degrade to error responses, never abort the process"
    }
    fn scan(&self, file: &FileView<'_>) -> Vec<RawFinding> {
        if !file.is_daemon {
            return Vec::new();
        }
        let mut out = Vec::new();
        let toks = file.tokens;
        for i in 0..toks.len() {
            if file.in_test[i] {
                continue;
            }
            let method_call = |name: &str| {
                matches!(toks.get(i), Some(t) if t.kind == TokenKind::Punct('.'))
                    && matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Ident && t.text == name)
                    && matches!(toks.get(i + 2), Some(t) if t.kind == TokenKind::Punct('('))
            };
            if method_call("unwrap") || method_call("expect") {
                out.push(RawFinding {
                    line: toks[i + 1].line,
                    message: format!(
                        ".{}() in daemon code; a panicking request path kills the whole \
                         daemon — return an error response instead, or annotate \
                         `allow(panic-in-daemon)` with an unreachability argument",
                        toks[i + 1].text
                    ),
                });
            } else if toks[i].kind == TokenKind::Ident
                && toks[i].text == "panic"
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Punct('!'))
            {
                out.push(RawFinding {
                    line: toks[i].line,
                    message: "panic! in daemon code; request paths must degrade to error \
                              responses — or annotate `allow(panic-in-daemon)` with an \
                              unreachability argument"
                        .to_string(),
                });
            }
        }
        out
    }
}

/// `invalid-pragma`: a comment that starts with the `detlint:` marker but
/// violates the pragma grammar (unknown rule name, missing `-- reason`).
/// Findings are produced by the driver; registered here so the name is
/// reserved and listable.
struct InvalidPragma;

impl LintRule for InvalidPragma {
    fn name(&self) -> &'static str {
        "invalid-pragma"
    }
    fn summary(&self) -> &'static str {
        "a detlint pragma that does not parse: unknown rule name or missing `-- <reason>` justification"
    }
    fn scan(&self, _file: &FileView<'_>) -> Vec<RawFinding> {
        Vec::new()
    }
}

/// `stale-allow`: an allow pragma whose rule no longer fires on its target
/// line. Produced by the driver after suppression bookkeeping; registered
/// here so the name is reserved and listable.
struct StaleAllow;

impl LintRule for StaleAllow {
    fn name(&self) -> &'static str {
        "stale-allow"
    }
    fn summary(&self) -> &'static str {
        "an allow pragma that suppresses nothing on its target line: the hazard is gone, so the annotation must go too"
    }
    fn scan(&self, _file: &FileView<'_>) -> Vec<RawFinding> {
        Vec::new()
    }
}

/// The registry, in catalogue order.
pub fn registry() -> &'static [&'static dyn LintRule] {
    const REGISTRY: [&dyn LintRule; 5] = [
        &WallClockInDet,
        &UnorderedContainer,
        &PanicInDaemon,
        &InvalidPragma,
        &StaleAllow,
    ];
    &REGISTRY
}

/// Looks a rule up by registry name or pragma key.
pub fn by_name(name: &str) -> Option<&'static dyn LintRule> {
    registry()
        .iter()
        .copied()
        .find(|r| r.name() == name || r.pragma_key() == name)
}

/// The error for an unregistered rule name, enumerating the valid set —
/// the same shape the fleet's policy registries use.
pub fn unknown_rule_error(name: &str) -> String {
    let keys: Vec<&str> = registry().iter().map(|r| r.pragma_key()).collect();
    format!(
        "unknown rule `{name}` (registered rules: {})",
        keys.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_accepts_names_and_pragma_keys() {
        assert_eq!(
            by_name("wall-clock-in-det").unwrap().name(),
            "wall-clock-in-det"
        );
        assert_eq!(by_name("wall-clock").unwrap().name(), "wall-clock-in-det");
        assert_eq!(
            by_name("panic-in-daemon").unwrap().name(),
            "panic-in-daemon"
        );
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn unknown_rule_error_enumerates_the_registered_set() {
        let err = unknown_rule_error("speling");
        assert!(err.contains("unknown rule `speling`"), "{err}");
        for key in [
            "wall-clock",
            "unordered-container",
            "panic-in-daemon",
            "stale-allow",
        ] {
            assert!(err.contains(key), "{err} should list {key}");
        }
    }
}
