//! `detlint` — walk the workspace, run every registered rule, report.
//!
//! ```text
//! detlint [--root <dir>] [--json <path>] [--list-rules]
//! ```
//!
//! Human findings go to stdout as `file:line: [rule] message`; the exit
//! code is non-zero when anything fired. `--json` additionally writes the
//! machine-readable report (CI uploads it as an artifact either way).

use std::path::PathBuf;
use std::process::ExitCode;

use onslicing_detlint::{lint_workspace, rules};

fn usage() -> String {
    "usage: detlint [--root <dir>] [--json <path>] [--list-rules]".to_string()
}

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or_else(usage)?),
            "--json" => json_out = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--list-rules" => {
                for rule in rules::registry() {
                    println!("{:<22} {}", rule.name(), rule.summary());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }

    let report = lint_workspace(&root)?;
    if let Some(path) = &json_out {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    if report.findings.is_empty() {
        println!(
            "detlint: clean — {} files, {} rules, 0 findings",
            report.files_scanned,
            rules::registry().len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "detlint: {} finding(s) across {} files",
            report.findings.len(),
            report.files_scanned
        );
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("detlint: {message}");
            ExitCode::FAILURE
        }
    }
}
