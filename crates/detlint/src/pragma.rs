//! The allow-pragma grammar and its parser.
//!
//! A pragma is a plain `//` comment (or `/* */` block) whose body, after
//! trimming, begins with the marker `detlint:` and continues
//! `allow(<rule>) -- <reason>`. The reason is mandatory: an annotation
//! that cannot say *why* the rule does not apply is a finding, not a
//! suppression. Doc comments (`///`, `//!`) deliberately never parse as
//! pragmas — after stripping `//` their bodies start with `/` or `!`, so
//! mentioning the grammar in documentation is always safe.
//!
//! A trailing pragma (code before it on the same line) suppresses findings
//! on its own line; a standalone pragma line suppresses findings on the
//! next line. Each pragma must actually suppress something: a pragma whose
//! rule no longer fires on its target line is itself reported by the
//! `stale-allow` rule, so annotations cannot rot in place.

use crate::lexer::{Token, TokenKind};

/// A successfully parsed allow pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule key named inside `allow(...)`.
    pub rule: String,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: usize,
    /// 1-based line whose findings this pragma suppresses.
    pub target_line: usize,
    /// Whether the pragma sits inside test-gated code (exempt from
    /// staleness: rules do not fire there in the first place).
    pub in_test: bool,
}

/// What a comment turned out to be.
#[derive(Debug)]
pub enum PragmaParse {
    /// An ordinary comment.
    NotAPragma,
    /// A well-formed pragma (rule-name validity is checked by the driver
    /// against the registry).
    Valid(Pragma),
    /// Starts with the `detlint:` marker but violates the grammar.
    Invalid {
        /// 1-based line of the malformed pragma.
        line: usize,
        /// Why it does not parse.
        message: String,
    },
}

/// Extracts the comment body: strips `//` / `/* ... */` delimiters.
fn comment_body(token: &Token) -> &str {
    match token.kind {
        TokenKind::LineComment => token.text.strip_prefix("//").unwrap_or(&token.text),
        TokenKind::BlockComment => token
            .text
            .strip_prefix("/*")
            .unwrap_or(&token.text)
            .strip_suffix("*/")
            .unwrap_or(&token.text),
        _ => "",
    }
}

/// Parses one comment token. `target_line` and `in_test` are supplied by
/// the caller, which knows the token's neighborhood.
pub fn parse(token: &Token, target_line: usize, in_test: bool) -> PragmaParse {
    let body = comment_body(token).trim_start();
    let Some(rest) = body.strip_prefix("detlint:") else {
        return PragmaParse::NotAPragma;
    };
    let line = token.line;
    let invalid = |message: String| PragmaParse::Invalid { line, message };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return invalid("expected `allow(<rule>)` after `detlint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return invalid("unclosed `allow(` — missing `)`".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return invalid("empty rule name in `allow()`".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return invalid(format!(
            "allow({rule}) needs a justification: `-- <why the rule does not apply here>`"
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return invalid(format!(
            "allow({rule}) has an empty justification after `--`"
        ));
    }
    PragmaParse::Valid(Pragma {
        rule: rule.to_string(),
        reason: reason.to_string(),
        line,
        target_line,
        in_test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_comment(text: &str) -> Token {
        Token {
            kind: TokenKind::LineComment,
            text: text.to_string(),
            line: 7,
        }
    }

    #[test]
    fn well_formed_pragma_parses() {
        let token = line_comment("// detlint: allow(wall-clock) -- report-only latency");
        match parse(&token, 7, false) {
            PragmaParse::Valid(p) => {
                assert_eq!(p.rule, "wall-clock");
                assert_eq!(p.reason, "report-only latency");
                assert_eq!(p.target_line, 7);
            }
            other => panic!("expected valid pragma, got {other:?}"),
        }
    }

    #[test]
    fn missing_reason_is_invalid() {
        let token = line_comment("// detlint: allow(wall-clock)");
        assert!(matches!(
            parse(&token, 7, false),
            PragmaParse::Invalid { .. }
        ));
        let token = line_comment("// detlint: allow(wall-clock) -- ");
        assert!(matches!(
            parse(&token, 7, false),
            PragmaParse::Invalid { .. }
        ));
    }

    #[test]
    fn malformed_shapes_are_invalid_not_ignored() {
        for text in [
            "// detlint: deny(wall-clock) -- x",
            "// detlint: allow(wall-clock -- x",
            "// detlint: allow() -- x",
            "// detlint:",
        ] {
            assert!(
                matches!(
                    parse(&line_comment(text), 7, false),
                    PragmaParse::Invalid { .. }
                ),
                "{text} should be invalid"
            );
        }
    }

    #[test]
    fn ordinary_and_doc_comments_are_not_pragmas() {
        for text in [
            "// just a comment mentioning detlint somewhere",
            "/// detlint: allow(wall-clock) -- doc comments never parse",
            "//! detlint: allow(wall-clock) -- module docs neither",
        ] {
            assert!(
                matches!(
                    parse(&line_comment(text), 7, false),
                    PragmaParse::NotAPragma
                ),
                "{text} should not be a pragma"
            );
        }
    }

    #[test]
    fn block_comment_pragma_parses() {
        let token = Token {
            kind: TokenKind::BlockComment,
            text: "/* detlint: allow(unordered-container) -- sum is order-insensitive */"
                .to_string(),
            line: 3,
        };
        match parse(&token, 4, false) {
            PragmaParse::Valid(p) => {
                assert_eq!(p.rule, "unordered-container");
                assert_eq!(p.target_line, 4);
            }
            other => panic!("expected valid pragma, got {other:?}"),
        }
    }
}
