//! The workspace walker: every `.rs` file under the root, in sorted
//! order, skipping the configured directory names at any depth.

use std::path::Path;

/// Collects workspace-relative (`/`-separated) paths of every `.rs` file
/// under `root`, never descending into a directory whose *name* is in
/// `skip_dirs`. Sorted, so runs are deterministic and diffs are stable.
pub fn rust_files(root: &Path, skip_dirs: &[&str]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    descend(root, String::new(), skip_dirs, &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(
    dir: &Path,
    rel: String,
    skip_dirs: &[&str],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        let child_rel = if rel.is_empty() {
            name.to_string()
        } else {
            format!("{rel}/{name}")
        };
        let path = entry.path();
        if path.is_dir() {
            if skip_dirs.contains(&name) || name.starts_with('.') {
                continue;
            }
            descend(&path, child_rel, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("detlint-walk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn skips_configured_dirs_at_any_depth_and_sorts() {
        let root = scratch("skip");
        for path in [
            "crates/a/src/lib.rs",
            "crates/a/tests/it.rs",
            "crates/b/src/main.rs",
            "vendor/x/src/lib.rs",
            "target/debug/junk.rs",
            "src/lib.rs",
        ] {
            let full = root.join(path);
            std::fs::create_dir_all(full.parent().unwrap()).unwrap();
            std::fs::write(full, "fn x() {}").unwrap();
        }
        let files = rust_files(&root, &["vendor", "target", "tests"]).unwrap();
        assert_eq!(
            files,
            ["crates/a/src/lib.rs", "crates/b/src/main.rs", "src/lib.rs"]
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
