//! detlint: workspace static analysis for the determinism and
//! daemon-robustness contracts.
//!
//! The repo's most valuable property — byte-identical traces across
//! thread counts, kill/resume and rolling upgrades — is enforced
//! dynamically by golden `cmp` gates and the chaos harness, but those
//! gates are blind when both comparison arms share a buggy code path.
//! detlint enforces the *source-level* rules that keep the property true:
//!
//! * wall-clock (`Instant::now`/`SystemTime`) in deterministic crates is
//!   report-only, and every site carries an audited justification;
//! * unordered containers (`HashMap`/`HashSet`) never appear in
//!   deterministic crates — `BTreeMap`/`BTreeSet` or a written
//!   order-insensitivity argument;
//! * daemon request paths never panic — `.unwrap()`/`.expect()`/`panic!`
//!   in `fleetd` non-test code must become error responses;
//! * allow pragmas cannot rot: one that no longer suppresses anything is
//!   itself a finding (`stale-allow`), as is one that does not parse
//!   (`invalid-pragma`).
//!
//! The crate is dependency-free by design. See [`lint_source`] for the
//! per-file pipeline and [`lint_workspace`] for the CI entry point.

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walk;

use lexer::{lex, test_mask};
use pragma::PragmaParse;
use rules::{by_name, registry, unknown_rule_error, FileView};

/// Crates whose traces must be a pure function of config + seed. Paths
/// under `crates/<name>/` for these names get the determinism rules.
pub const DET_CRATES: [&str; 10] = [
    "core", "nn", "rl", "domains", "netsim", "traffic", "slices", "scenario", "replay", "fleet",
];

/// Crates that run as long-lived daemons: request handling must degrade
/// to error responses, never panic.
pub const DAEMON_CRATES: [&str; 1] = ["fleetd"];

/// Directory names the workspace walk never descends into. `vendor/` is
/// shimmed third-party code, `target/` is build output, and `tests/`,
/// `benches/`, `examples/` and fixture/regression corpora are exempt from
/// the shipping-code contracts by construction.
pub const SKIP_DIRS: [&str; 10] = [
    "vendor",
    "target",
    "tests",
    "benches",
    "examples",
    "fixtures",
    "regressions",
    "goldens",
    "baselines",
    ".git",
];

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Registry name of the rule that fired.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical single-line human rendering: `file:line: [rule] msg`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Classifies a workspace-relative path into its crate directory name
/// (`crates/scenario/src/engine.rs` → `Some("scenario")`).
fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    (parts.next() == Some("crates"))
        .then(|| parts.next())
        .flatten()
}

/// Lints one file's source. `rel_path` drives the contract
/// classification, so fixture tests can lint under any synthetic path.
/// Findings come back sorted by line.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = test_mask(&tokens);
    let krate = crate_of(rel_path);
    let view = FileView {
        rel_path,
        tokens: &tokens,
        in_test: &in_test,
        is_det: krate.is_some_and(|c| DET_CRATES.contains(&c)),
        is_daemon: krate.is_some_and(|c| DAEMON_CRATES.contains(&c)),
    };

    let mut findings: Vec<Finding> = Vec::new();

    // Pragma table. A trailing pragma (code earlier on its line) targets
    // its own line; a standalone pragma targets the next line holding any
    // code token — so a pragma whose prose wraps across several comment
    // lines still binds to the statement below it.
    let code_lines: std::collections::BTreeSet<usize> = tokens
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.line)
        .collect();
    let mut pragmas = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_comment() {
            continue;
        }
        let has_code_before = tokens[..i]
            .iter()
            .any(|t| !t.is_comment() && t.line == token.line);
        let target_line = if has_code_before {
            token.line
        } else {
            code_lines
                .range(token.line + 1..)
                .next()
                .copied()
                .unwrap_or(token.line + 1)
        };
        match pragma::parse(token, target_line, in_test[i]) {
            PragmaParse::NotAPragma => {}
            PragmaParse::Invalid { line, message } => findings.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "invalid-pragma".to_string(),
                message,
            }),
            PragmaParse::Valid(p) => match by_name(&p.rule) {
                Some(_) => pragmas.push((p, false)),
                None => findings.push(Finding {
                    file: rel_path.to_string(),
                    line: p.line,
                    rule: "invalid-pragma".to_string(),
                    message: unknown_rule_error(&p.rule),
                }),
            },
        }
    }

    // Scan rules, with pragma suppression bookkeeping.
    for rule in registry() {
        for raw in rule.scan(&view) {
            let suppressed = pragmas.iter_mut().find(|(p, _)| {
                p.target_line == raw.line
                    && by_name(&p.rule).is_some_and(|r| r.name() == rule.name())
            });
            match suppressed {
                Some((_, used)) => *used = true,
                None => findings.push(Finding {
                    file: rel_path.to_string(),
                    line: raw.line,
                    rule: rule.name().to_string(),
                    message: raw.message,
                }),
            }
        }
    }

    // Staleness: a pragma that suppressed nothing is itself a finding —
    // unless it sits in test-gated code, where rules never fire at all.
    for (p, used) in &pragmas {
        if !used && !p.in_test {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: p.line,
                rule: "stale-allow".to_string(),
                message: format!(
                    "allow({}) suppresses nothing on line {} — the hazard is gone, \
                     remove the pragma (reason was: {})",
                    p.rule, p.target_line, p.reason
                ),
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// The result of a workspace run.
pub struct WorkspaceReport {
    /// Every finding, ordered by file then line.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// The machine-readable JSON document the CI job uploads.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_string(&f.file),
                f.line,
                json_string(&f.rule),
                json_string(&f.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the only JSON this crate emits).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks the workspace from `root` and lints every `.rs` file outside
/// [`SKIP_DIRS`]. Deterministic: files are visited in sorted path order.
pub fn lint_workspace(root: &std::path::Path) -> Result<WorkspaceReport, String> {
    let files = walk::rust_files(root, &SKIP_DIRS)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        findings.extend(lint_source(rel, &source));
    }
    Ok(WorkspaceReport {
        findings,
        files_scanned: files.len(),
    })
}
