//! A hand-rolled Rust lexer: just enough token structure to lint source
//! reliably without a full parser.
//!
//! The rules in this crate are token-sequence matchers, so the only job of
//! the lexer is to never confuse code with non-code: string literals
//! (including raw strings with arbitrary `#` fences and byte strings),
//! char literals vs lifetimes, line comments, and *nested* block comments
//! must all be classified correctly, or a doc comment mentioning
//! `Instant::now` would trip the wall-clock rule. Numbers and punctuation
//! are tokenized loosely — the rules never inspect them beyond identity.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// A `//` comment (doc comments included), text up to the newline.
    LineComment,
    /// A `/* ... */` comment, nesting handled.
    BlockComment,
    /// A string literal: `"..."`, `b"..."`, raw `r"..."`/`r#"..."#` and
    /// byte-raw variants.
    Str,
    /// A char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// A numeric literal (integers, floats, hex/oct/bin, suffixes).
    Number,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens. Unterminated constructs (string, block
/// comment) consume to end of input rather than erroring: a linter must
/// degrade gracefully on code rustc would reject anyway.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let start = self.pos;
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => {
                    while self.pos < self.chars.len() && self.chars[self.pos] != '\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(start, line);
                }
                '"' => {
                    self.string_body();
                    self.push(TokenKind::Str, start, line);
                }
                'b' | 'r' if self.try_prefixed_literal(start, line) => {}
                '\'' => self.char_or_lifetime(start, line),
                c if is_ident_start(c) => {
                    while self.pos < self.chars.len() && is_ident_continue(self.chars[self.pos]) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), start, line);
                }
            }
        }
        self.tokens
    }

    /// `/* ... */` with arbitrary nesting; unterminated runs to EOF.
    fn block_comment(&mut self, start: usize, line: usize) {
        let mut depth = 0usize;
        while self.pos < self.chars.len() {
            if self.chars[self.pos] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.chars[self.pos] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// Consumes a `"..."` body (opening quote included), honoring `\`
    /// escapes; multi-line strings keep the line counter honest.
    fn string_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.chars.len() {
            match self.chars[self.pos] {
                '\\' => {
                    self.bump();
                    if self.pos < self.chars.len() {
                        self.bump();
                    }
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Handles literals introduced by `b` or `r`: byte strings `b"..."`,
    /// byte chars `b'x'`, raw strings `r"..."` / `r##"..."##`, byte-raw
    /// strings `br#"..."#`, and raw identifiers `r#type`. Returns false
    /// when the prefix is just the start of an ordinary identifier
    /// (`balance`, `run`, ...), leaving the position untouched.
    fn try_prefixed_literal(&mut self, start: usize, line: usize) -> bool {
        let c = self.chars[self.pos];
        // b'x' byte char literal.
        if c == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.char_body();
            self.push(TokenKind::Char, start, line);
            return true;
        }
        // b"..." byte string.
        if c == 'b' && self.peek(1) == Some('"') {
            self.bump();
            self.string_body();
            self.push(TokenKind::Str, start, line);
            return true;
        }
        // Raw forms: r"..."  r#"..."#  br"..."  br#"..."#  and r#ident.
        let raw_at = match (c, self.peek(1)) {
            ('r', _) => 1,
            ('b', Some('r')) => 2,
            _ => return false,
        };
        let mut hashes = 0usize;
        while self.peek(raw_at + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(raw_at + hashes) {
            Some('"') => {
                for _ in 0..raw_at + hashes + 1 {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(TokenKind::Str, start, line);
                true
            }
            // `r#type`: a raw identifier, not a raw string.
            Some(i) if c == 'r' && hashes == 1 && is_ident_start(i) => {
                self.bump(); // r
                self.bump(); // #
                while self.pos < self.chars.len() && is_ident_continue(self.chars[self.pos]) {
                    self.bump();
                }
                self.push(TokenKind::Ident, start, line);
                true
            }
            _ => false,
        }
    }

    /// Consumes a raw-string body up to `"` followed by `hashes` `#`s.
    /// No escapes exist inside: `r#"\"#` ends at the quote-hash.
    fn raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.chars.len() {
            if self.chars[self.pos] == '"' && (1..=hashes).all(|h| self.peek(h) == Some('#')) {
                for _ in 0..hashes + 1 {
                    self.bump();
                }
                return;
            }
            self.bump();
        }
    }

    /// Consumes a `'...'` char-literal body (opening quote included).
    fn char_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.chars.len() {
            match self.chars[self.pos] {
                '\\' => {
                    self.bump();
                    if self.pos < self.chars.len() {
                        self.bump();
                    }
                }
                '\'' => {
                    self.bump();
                    return;
                }
                // A newline before the closing quote means this was not a
                // char literal after all; stop rather than eat the file.
                '\n' => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a quote whose next
    /// char starts an identifier is a lifetime unless the char after that
    /// closes the literal.
    fn char_or_lifetime(&mut self, start: usize, line: usize) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // quote
            while self.pos < self.chars.len() && is_ident_continue(self.chars[self.pos]) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line);
        } else {
            self.char_body();
            self.push(TokenKind::Char, start, line);
        }
    }

    /// Numeric literal: digits, `_`, radix/suffix letters, one decimal
    /// point when followed by a digit, and exponent signs after `e`/`E`.
    fn number(&mut self) {
        let mut seen_dot = false;
        while self.pos < self.chars.len() {
            let ch = self.chars[self.pos];
            if ch.is_ascii_alphanumeric() || ch == '_' {
                self.bump();
            } else if ch == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else if (ch == '+' || ch == '-') && matches!(self.chars[self.pos - 1], 'e' | 'E') {
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Computes, per token, whether it sits inside test-gated code: an item
/// (fn, mod, impl, use, ...) annotated `#[test]` or `#[cfg(test)]` —
/// including everything nested inside a `#[cfg(test)] mod tests { ... }`
/// block. Rules skip masked tokens: the contracts govern shipping code,
/// and test bodies unwrap freely by design.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct('#')
            && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('['))
        {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                let item_end = item_extent(tokens, attr_end);
                for flag in mask.iter_mut().take(item_end).skip(i) {
                    *flag = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans a `[...]` attribute starting at its `[`; returns the index one
/// past the closing `]` and whether the attribute gates test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`, ...).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokenKind::Ident => idents.push(&tokens[i].text),
            _ => {}
        }
        i += 1;
    }
    let is_test = match idents.split_first() {
        Some((&"test", rest)) => rest.is_empty(),
        Some((&"cfg", rest)) => rest.contains(&"test"),
        _ => false,
    };
    (i, is_test)
}

/// Finds the end (exclusive token index) of the item starting at `start`:
/// either the `;` that closes a braceless item, or the `}` matching its
/// first `{`. Intervening attributes are skipped over by brace/bracket
/// counting; comments never affect nesting.
fn item_extent(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Find the item body's opening `{` or a terminating `;` first.
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(';') => return i + 1,
            TokenKind::Punct('{') => break,
            _ => i += 1,
        }
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_ident_scanning() {
        let src = r##"let x = "Instant::now()"; let y = r#"SystemTime "quoted" inside"#;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_with_fences_terminate_at_the_matching_fence() {
        let src = "let s = r##\"contains \"# inner\"##; after();";
        let toks = lex(src);
        let raw = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(raw.text.contains("inner"));
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let src = "let a = b\"HashMap\"; let c = b'x'; let d = br#\"HashSet\"#;";
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn nested_block_comments_close_at_the_matching_depth() {
        let src = "/* outer /* Instant::now() */ still comment */ fn live() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("still comment"));
        assert_eq!(idents(src), ["fn", "live"]);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; let q = '\\''; }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        assert_eq!(idents("let r#type = 1;"), ["let", "r#type"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals_and_comments() {
        let src = "let a = \"two\nlines\";\n/* one\ntwo */\nfn here() {}";
        let toks = lex(src);
        let here = toks.iter().find(|t| t.text == "here").unwrap();
        assert_eq!(here.line, 5);
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let src = "for i in 0..10 { let f = 1.5e-3; }";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3"]);
    }

    #[test]
    fn cfg_test_mod_is_masked_and_code_before_it_is_not() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let pos = |name: &str| toks.iter().position(|t| t.text == name).unwrap();
        assert!(!mask[pos("live")]);
        assert!(mask[pos("tests")]);
        assert!(mask[pos("y")]);
        assert!(!mask[pos("after")]);
    }

    #[test]
    fn test_attribute_masks_only_its_item() {
        let src = "#[test]\nfn a_test() { x.unwrap(); }\nfn live() { }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let pos = |name: &str| toks.iter().position(|t| t.text == name).unwrap();
        assert!(mask[pos("a_test")]);
        assert!(!mask[pos("live")]);
    }

    #[test]
    fn cfg_test_on_a_braceless_item_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let pos = |name: &str| toks.iter().position(|t| t.text == name).unwrap();
        assert!(mask[pos("HashMap")]);
        assert!(!mask[pos("live")]);
    }

    #[test]
    fn non_test_cfg_attributes_do_not_mask() {
        let src = "#[cfg(unix)]\nfn live() { x.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        assert!(mask.iter().all(|m| !m));
    }
}
