//! Allocation audit of the fused slot path (the PR's `_into` discipline,
//! extended to the orchestrator): after a warm-up episode, an evaluation
//! slot must run without touching the allocator at all — the gather
//! buffers, fused cell batches, coordination scratch and outcome vectors
//! are all reused, and the fast Bayesian predict path draws through its
//! cached σ matrices.
//!
//! The counting allocator is process-global, so this lives in its own
//! integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use onslicing_core::{
    AgentConfig, CoordinationMode, MultiSliceEnvironment, OnSlicingAgent, Orchestrator,
    OrchestratorConfig, RuleBasedBaseline, SlotOutcome,
};
use onslicing_domains::DomainSet;
use onslicing_netsim::NetworkConfig;
use onslicing_slices::{Sla, SliceKind};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn build_orchestrator() -> Orchestrator {
    let network = NetworkConfig::testbed_default();
    let env = MultiSliceEnvironment::testbed_default(network, 5);
    let horizon = env.envs()[0].horizon();
    let agents = SliceKind::ALL
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let sla = Sla::for_kind(*kind);
            let baseline = RuleBasedBaseline::calibrate(
                *kind,
                &sla,
                &network,
                kind.default_peak_users_per_second(),
                4,
                100 + i as u64,
            );
            OnSlicingAgent::new(
                *kind,
                sla,
                baseline,
                AgentConfig::onslicing().scaled_down(horizon),
                i as u64,
            )
        })
        .collect();
    Orchestrator::new(
        env,
        agents,
        DomainSet::testbed_default(),
        OrchestratorConfig {
            coordination: CoordinationMode::default(),
            episodes_per_epoch: 1,
        },
    )
}

#[test]
fn evaluation_slots_allocate_nothing_in_steady_state() {
    let mut orch = build_orchestrator();
    let horizon = orch.env().envs()[0].horizon();

    // Warm-up: one full evaluation episode sizes every reusable buffer —
    // the gather vectors, both cell batches, the σ caches of the fast
    // Bayesian predict path, the coordination scratch and the outcome's
    // own vectors (including the episode-cost accumulators, which reach
    // their full-episode capacity here and keep it across resets).
    let mut outcome = SlotOutcome::default();
    orch.env_mut().reset_all();
    for _ in 0..horizon {
        orch.run_slot_into(false, &mut outcome);
    }
    for agent in orch.agents_mut() {
        agent.end_episode();
    }

    // Steady state: a fresh episode's slots must not allocate at all.
    orch.env_mut().reset_all();
    orch.run_slot_into(false, &mut outcome);
    for slot in 0..4 {
        let allocations = count_allocations(|| {
            orch.run_slot_into(false, &mut outcome);
        });
        assert_eq!(
            allocations, 0,
            "evaluation slot {slot} allocated {allocations} times in steady state"
        );
    }
    assert_eq!(outcome.executed.len(), 3);
}

#[test]
fn learning_slots_only_allocate_for_recorded_transitions() {
    // The learning path necessarily allocates when it stores transitions
    // (rollout buffers grow, policy samples carry vectors), but the decide /
    // coordinate / step machinery itself is the same reused-workspace code.
    // Guard against regressions with a generous per-slot ceiling: a handful
    // of allocations per slice (the transition's vectors), not the hundreds
    // the dispatched path used to make.
    let mut orch = build_orchestrator();
    let horizon = orch.env().envs()[0].horizon();
    let mut outcome = SlotOutcome::default();
    orch.env_mut().reset_all();
    for _ in 0..horizon {
        orch.run_slot_into(true, &mut outcome);
    }
    for agent in orch.agents_mut() {
        agent.end_episode();
    }

    orch.env_mut().reset_all();
    orch.run_slot_into(true, &mut outcome);
    let slices = orch.num_slices() as u64;
    for slot in 0..4 {
        let allocations = count_allocations(|| {
            orch.run_slot_into(true, &mut outcome);
        });
        assert!(
            allocations <= 12 * slices,
            "learning slot {slot} allocated {allocations} times (> {} budget)",
            12 * slices
        );
    }
}
