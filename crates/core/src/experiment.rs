//! Experiment plumbing shared by the benches, the examples and the
//! integration tests: evaluation of non-learning policies and a builder that
//! assembles a standard OnSlicing deployment (calibrated baselines, agents,
//! domain managers, orchestrator) in one call.

use onslicing_domains::DomainSet;
use onslicing_netsim::NetworkConfig;
use onslicing_slices::{Sla, SliceKind};

use crate::agent::{AgentConfig, OnSlicingAgent};
use crate::baselines::{RuleBasedBaseline, SlicePolicy};
use crate::env::{MultiSliceEnvironment, SliceEnvironment};
use crate::metrics::PolicyEvaluation;
use crate::orchestrator::{CoordinationMode, Orchestrator, OrchestratorConfig};

/// Evaluates a non-learning policy on one slice for `episodes` episodes.
pub fn evaluate_policy(
    policy: &dyn SlicePolicy,
    env: &mut SliceEnvironment,
    episodes: usize,
) -> PolicyEvaluation {
    assert!(episodes > 0, "at least one evaluation episode is required");
    let mut usage_sum = 0.0;
    let mut usage_count = 0usize;
    let mut violated = 0usize;
    let mut cost_sum = 0.0;
    for _ in 0..episodes {
        let mut state = env.reset();
        loop {
            let action = policy.act(&state);
            let r = env.step(&action);
            usage_sum += r.kpi.resource_usage_percent();
            usage_count += 1;
            state = r.next_state;
            if r.done {
                break;
            }
        }
        cost_sum += env.average_cost();
        if env.is_violated() {
            violated += 1;
        }
    }
    PolicyEvaluation {
        kind: env.kind(),
        episodes,
        avg_usage_percent: usage_sum / usage_count.max(1) as f64,
        violation_percent: 100.0 * violated as f64 / episodes as f64,
        avg_cost: cost_sum / episodes as f64,
    }
}

/// A standard three-slice OnSlicing deployment, parameterized by the agent
/// variant and the coordination mode.
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    network: NetworkConfig,
    agent_config: AgentConfig,
    coordination: CoordinationMode,
    episodes_per_epoch: usize,
    horizon: usize,
    baseline_buckets: usize,
    seed: u64,
}

impl DeploymentBuilder {
    /// Starts from the paper defaults: LTE testbed, full OnSlicing agent,
    /// modifier-based coordination, 96-slot episodes.
    pub fn new() -> Self {
        Self {
            network: NetworkConfig::testbed_default(),
            agent_config: AgentConfig::onslicing(),
            coordination: CoordinationMode::default(),
            episodes_per_epoch: 2,
            horizon: 96,
            baseline_buckets: 5,
            seed: 0,
        }
    }

    /// Uses a different network substrate (e.g. the 5G NR profile).
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Uses a different agent variant (e.g. [`AgentConfig::onrl`]).
    pub fn agent_config(mut self, config: AgentConfig) -> Self {
        self.agent_config = config;
        self
    }

    /// Uses a different over-request resolution mechanism.
    pub fn coordination(mut self, coordination: CoordinationMode) -> Self {
        self.coordination = coordination;
        self
    }

    /// Number of episodes per learning epoch.
    pub fn episodes_per_epoch(mut self, episodes: usize) -> Self {
        self.episodes_per_epoch = episodes.max(1);
        self
    }

    /// Episode horizon in slots (96 in the paper; tests use less).
    pub fn horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon.max(1);
        self
    }

    /// Runs the whole deployment with small policy networks and shortened
    /// training loops — the configuration used by tests, examples and the
    /// CI-scale experiment binaries.
    pub fn scaled_down(mut self, horizon: usize) -> Self {
        self.horizon = horizon.max(1);
        self.agent_config = self.agent_config.scaled_down(self.horizon);
        self.baseline_buckets = 4;
        self
    }

    /// Master seed controlling the deployment's randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Calibrates one rule-based baseline per slice kind.
    pub fn calibrate_baselines(&self) -> Vec<RuleBasedBaseline> {
        SliceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                RuleBasedBaseline::calibrate(
                    *kind,
                    &Sla::for_kind(*kind),
                    &self.network,
                    kind.default_peak_users_per_second(),
                    self.baseline_buckets,
                    self.seed.wrapping_add(1_000 + i as u64),
                )
            })
            .collect()
    }

    /// Builds the slice environments with the configured horizon.
    pub fn build_environments(&self) -> MultiSliceEnvironment {
        let envs = SliceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let trace_config = match kind {
                    SliceKind::Mar => onslicing_traffic::DiurnalTraceConfig::mar_default(),
                    SliceKind::Hvs => onslicing_traffic::DiurnalTraceConfig::hvs_default(),
                    SliceKind::Rdc => onslicing_traffic::DiurnalTraceConfig::rdc_default(),
                };
                SliceEnvironment::with_trace_config(
                    *kind,
                    Sla::for_kind(*kind),
                    self.network,
                    trace_config,
                    self.horizon,
                    self.seed.wrapping_add(i as u64),
                )
            })
            .collect();
        MultiSliceEnvironment::from_envs(envs)
    }

    /// Builds the complete orchestrator (environments, calibrated baselines,
    /// agents and domain managers).
    pub fn build(&self) -> Orchestrator {
        let baselines = self.calibrate_baselines();
        let env = self.build_environments();
        let mut agent_config = self.agent_config;
        agent_config.horizon = self.horizon;
        let agents = SliceKind::ALL
            .iter()
            .zip(baselines)
            .enumerate()
            .map(|(i, (kind, baseline))| {
                OnSlicingAgent::new(
                    *kind,
                    Sla::for_kind(*kind),
                    baseline,
                    agent_config,
                    self.seed.wrapping_add(10 + i as u64),
                )
            })
            .collect();
        Orchestrator::new(
            env,
            agents,
            DomainSet::testbed_default(),
            OrchestratorConfig {
                coordination: self.coordination,
                episodes_per_epoch: self.episodes_per_epoch,
            },
        )
    }
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FixedPolicy;
    use onslicing_slices::Action;

    #[test]
    fn evaluate_policy_reports_usage_and_violation() {
        let mut env = SliceEnvironment::new(SliceKind::Mar, NetworkConfig::testbed_default(), 9);
        let generous = FixedPolicy {
            action: Action::uniform(0.6),
        };
        let starved = FixedPolicy {
            action: Action::uniform(0.02),
        };
        let good = evaluate_policy(&generous, &mut env, 1);
        let bad = evaluate_policy(&starved, &mut env, 1);
        assert!(good.violation_percent < bad.violation_percent || bad.violation_percent == 100.0);
        assert!(good.avg_usage_percent > bad.avg_usage_percent);
        assert_eq!(good.kind, SliceKind::Mar);
    }

    #[test]
    fn builder_assembles_a_three_slice_deployment() {
        let orch = DeploymentBuilder::new().scaled_down(12).seed(3).build();
        assert_eq!(orch.agents().len(), 3);
        assert_eq!(orch.env().num_slices(), 3);
        assert_eq!(orch.env().envs()[0].horizon(), 12);
    }

    #[test]
    fn builder_respects_the_agent_variant() {
        let orch = DeploymentBuilder::new()
            .agent_config(AgentConfig::onslicing_nb())
            .scaled_down(8)
            .build();
        assert!(!orch.agents()[0].config().enable_switching);
    }

    #[test]
    #[should_panic(expected = "at least one evaluation episode")]
    fn zero_episode_evaluation_is_rejected() {
        let mut env = SliceEnvironment::new(SliceKind::Hvs, NetworkConfig::testbed_default(), 1);
        let p = FixedPolicy {
            action: Action::uniform(0.5),
        };
        let _ = evaluate_policy(&p, &mut env, 0);
    }
}
