//! The orchestration environment: one slice's interaction loop with the
//! simulated end-to-end network.
//!
//! A [`SliceEnvironment`] owns the slice's traffic trace, SLA and a
//! [`NetworkSimulator`], and exposes the gym-style `reset` / `step` loop the
//! agents learn on: every step corresponds to one 15-minute configuration
//! slot, an episode is one emulated day (96 slots, the paper's setting), and
//! the observation is the [`SliceState`] defined in §3 of the paper.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use onslicing_netsim::{NetworkConfig, NetworkSimulator};
use onslicing_slices::{Action, Sla, SliceKind, SliceState, SlotKpi};
use onslicing_traffic::{DiurnalTraceConfig, TraceGenerator, TrafficTrace, SLOTS_PER_DAY};

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepResult {
    /// The measurements the slice application reported for the slot.
    pub kpi: SlotKpi,
    /// The observation for the next slot.
    pub next_state: SliceState,
    /// Whether the episode (one emulated day) has ended.
    pub done: bool,
}

/// The per-slice orchestration environment.
///
/// Serializes every piece of dynamic state — the current traffic trace, the
/// generator, the simulator (channel + RNG), the slot cursor, the cost
/// accumulator and the environment's own RNG stream — so a deserialized
/// environment steps bit-for-bit like the original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceEnvironment {
    kind: SliceKind,
    sla: Sla,
    sim: NetworkSimulator,
    trace: TrafficTrace,
    trace_generator: TraceGenerator,
    horizon: usize,
    slot: usize,
    cumulative_cost: f64,
    state: SliceState,
    rng: ChaCha8Rng,
    /// Multiplier on the trace's arrival rates (traffic regime shifts and
    /// bursts injected by scenarios); persists across episode resets.
    traffic_scale: f64,
}

impl SliceEnvironment {
    /// Creates an environment with the paper's defaults for the given slice
    /// kind: its default SLA, its default traffic profile scaled to the
    /// testbed peak rate, the LTE testbed network and a 96-slot horizon.
    pub fn new(kind: SliceKind, network: NetworkConfig, seed: u64) -> Self {
        let trace_config = match kind {
            SliceKind::Mar => DiurnalTraceConfig::mar_default(),
            SliceKind::Hvs => DiurnalTraceConfig::hvs_default(),
            SliceKind::Rdc => DiurnalTraceConfig::rdc_default(),
        };
        Self::with_trace_config(
            kind,
            Sla::for_kind(kind),
            network,
            trace_config,
            SLOTS_PER_DAY,
            seed,
        )
    }

    /// Creates an environment with explicit SLA, traffic profile and horizon.
    pub fn with_trace_config(
        kind: SliceKind,
        sla: Sla,
        network: NetworkConfig,
        trace_config: DiurnalTraceConfig,
        horizon: usize,
        seed: u64,
    ) -> Self {
        assert!(horizon > 0, "the episode horizon must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace_generator = TraceGenerator::new(trace_config);
        let trace = trace_generator.generate(horizon, &mut rng);
        let sim = NetworkSimulator::new(network.with_seed(rng.gen()));
        let state = SliceState::initial(&sla, trace.rate_at(0) / trace.peak_rate().max(1e-9));
        Self {
            kind,
            sla,
            sim,
            trace,
            trace_generator,
            horizon,
            slot: 0,
            cumulative_cost: 0.0,
            state,
            rng,
            traffic_scale: 1.0,
        }
    }

    /// The slice kind this environment serves.
    pub fn kind(&self) -> SliceKind {
        self.kind
    }

    /// The slice's SLA.
    pub fn sla(&self) -> &Sla {
        &self.sla
    }

    /// Episode length in slots.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Index of the upcoming slot within the episode.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Cost accumulated so far in the current episode.
    pub fn cumulative_cost(&self) -> f64 {
        self.cumulative_cost
    }

    /// The current observation.
    pub fn state(&self) -> SliceState {
        self.state
    }

    /// The slice's traffic trace.
    pub fn trace(&self) -> &TrafficTrace {
        &self.trace
    }

    /// Arrival rate (users/s) of the given slot, including any active
    /// traffic-scale override.
    pub fn arrival_rate_at(&self, slot: usize) -> f64 {
        self.trace.rate_at(slot) * self.traffic_scale
    }

    /// Traffic of the given slot normalized by the trace peak (the `f_t`
    /// component of the observation). A scale override pushes this above 1
    /// — capped at 2 so the observation stays inside the state box — which
    /// is exactly how the agent "sees" a surge.
    pub fn normalized_traffic_at(&self, slot: usize) -> f64 {
        (self.trace.rate_at(slot) * self.traffic_scale / self.trace.peak_rate().max(1e-9)).min(2.0)
    }

    /// The current traffic-scale override (1.0 = the trace as generated).
    pub fn traffic_scale(&self) -> f64 {
        self.traffic_scale
    }

    /// Sets the traffic-scale override: every future slot's arrival rate is
    /// the trace rate times `scale`. Persists across episode resets (a
    /// regime shift), so bursts are modeled as a scale-up followed by a
    /// scale-down event.
    ///
    /// # Panics
    /// Panics if the scale is not positive and finite.
    pub fn set_traffic_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "traffic scale must be positive and finite"
        );
        self.traffic_scale = scale;
    }

    /// Replaces the slice's SLA mid-deployment (renegotiation). Takes effect
    /// from the next step: future per-slot costs and violation checks use
    /// the new terms; the cost already accumulated this episode stands.
    pub fn set_sla(&mut self, sla: Sla) {
        self.sla = sla;
    }

    /// Replaces the diurnal traffic profile (a long-horizon regime change,
    /// e.g. a new tenant mix). The remaining slots of the current episode
    /// keep the old trace; the next reset generates from the new profile.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn set_trace_config(&mut self, config: DiurnalTraceConfig) {
        self.trace_generator = TraceGenerator::new(config);
    }

    /// Starts a new episode: regenerates the day's traffic (new noise), picks
    /// fresh channel dynamics and resets the cost accumulator. Returns the
    /// initial observation.
    pub fn reset(&mut self) -> SliceState {
        self.trace = self.trace_generator.generate(self.horizon, &mut self.rng);
        self.sim.reseed(self.rng.gen());
        self.slot = 0;
        self.cumulative_cost = 0.0;
        self.state = SliceState::initial(&self.sla, self.normalized_traffic_at(0));
        self.state
    }

    /// Executes one configuration slot with the given (already enforced)
    /// action.
    pub fn step(&mut self, action: &Action) -> StepResult {
        let arrival = self.arrival_rate_at(self.slot);
        let kpi = self.sim.step_slice(self.kind, &self.sla, action, arrival);
        self.cumulative_cost += kpi.cost;
        self.slot += 1;
        let done = self.slot >= self.horizon;
        let next_traffic = self.normalized_traffic_at(self.slot % self.horizon);
        self.state = SliceState::from_kpi(
            &self.sla,
            self.slot % self.horizon,
            self.horizon,
            next_traffic,
            &kpi,
            self.cumulative_cost,
        );
        StepResult {
            kpi,
            next_state: self.state,
            done,
        }
    }

    /// Average per-slot cost of the episode so far (the violation metric is
    /// this value exceeding `C_max` at the end of the episode).
    pub fn average_cost(&self) -> f64 {
        if self.slot == 0 {
            0.0
        } else {
            self.cumulative_cost / self.slot as f64
        }
    }

    /// Whether the finished (or in-progress) episode violates the SLA.
    pub fn is_violated(&self) -> bool {
        self.sla.violates(self.average_cost())
    }

    /// Mutable access to the underlying simulator (used by the rule-based
    /// baseline's calibration grid search).
    pub fn simulator_mut(&mut self) -> &mut NetworkSimulator {
        &mut self.sim
    }
}

/// A bundle of per-slice environments sharing one infrastructure, in
/// [`SliceKind::ALL`] order by default.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSliceEnvironment {
    envs: Vec<SliceEnvironment>,
}

impl MultiSliceEnvironment {
    /// Creates the paper's three-slice setup (MAR, HVS, RDC) on the given
    /// network.
    pub fn testbed_default(network: NetworkConfig, seed: u64) -> Self {
        let envs = SliceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| SliceEnvironment::new(*kind, network, seed.wrapping_add(i as u64)))
            .collect();
        Self { envs }
    }

    /// Wraps an explicit set of environments (used for the slice-count
    /// scaling experiment of Fig. 19).
    pub fn from_envs(envs: Vec<SliceEnvironment>) -> Self {
        assert!(
            !envs.is_empty(),
            "at least one slice environment is required"
        );
        Self { envs }
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.envs.len()
    }

    /// Immutable access to the environments.
    pub fn envs(&self) -> &[SliceEnvironment] {
        &self.envs
    }

    /// Mutable access to the environments.
    pub fn envs_mut(&mut self) -> &mut [SliceEnvironment] {
        &mut self.envs
    }

    /// Adds a slice environment at the end of the bundle (mid-run slice
    /// admission).
    pub fn push_env(&mut self, env: SliceEnvironment) {
        self.envs.push(env);
    }

    /// Removes and returns the environment at `index` (mid-run slice
    /// teardown); later environments shift down.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn remove_env(&mut self, index: usize) -> SliceEnvironment {
        assert!(
            index < self.envs.len(),
            "slice environment index {index} out of bounds ({} slices)",
            self.envs.len()
        );
        self.envs.remove(index)
    }

    /// Resets every slice and returns the initial observations.
    pub fn reset_all(&mut self) -> Vec<SliceState> {
        self.envs.iter_mut().map(|e| e.reset()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(kind: SliceKind) -> SliceEnvironment {
        SliceEnvironment::new(kind, NetworkConfig::testbed_default(), 42)
    }

    #[test]
    fn episode_runs_for_the_configured_horizon() {
        let mut e = env(SliceKind::Mar);
        assert_eq!(e.horizon(), 96);
        e.reset();
        let mut steps = 0;
        loop {
            let r = e.step(&Action::uniform(0.5));
            steps += 1;
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 96);
        assert_eq!(e.slot(), 96);
    }

    #[test]
    fn cumulative_cost_accumulates_and_resets() {
        let mut e = env(SliceKind::Mar);
        e.reset();
        for _ in 0..10 {
            e.step(&Action::uniform(0.02)); // starved -> positive cost
        }
        assert!(e.cumulative_cost() > 0.0);
        assert!(e.average_cost() > 0.0);
        e.reset();
        assert_eq!(e.cumulative_cost(), 0.0);
        assert_eq!(e.slot(), 0);
    }

    #[test]
    fn generous_allocation_keeps_the_episode_violation_free() {
        let mut e = env(SliceKind::Hvs);
        e.reset();
        let mut action = Action::uniform(0.5);
        action.ul_mcs_offset = 0.0;
        action.dl_mcs_offset = 0.0;
        loop {
            if e.step(&action).done {
                break;
            }
        }
        assert!(
            !e.is_violated(),
            "average cost {} should satisfy the SLA",
            e.average_cost()
        );
    }

    #[test]
    fn observations_track_the_slot_and_traffic() {
        let mut e = env(SliceKind::Mar);
        let s0 = e.reset();
        assert_eq!(s0.slot_fraction, 0.0);
        let r = e.step(&Action::uniform(0.4));
        assert!((r.next_state.slot_fraction - 1.0 / 96.0).abs() < 1e-9);
        assert!(r.next_state.traffic >= 0.0 && r.next_state.traffic <= 2.0);
        assert!(r.next_state.is_finite());
    }

    #[test]
    fn reset_regenerates_traffic_noise() {
        let mut e = env(SliceKind::Hvs);
        e.reset();
        let first: Vec<f64> = e.trace().rates().to_vec();
        e.reset();
        let second: Vec<f64> = e.trace().rates().to_vec();
        assert_ne!(first, second, "per-episode traffic should differ in noise");
    }

    #[test]
    fn multi_slice_environment_has_one_env_per_kind() {
        let mut m = MultiSliceEnvironment::testbed_default(NetworkConfig::testbed_default(), 1);
        assert_eq!(m.num_slices(), 3);
        let states = m.reset_all();
        assert_eq!(states.len(), 3);
        let kinds: Vec<SliceKind> = m.envs().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, SliceKind::ALL.to_vec());
    }

    #[test]
    #[should_panic(expected = "at least one slice environment")]
    fn empty_multi_slice_environment_is_rejected() {
        let _ = MultiSliceEnvironment::from_envs(vec![]);
    }

    #[test]
    fn traffic_scale_raises_arrivals_and_the_observation() {
        let mut e = env(SliceKind::Mar);
        e.reset();
        let base_rate = e.arrival_rate_at(3);
        let base_traffic = e.normalized_traffic_at(3);
        e.set_traffic_scale(1.5);
        assert!((e.arrival_rate_at(3) - 1.5 * base_rate).abs() < 1e-12);
        let surged = e.normalized_traffic_at(3);
        assert!(surged > base_traffic && surged <= 2.0);
        // The override survives an episode reset (regime shift, not noise).
        e.reset();
        assert_eq!(e.traffic_scale(), 1.5);
        // Scaling back down restores the original rates.
        e.set_traffic_scale(1.0);
        assert_eq!(e.traffic_scale(), 1.0);
    }

    #[test]
    fn sla_renegotiation_changes_future_violation_checks() {
        let mut e = env(SliceKind::Hvs);
        e.reset();
        for _ in 0..4 {
            e.step(&Action::uniform(0.02)); // starved -> high cost
        }
        assert!(e.is_violated());
        // Loosen the SLA until the running average is acceptable.
        let generous = Sla::for_kind(SliceKind::Hvs).with_cost_threshold(1.0);
        e.set_sla(generous);
        assert!(!e.is_violated());
        assert_eq!(e.sla().cost_threshold, 1.0);
    }

    #[test]
    fn trace_config_swap_takes_effect_on_the_next_reset() {
        let mut e = env(SliceKind::Mar);
        e.reset();
        let mar_peak = e.trace().peak_rate();
        e.set_trace_config(DiurnalTraceConfig::mar_default().with_peak_rate(50.0));
        // Current episode keeps the old trace.
        assert_eq!(e.trace().peak_rate(), mar_peak);
        e.reset();
        assert!((e.trace().peak_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn environments_can_join_and_leave_the_bundle() {
        let mut m = MultiSliceEnvironment::testbed_default(NetworkConfig::testbed_default(), 1);
        m.push_env(env(SliceKind::Mar));
        assert_eq!(m.num_slices(), 4);
        let removed = m.remove_env(1);
        assert_eq!(removed.kind(), SliceKind::Hvs);
        assert_eq!(m.num_slices(), 3);
        let kinds: Vec<SliceKind> = m.envs().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, vec![SliceKind::Mar, SliceKind::Rdc, SliceKind::Mar]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn removing_a_missing_environment_panics() {
        let mut m = MultiSliceEnvironment::testbed_default(NetworkConfig::testbed_default(), 1);
        let _ = m.remove_env(7);
    }
}
