//! The OnSlicing agent: one individualized safe online learner per slice.
//!
//! Each agent bundles the four policies of Fig. 2 of the paper:
//!
//! * `π_θ` — the learning policy (PPO actor-critic, [`onslicing_rl::PpoAgent`]);
//! * `π_b` — the rule-based baseline policy it imitates offline and switches
//!   to proactively ([`RuleBasedBaseline`]);
//! * `π_φ` — the variational cost-value estimator behind the switching rule
//!   (Eq. 6–8, [`CostValueEstimator`]);
//! * `π_a` — the action modifier that reacts to the domain managers'
//!   coordinating parameters (Eq. 13, [`ActionModifier`]).
//!
//! [`AgentConfig`] exposes every mechanism as a switch so that the paper's
//! ablations (OnSlicing-NB, OnSlicing-NE, estimator/modifier noise, OnRL,
//! the unsafe fixed-penalty DRL of Fig. 3) are just different configurations
//! of the same agent.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use onslicing_nn::PolicySample;
use onslicing_rl::{
    behavior_clone, BcConfig, CostEstimatorConfig, CostValueEstimator, Demonstration,
    LagrangianMultiplier, PpoAgent, PpoConfig, PpoUpdateScratch, PpoUpdateStats, RolloutBuffer,
    Transition,
};
use onslicing_slices::{Action, Sla, SliceKind, SliceState, SlotKpi, ACTION_DIM, STATE_DIM};

use crate::baselines::{RuleBasedBaseline, SlicePolicy};
use crate::env::SliceEnvironment;
use crate::metrics::SliceEpisodeSummary;
use crate::modifier::{ActionModifier, ModifierConfig};

/// Configuration of one OnSlicing agent; the paper's ablations are presets
/// over these switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// PPO hyper-parameters for policy `π_θ`.
    pub ppo: PpoConfig,
    /// Behavior-cloning hyper-parameters for the offline imitation stage.
    pub bc: BcConfig,
    /// Hyper-parameters of the variational cost-value estimator `π_φ`.
    pub estimator: CostEstimatorConfig,
    /// Configuration of the action modifier `π_a`.
    pub modifier: ModifierConfig,
    /// Whether to imitate the baseline offline before going online (§5).
    pub enable_imitation: bool,
    /// Whether the proactive baseline switching mechanism is active (§3).
    pub enable_switching: bool,
    /// Whether the switching rule uses the cost-value estimator; when false
    /// the rule degenerates to "switch once the cumulative cost itself
    /// exceeds the budget" (the OnSlicing-NE ablation).
    pub enable_estimator: bool,
    /// Standard deviation of Gaussian noise added to the estimator output
    /// (the "OnSlicing Est. Noise" robustness ablation).
    pub estimator_noise_std: f64,
    /// Whether the SLA penalty weight adapts via the Lagrangian dual update
    /// (Eq. 5); when false a fixed penalty weight is used (the unsafe DRL of
    /// Fig. 3).
    pub constraint_aware: bool,
    /// Penalty weight used when `constraint_aware` is false.
    pub fixed_penalty_weight: f64,
    /// Dual step size `ε` of the Lagrangian update.
    pub lagrangian_step: f64,
    /// Risk-preference factor `η` of the switching rule (Eq. 8).
    pub risk_factor_eta: f64,
    /// Episode length `T` in slots.
    pub horizon: usize,
    /// Use small policy networks instead of the paper's 128×64×32 trunks
    /// (keeps tests and CI-scale experiments fast; the algorithms are
    /// identical).
    pub use_small_networks: bool,
}

impl AgentConfig {
    /// The full OnSlicing agent (all mechanisms on).
    ///
    /// Exploration noise is kept small (σ = 0.03 on the normalized action
    /// box): the whole point of the system is a *smooth, safe* online
    /// improvement from the imitated baseline, not aggressive exploration —
    /// the OnRL and unsafe-DRL presets keep PPO's default, larger noise,
    /// which is precisely why they violate SLAs during learning (Fig. 3,
    /// Table 1).
    pub fn onslicing() -> Self {
        Self {
            ppo: PpoConfig {
                initial_std: 0.03,
                ..PpoConfig::default()
            },
            bc: BcConfig::default(),
            estimator: CostEstimatorConfig::default(),
            modifier: ModifierConfig::default(),
            enable_imitation: true,
            enable_switching: true,
            enable_estimator: true,
            estimator_noise_std: 0.0,
            constraint_aware: true,
            fixed_penalty_weight: 1.0,
            lagrangian_step: 10.0,
            risk_factor_eta: 2.0,
            horizon: 96,
            use_small_networks: false,
        }
    }

    /// OnSlicing-NB: no baseline switching at all.
    pub fn onslicing_nb() -> Self {
        Self {
            enable_switching: false,
            ..Self::onslicing()
        }
    }

    /// OnSlicing-NE: switching without the cost-value estimator (reactive,
    /// based on the cumulative cost alone).
    pub fn onslicing_ne() -> Self {
        Self {
            enable_estimator: false,
            ..Self::onslicing()
        }
    }

    /// OnSlicing with a noisy estimator (robustness ablation of Table 2).
    pub fn onslicing_estimator_noise(noise_std: f64) -> Self {
        Self {
            estimator_noise_std: noise_std,
            ..Self::onslicing()
        }
    }

    /// OnSlicing with a noisy action modifier (robustness ablation of
    /// Table 3).
    pub fn onslicing_modifier_noise(noise_std: f64) -> Self {
        let mut cfg = Self::onslicing();
        cfg.modifier.noise_std = noise_std;
        cfg
    }

    /// The OnRL-style comparator: learns from scratch (no imitation), keeps
    /// the constraint-aware reward shaping and a reactive backup switch, and
    /// relies on projection for over-requests (set at the orchestrator).
    /// Exploration uses PPO's default (large) noise — the learning-from-
    /// scratch behaviour the paper compares against.
    pub fn onrl() -> Self {
        Self {
            ppo: PpoConfig::default(),
            enable_imitation: false,
            enable_estimator: false,
            ..Self::onslicing()
        }
    }

    /// The unsafe DRL of Fig. 3: fixed penalty weight, no switching, no
    /// imitation, default (large) exploration noise.
    pub fn unsafe_drl() -> Self {
        Self {
            ppo: PpoConfig::default(),
            enable_imitation: false,
            enable_switching: false,
            enable_estimator: false,
            constraint_aware: false,
            ..Self::onslicing()
        }
    }

    /// Shrinks every training knob so the configuration runs in seconds
    /// (small networks, short horizon, few epochs); used by tests, examples
    /// and the CI-scale experiment binaries.
    pub fn scaled_down(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self.use_small_networks = true;
        self.ppo.epochs = 4;
        self.ppo.minibatch_size = 32;
        self.bc.epochs = 60;
        self.estimator.epochs = 40;
        self
    }
}

/// The outcome of one per-slot decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The action proposed by the agent (before coordination).
    pub action: Action,
    /// Whether the baseline policy produced it (proactive switching).
    pub used_baseline: bool,
    /// The stochastic policy sample when `π_θ` acted (None when the baseline
    /// did, or when acting deterministically).
    pub sample: Option<PolicySample>,
    /// The switching statistic `E_t` that was compared against the episode
    /// budget.
    pub switching_statistic: f64,
}

/// Report of the offline pre-training stage (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainReport {
    /// Behavior-cloning loss after each epoch (Eq. 15) — the offline
    /// imitation curve of Fig. 10.
    pub bc_losses: Vec<f64>,
    /// Cost-value estimator regression error after each epoch.
    pub estimator_errors: Vec<f64>,
    /// Average resource usage (percent) of the baseline episodes used for
    /// the demonstrations.
    pub baseline_usage_percent: f64,
    /// Number of demonstration transitions collected.
    pub num_demonstrations: usize,
}

/// One individualized OnSlicing agent.
///
/// Serializes its complete learning state — policy/critic/estimator weights
/// and Adam moments, the Lagrangian multiplier, the rollout buffer, the
/// per-episode accumulators and the agent's RNG stream — so a deserialized
/// agent decides, records and updates exactly like the original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnSlicingAgent {
    kind: SliceKind,
    sla: Sla,
    config: AgentConfig,
    ppo: PpoAgent,
    baseline: RuleBasedBaseline,
    estimator: CostValueEstimator,
    lagrangian: LagrangianMultiplier,
    modifier: ActionModifier,
    buffer: RolloutBuffer,
    rng: ChaCha8Rng,
    // Per-episode state.
    switched: bool,
    episode_costs: Vec<f64>,
    episode_usages: Vec<f64>,
    pending_bootstrap: Option<f64>,
    /// Whether any π_θ transition was recorded this episode (evaluation
    /// episodes leave this false so they do not perturb the Lagrangian).
    learned_this_episode: bool,
}

impl OnSlicingAgent {
    /// Creates an agent for one slice around an already-calibrated baseline.
    pub fn new(
        kind: SliceKind,
        sla: Sla,
        baseline: RuleBasedBaseline,
        config: AgentConfig,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ppo = if config.use_small_networks {
            PpoAgent::new_small(STATE_DIM, ACTION_DIM, config.ppo, &mut rng)
        } else {
            PpoAgent::new(STATE_DIM, ACTION_DIM, config.ppo, &mut rng)
        };
        let estimator = CostValueEstimator::new(STATE_DIM, config.estimator, &mut rng);
        let lagrangian = LagrangianMultiplier::new(1.0, config.lagrangian_step, sla.cost_threshold);
        Self {
            kind,
            sla,
            config,
            ppo,
            baseline,
            estimator,
            lagrangian,
            modifier: ActionModifier::new(config.modifier),
            buffer: RolloutBuffer::new(),
            rng,
            switched: false,
            episode_costs: Vec::new(),
            episode_usages: Vec::new(),
            pending_bootstrap: None,
            learned_this_episode: false,
        }
    }

    /// The slice this agent orchestrates.
    pub fn kind(&self) -> SliceKind {
        self.kind
    }

    /// The SLA the agent currently enforces.
    pub fn sla(&self) -> &Sla {
        &self.sla
    }

    /// Replaces the agent's SLA (renegotiation): the switching budget and
    /// the violation check follow the new terms from the next decision; the
    /// learned Lagrangian multiplier is kept so the dual state carries over.
    pub fn set_sla(&mut self, sla: Sla) {
        self.sla = sla;
        self.lagrangian.set_cost_threshold(sla.cost_threshold);
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The current Lagrangian multiplier `λ`.
    pub fn lambda(&self) -> f64 {
        self.lagrangian.lambda()
    }

    /// The agent's baseline policy (π_b).
    pub fn baseline(&self) -> &RuleBasedBaseline {
        &self.baseline
    }

    /// Whether the agent has switched to the baseline in the current episode.
    pub fn has_switched(&self) -> bool {
        self.switched
    }

    /// Offline pre-training (§5): runs the baseline policy for
    /// `num_episodes` in the environment, clones its behaviour into `π_θ`
    /// (Eq. 15) and fits the cost-value estimator `π_φ` on its cost-to-go.
    pub fn offline_pretrain(
        &mut self,
        env: &mut SliceEnvironment,
        num_episodes: usize,
    ) -> PretrainReport {
        let mut demos: Vec<Demonstration> = Vec::new();
        let mut cost_dataset = Vec::new();
        let mut usage_sum = 0.0;
        let mut usage_count = 0usize;
        for _ in 0..num_episodes {
            let mut state = env.reset();
            let mut episode_states = Vec::new();
            let mut episode_costs = Vec::new();
            loop {
                let action = self.baseline.act(&state);
                episode_states.push(state.to_vec());
                demos.push(Demonstration {
                    state: state.to_vec(),
                    action: action.to_vec(),
                });
                let r = env.step(&action);
                episode_costs.push(r.kpi.cost);
                usage_sum += r.kpi.resource_usage_percent();
                usage_count += 1;
                state = r.next_state;
                if r.done {
                    break;
                }
            }
            cost_dataset.extend(CostValueEstimator::cost_to_go_dataset(
                &episode_states,
                &episode_costs,
            ));
        }
        let bc_losses = if self.config.enable_imitation && !demos.is_empty() {
            behavior_clone(
                self.ppo.policy_mut(),
                &demos,
                &self.config.bc,
                &mut self.rng,
            )
        } else {
            Vec::new()
        };
        let estimator_errors = if self.config.enable_estimator && !cost_dataset.is_empty() {
            self.estimator.fit(&cost_dataset, &mut self.rng)
        } else {
            Vec::new()
        };
        PretrainReport {
            bc_losses,
            estimator_errors,
            baseline_usage_percent: if usage_count == 0 {
                0.0
            } else {
                usage_sum / usage_count as f64
            },
            num_demonstrations: demos.len(),
        }
    }

    /// The proactive switching statistic `E_t` of Eq. 8: the cumulative cost
    /// plus (when the estimator is enabled) the predicted mean and η-scaled
    /// standard deviation of the baseline's remaining episode cost.
    pub fn switching_statistic(&mut self, state: &SliceState, cumulative_cost: f64) -> f64 {
        self.switching_statistic_row(&state.to_vec(), cumulative_cost)
    }

    /// [`OnSlicingAgent::switching_statistic`] over an already-flattened
    /// observation row ([`SliceState::write_row`] layout). The fused slot path
    /// feeds rows straight from the gathered cell batch so the statistic costs
    /// no allocation.
    pub fn switching_statistic_row(&mut self, state_row: &[f64], cumulative_cost: f64) -> f64 {
        if !self.config.enable_estimator {
            return cumulative_cost;
        }
        let mut prediction = self.estimator.predict(state_row, &mut self.rng);
        if self.config.estimator_noise_std > 0.0 {
            prediction.mean += self.config.estimator_noise_std * standard_normal(&mut self.rng);
            prediction.mean = prediction.mean.max(0.0);
        }
        // A small floor on the epistemic uncertainty keeps the switching rule
        // conservative even when the estimator is (over-)confident, so that a
        // triggered switch still leaves the episode strictly under its budget
        // rather than exactly on it.
        let std = prediction.std.max(0.05);
        cumulative_cost + prediction.mean + self.config.risk_factor_eta * std
    }

    /// Produces the agent's orchestration decision for the upcoming slot
    /// (before distributed coordination).
    ///
    /// `deterministic` selects the policy mean instead of sampling (used for
    /// test-time evaluation).
    pub fn decide(
        &mut self,
        state: &SliceState,
        cumulative_cost: f64,
        deterministic: bool,
    ) -> Decision {
        let statistic = if self.config.enable_switching {
            self.switching_statistic(state, cumulative_cost)
        } else {
            cumulative_cost
        };
        if self.config.enable_switching && !self.switched {
            let budget = self.sla.episode_cost_budget(self.config.horizon);
            if statistic >= budget {
                self.switched = true;
            }
        }
        if self.switched {
            return Decision {
                action: self.baseline.act(state),
                used_baseline: true,
                sample: None,
                switching_statistic: statistic,
            };
        }
        if deterministic {
            let action = Action::from_vec(&self.ppo.act_deterministic(&state.to_vec()));
            return Decision {
                action,
                used_baseline: false,
                sample: None,
                switching_statistic: statistic,
            };
        }
        let sample = self.ppo.act(&state.to_vec(), &mut self.rng);
        Decision {
            action: Action::from_vec(&sample.action),
            used_baseline: false,
            sample: Some(sample),
            switching_statistic: statistic,
        }
    }

    /// First phase of the fused (cell-batched) slot decide: draws the
    /// switching statistic — consuming exactly the RNG draws
    /// [`OnSlicingAgent::decide`] would — and performs the proactive switch
    /// classification. Returns the statistic; whether the baseline acts is
    /// visible via [`OnSlicingAgent::has_switched`].
    ///
    /// The orchestrator runs this for every agent, then computes all policy
    /// means in one fused cell batch (no RNG involved), then calls
    /// [`OnSlicingAgent::decide_finish`] per agent. Because every agent owns
    /// an independent RNG stream, the phase split cannot change any draw.
    pub fn decide_phase_switch(&mut self, state_row: &[f64], cumulative_cost: f64) -> f64 {
        let statistic = if self.config.enable_switching {
            self.switching_statistic_row(state_row, cumulative_cost)
        } else {
            cumulative_cost
        };
        if self.config.enable_switching && !self.switched {
            let budget = self.sla.episode_cost_budget(self.config.horizon);
            if statistic >= budget {
                self.switched = true;
            }
        }
        statistic
    }

    /// Last phase of the fused slot decide: builds the decision from the
    /// fused policy-mean row. `statistic` must come from the matching
    /// [`OnSlicingAgent::decide_phase_switch`] call, and `mean` must carry
    /// the bits `ppo().policy().mean_action(&state.to_vec())` would produce
    /// (the fused cell batch guarantees this). The composition
    /// `decide_phase_switch` → `decide_finish` is bit-identical to
    /// [`OnSlicingAgent::decide`] on a shared RNG stream.
    pub fn decide_finish(
        &mut self,
        state: &SliceState,
        statistic: f64,
        mean: &[f64],
        deterministic: bool,
    ) -> Decision {
        if self.switched {
            return Decision {
                action: self.baseline.act(state),
                used_baseline: true,
                sample: None,
                switching_statistic: statistic,
            };
        }
        if deterministic {
            return Decision {
                action: Action::from_vec(mean),
                used_baseline: false,
                sample: None,
                switching_statistic: statistic,
            };
        }
        let sample = self.ppo.act_with_mean(mean, &mut self.rng);
        Decision {
            action: Action::from_vec(&sample.action),
            used_baseline: false,
            sample: Some(sample),
            switching_statistic: statistic,
        }
    }

    /// Read access to the PPO learner (the fused cell batch reads the policy
    /// mean network and the critic through this).
    pub fn ppo(&self) -> &PpoAgent {
        &self.ppo
    }

    /// Applies the action modifier `π_a` to an action under the current
    /// coordinating parameters.
    pub fn modify(&mut self, action: &Action, betas: &[f64; 6]) -> Action {
        self.modifier.modify(action, betas, &mut self.rng)
    }

    /// The constraint-shaped learning reward for one slot: the normalized
    /// Eq. 9 reward minus the (adaptive or fixed) SLA penalty.
    pub fn shaped_reward(&self, kpi: &SlotKpi) -> f64 {
        let reward = -kpi.resource_usage / 6.0;
        if self.config.constraint_aware {
            self.lagrangian.shaped_reward(reward, kpi.cost)
        } else {
            reward - self.config.fixed_penalty_weight * kpi.cost
        }
    }

    /// Records the outcome of a slot.
    ///
    /// `state` is the observation the decision was made from, `decision` the
    /// agent's own proposal, `executed` the action actually enforced after
    /// coordination, and `kpi` the resulting measurements.
    pub fn record(
        &mut self,
        state: &SliceState,
        decision: &Decision,
        executed: &Action,
        kpi: &SlotKpi,
        done: bool,
    ) {
        self.episode_costs.push(kpi.cost);
        self.episode_usages.push(kpi.resource_usage_percent());
        match &decision.sample {
            Some(sample) => {
                self.learned_this_episode = true;
                let state_vec = state.to_vec();
                let value = self.ppo.value(&state_vec);
                self.buffer.push(Transition {
                    state: state_vec,
                    raw_action: sample.raw_action.clone(),
                    action: executed.to_vec(),
                    log_prob: sample.log_prob,
                    reward: self.shaped_reward(kpi),
                    cost: kpi.cost,
                    value,
                    done,
                });
            }
            None => {
                // First baseline slot after a switch: remember the critic's
                // estimate of the remaining (shaped) return so the truncated
                // episode can be bootstrapped (§3, "Smooth Policy
                // Improvement").
                if decision.used_baseline && self.pending_bootstrap.is_none() {
                    self.pending_bootstrap = Some(self.ppo.value(&state.to_vec()));
                }
            }
        }
    }

    /// [`OnSlicingAgent::record`] with the critic value of `state` already
    /// computed (the fused cell batch evaluates every agent's critic in one
    /// layer-major sweep). `value` must carry the bits
    /// `ppo().value(&state.to_vec())` would produce; the critic forward is
    /// pure, so the fused value is bit-identical and this method records
    /// exactly what `record` would.
    pub fn record_with_value(
        &mut self,
        state: &SliceState,
        decision: &Decision,
        executed: &Action,
        kpi: &SlotKpi,
        done: bool,
        value: f64,
    ) {
        self.episode_costs.push(kpi.cost);
        self.episode_usages.push(kpi.resource_usage_percent());
        match &decision.sample {
            Some(sample) => {
                self.learned_this_episode = true;
                self.buffer.push(Transition {
                    state: state.to_vec(),
                    raw_action: sample.raw_action.clone(),
                    action: executed.to_vec(),
                    log_prob: sample.log_prob,
                    reward: self.shaped_reward(kpi),
                    cost: kpi.cost,
                    value,
                    done,
                });
            }
            None => {
                if decision.used_baseline && self.pending_bootstrap.is_none() {
                    self.pending_bootstrap = Some(value);
                }
            }
        }
    }

    /// Closes the episode: computes the GAE targets of the effective (π_θ)
    /// transitions, performs the Lagrangian dual update (Eq. 5) and returns
    /// the episode summary.
    pub fn end_episode(&mut self) -> SliceEpisodeSummary {
        let bootstrap = self.pending_bootstrap.take().unwrap_or(0.0);
        self.buffer
            .finish_episode(bootstrap, self.config.ppo.gamma, self.config.ppo.gae_lambda);
        let avg_cost = if self.episode_costs.is_empty() {
            0.0
        } else {
            self.episode_costs.iter().sum::<f64>() / self.episode_costs.len() as f64
        };
        let avg_usage = if self.episode_usages.is_empty() {
            0.0
        } else {
            self.episode_usages.iter().sum::<f64>() / self.episode_usages.len() as f64
        };
        if self.config.constraint_aware && self.learned_this_episode {
            self.lagrangian.update(avg_cost);
        }
        let summary = SliceEpisodeSummary {
            kind: self.kind,
            avg_cost,
            violated: self.sla.violates(avg_cost),
            avg_usage_percent: avg_usage,
            switched_to_baseline: self.switched,
        };
        self.episode_costs.clear();
        self.episode_usages.clear();
        self.switched = false;
        self.learned_this_episode = false;
        summary
    }

    /// Whether any learning transition was recorded in the current episode.
    pub fn learned_this_episode(&self) -> bool {
        self.learned_this_episode
    }

    /// Runs one PPO update on the transitions accumulated since the last
    /// update and clears the rollout buffer.
    pub fn update_policy(&mut self) -> PpoUpdateStats {
        let stats = self.ppo.update(&self.buffer, &mut self.rng);
        self.buffer.clear();
        stats
    }

    /// [`OnSlicingAgent::update_policy`] with a caller-owned scratch: all
    /// same-shaped agents of a cell can share one set of update buffers
    /// (the minibatch matrices keep their dimensions from agent to agent,
    /// so the fused epoch reallocates nothing). Bit-identical to
    /// `update_policy`.
    pub fn update_policy_with_scratch(&mut self, scratch: &mut PpoUpdateScratch) -> PpoUpdateStats {
        let stats = self
            .ppo
            .update_with_scratch(&self.buffer, &mut self.rng, scratch);
        self.buffer.clear();
        stats
    }

    /// Number of effective (π_θ) transitions waiting in the rollout buffer.
    pub fn pending_transitions(&self) -> usize {
        self.buffer.num_ready()
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_netsim::NetworkConfig;

    fn quick_agent(kind: SliceKind, config: AgentConfig) -> (OnSlicingAgent, SliceEnvironment) {
        let sla = Sla::for_kind(kind);
        let network = NetworkConfig::testbed_default();
        let baseline = RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            4,
            11,
        );
        let env = SliceEnvironment::new(kind, network, 17);
        let horizon = env.horizon();
        let agent = OnSlicingAgent::new(kind, sla, baseline, config.scaled_down(horizon), 3);
        (agent, env)
    }

    #[test]
    fn variant_presets_toggle_the_expected_mechanisms() {
        assert!(AgentConfig::onslicing().enable_switching);
        assert!(!AgentConfig::onslicing_nb().enable_switching);
        assert!(!AgentConfig::onslicing_ne().enable_estimator);
        assert!(AgentConfig::onslicing_ne().enable_switching);
        assert!(AgentConfig::onslicing_estimator_noise(1.0).estimator_noise_std > 0.0);
        assert!(
            AgentConfig::onslicing_modifier_noise(1.0)
                .modifier
                .noise_std
                > 0.0
        );
        assert!(!AgentConfig::onrl().enable_imitation);
        assert!(!AgentConfig::unsafe_drl().constraint_aware);
    }

    #[test]
    fn pretraining_clones_the_baseline_and_reduces_the_bc_loss() {
        let (mut agent, mut env) = quick_agent(SliceKind::Hvs, AgentConfig::onslicing());
        let report = agent.offline_pretrain(&mut env, 2);
        assert_eq!(report.num_demonstrations, 2 * env.horizon());
        assert!(report.bc_losses.len() >= 2);
        assert!(
            report.bc_losses.last().unwrap() < report.bc_losses.first().unwrap(),
            "BC loss should decrease"
        );
        assert!(!report.estimator_errors.is_empty());
        assert!(report.baseline_usage_percent > 0.0);
    }

    #[test]
    fn pretrained_agent_behaves_like_the_baseline() {
        let (mut agent, mut env) = quick_agent(SliceKind::Mar, AgentConfig::onslicing());
        agent.offline_pretrain(&mut env, 2);
        let state = env.reset();
        let d = agent.decide(&state, 0.0, true);
        let baseline_action = agent.baseline().act(&state);
        let distance = d.action.squared_distance(&baseline_action);
        assert!(
            distance < 0.5,
            "cloned action too far from the baseline: {distance}"
        );
    }

    #[test]
    fn switching_hands_the_episode_to_the_baseline_when_the_budget_is_exhausted() {
        let (mut agent, mut env) = quick_agent(SliceKind::Mar, AgentConfig::onslicing_ne());
        let state = env.reset();
        // Cumulative cost way beyond the budget forces the switch (NE rule).
        let budget = Sla::for_kind(SliceKind::Mar).episode_cost_budget(env.horizon());
        let d = agent.decide(&state, budget + 1.0, false);
        assert!(d.used_baseline);
        assert!(agent.has_switched());
        // And it keeps using the baseline for the rest of the episode.
        let d2 = agent.decide(&state, 0.0, false);
        assert!(d2.used_baseline);
        let summary = agent.end_episode();
        assert!(summary.switched_to_baseline || summary.avg_cost == 0.0);
        assert!(
            !agent.has_switched(),
            "switch flag must reset at episode end"
        );
    }

    #[test]
    fn no_switching_variant_never_uses_the_baseline() {
        let (mut agent, mut env) = quick_agent(SliceKind::Mar, AgentConfig::onslicing_nb());
        let state = env.reset();
        let d = agent.decide(&state, 1_000.0, false);
        assert!(!d.used_baseline);
    }

    #[test]
    fn shaped_reward_penalizes_cost_more_as_lambda_grows() {
        let (mut agent, mut env) = quick_agent(SliceKind::Hvs, AgentConfig::onslicing());
        env.reset();
        let r = env.step(&Action::uniform(0.02));
        let before = agent.shaped_reward(&r.kpi);
        // Repeated violating *learning* episodes raise lambda.
        for _ in 0..3 {
            agent.episode_costs.push(0.5);
            agent.learned_this_episode = true;
            agent.end_episode();
        }
        let after = agent.shaped_reward(&r.kpi);
        assert!(
            after < before,
            "penalty should grow with lambda: {before} -> {after}"
        );
    }

    #[test]
    fn online_loop_records_effective_transitions_and_updates() {
        let (mut agent, mut env) = quick_agent(SliceKind::Hvs, AgentConfig::onslicing());
        agent.offline_pretrain(&mut env, 1);
        let mut state = env.reset();
        loop {
            let d = agent.decide(&state, env.cumulative_cost(), false);
            let executed = d.action;
            let r = env.step(&executed);
            agent.record(&state, &d, &executed, &r.kpi, r.done);
            state = r.next_state;
            if r.done {
                break;
            }
        }
        let summary = agent.end_episode();
        assert!(summary.avg_usage_percent > 0.0);
        assert!(agent.pending_transitions() > 0);
        let stats = agent.update_policy();
        assert!(stats.num_transitions > 0);
        assert_eq!(agent.pending_transitions(), 0);
    }

    #[test]
    fn estimator_noise_perturbs_the_switching_statistic() {
        let (mut agent, mut env) =
            quick_agent(SliceKind::Mar, AgentConfig::onslicing_estimator_noise(1.0));
        agent.offline_pretrain(&mut env, 1);
        let state = env.reset();
        let a = agent.switching_statistic(&state, 0.0);
        let b = agent.switching_statistic(&state, 0.0);
        assert_ne!(a, b, "noisy estimator should vary between calls");
    }
}
