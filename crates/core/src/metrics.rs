//! Metric records shared by the experiment runners and benches.
//!
//! The paper reports two headline metrics (§7.1): the **average resource
//! usage** (the mean of Eq. 9 over all slices, as a percentage of the six
//! counted dimensions) and the **average SLA violation** (the percentage of
//! slice-episodes whose episode-average cost exceeded `C_max`). Everything in
//! this module aggregates per-slot KPIs into those two numbers, plus the
//! interaction count of the distributed coordination mechanism (Table 3 /
//! Fig. 19).

use serde::{Deserialize, Serialize};

use onslicing_slices::SliceKind;

/// Summary of one slice over one episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceEpisodeSummary {
    /// Which slice.
    pub kind: SliceKind,
    /// Episode-average per-slot cost.
    pub avg_cost: f64,
    /// Whether the episode violated the SLA (`avg_cost > C_max`).
    pub violated: bool,
    /// Episode-average resource usage in percent (0–100).
    pub avg_usage_percent: f64,
    /// Whether the agent switched to the baseline policy during the episode.
    pub switched_to_baseline: bool,
}

/// Summary of one multi-slice episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// One summary per slice.
    pub slices: Vec<SliceEpisodeSummary>,
    /// Average number of agent↔domain-manager coordination interactions per
    /// slot.
    pub avg_interactions: f64,
}

impl EpisodeMetrics {
    /// Mean resource usage across slices, in percent.
    pub fn avg_usage_percent(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        self.slices.iter().map(|s| s.avg_usage_percent).sum::<f64>() / self.slices.len() as f64
    }

    /// Percentage of slices whose episode violated the SLA.
    pub fn violation_percent(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        100.0 * self.slices.iter().filter(|s| s.violated).count() as f64 / self.slices.len() as f64
    }

    /// Mean episode-average cost across slices.
    pub fn avg_cost(&self) -> f64 {
        if self.slices.is_empty() {
            return 0.0;
        }
        self.slices.iter().map(|s| s.avg_cost).sum::<f64>() / self.slices.len() as f64
    }
}

/// Aggregate of several episodes (one learning epoch, or a test run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Number of slice-episodes aggregated.
    pub num_slice_episodes: usize,
    /// Mean resource usage in percent.
    pub avg_usage_percent: f64,
    /// Percentage of slice-episodes that violated their SLA.
    pub violation_percent: f64,
    /// Mean episode-average cost.
    pub avg_cost: f64,
    /// Mean coordination interactions per slot.
    pub avg_interactions: f64,
}

impl EpochMetrics {
    /// Aggregates a set of episode metrics.
    pub fn from_episodes(episodes: &[EpisodeMetrics]) -> Self {
        let mut num = 0usize;
        let mut usage = 0.0;
        let mut violated = 0usize;
        let mut cost = 0.0;
        let mut interactions = 0.0;
        for ep in episodes {
            for s in &ep.slices {
                num += 1;
                usage += s.avg_usage_percent;
                cost += s.avg_cost;
                if s.violated {
                    violated += 1;
                }
            }
            interactions += ep.avg_interactions;
        }
        if num == 0 {
            return Self {
                num_slice_episodes: 0,
                avg_usage_percent: 0.0,
                violation_percent: 0.0,
                avg_cost: 0.0,
                avg_interactions: 0.0,
            };
        }
        Self {
            num_slice_episodes: num,
            avg_usage_percent: usage / num as f64,
            violation_percent: 100.0 * violated as f64 / num as f64,
            avg_cost: cost / num as f64,
            avg_interactions: if episodes.is_empty() {
                0.0
            } else {
                interactions / episodes.len() as f64
            },
        }
    }
}

/// Per-slice evaluation of a non-learning policy (used for the Baseline and
/// Model_Based rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Which slice was evaluated.
    pub kind: SliceKind,
    /// Number of episodes run.
    pub episodes: usize,
    /// Mean resource usage in percent.
    pub avg_usage_percent: f64,
    /// Percentage of episodes violating the SLA.
    pub violation_percent: f64,
    /// Mean episode-average cost.
    pub avg_cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(kind: SliceKind, usage: f64, cost: f64, violated: bool) -> SliceEpisodeSummary {
        SliceEpisodeSummary {
            kind,
            avg_cost: cost,
            violated,
            avg_usage_percent: usage,
            switched_to_baseline: false,
        }
    }

    #[test]
    fn episode_metrics_average_over_slices() {
        let ep = EpisodeMetrics {
            slices: vec![
                summary(SliceKind::Mar, 20.0, 0.01, false),
                summary(SliceKind::Hvs, 30.0, 0.10, true),
                summary(SliceKind::Rdc, 10.0, 0.00, false),
            ],
            avg_interactions: 2.0,
        };
        assert!((ep.avg_usage_percent() - 20.0).abs() < 1e-12);
        assert!((ep.violation_percent() - 100.0 / 3.0).abs() < 1e-9);
        assert!((ep.avg_cost() - 0.11 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_metrics_aggregate_multiple_episodes() {
        let ep1 = EpisodeMetrics {
            slices: vec![summary(SliceKind::Mar, 20.0, 0.0, false)],
            avg_interactions: 1.0,
        };
        let ep2 = EpisodeMetrics {
            slices: vec![summary(SliceKind::Mar, 40.0, 0.2, true)],
            avg_interactions: 3.0,
        };
        let agg = EpochMetrics::from_episodes(&[ep1, ep2]);
        assert_eq!(agg.num_slice_episodes, 2);
        assert!((agg.avg_usage_percent - 30.0).abs() < 1e-12);
        assert!((agg.violation_percent - 50.0).abs() < 1e-12);
        assert!((agg.avg_interactions - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregation_is_all_zero() {
        let agg = EpochMetrics::from_episodes(&[]);
        assert_eq!(agg.num_slice_episodes, 0);
        assert_eq!(agg.avg_usage_percent, 0.0);
        assert_eq!(agg.violation_percent, 0.0);
        let ep = EpisodeMetrics {
            slices: vec![],
            avg_interactions: 0.0,
        };
        assert_eq!(ep.avg_usage_percent(), 0.0);
        assert_eq!(ep.violation_percent(), 0.0);
    }
}
