//! The action modifier (policy `π_a`, paper §4 Eq. 11–13).
//!
//! When the slices' independently generated actions over-request a shared
//! resource, the domain managers raise the coordinating parameters `β_k`
//! (Eq. 14) and each agent's action modifier produces a modified action
//! `â` minimizing
//!
//! ```text
//! H = |â − a|² + Σ_k β_k â_k + c(s, â)                    (Eq. 13)
//! ```
//!
//! The paper trains a neural network offline on sampled `(s, a, β) → H`
//! tuples. Here the first two terms are minimized in closed form — for each
//! priced dimension the quadratic-plus-linear objective has the minimizer
//! `â_k = a_k − β_k / 2` — and the intractable cost term `c(s, â)` is
//! replaced by a *performance-retention floor*: the modifier never cuts a
//! priced dimension below a configurable fraction of the original request,
//! which is exactly the behaviour the paper needs from `π_a` (give resources
//! back when priced, but never so much that the slice's instantaneous
//! performance collapses — the failure mode of plain projection shown in
//! Table 3). An optional Gaussian perturbation reproduces the
//! "OnSlicing Md. Noise" robustness ablation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use onslicing_slices::{Action, ResourceKind};

/// Configuration of the action modifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModifierConfig {
    /// Fraction of the original request below which a priced dimension is
    /// never reduced (the stand-in for the cost term of Eq. 13).
    pub retention_floor: f64,
    /// Standard deviation of the Gaussian noise added to the modified action
    /// (0 disables it; 1.0 reproduces the paper's "Md. Noise" ablation).
    pub noise_std: f64,
}

impl Default for ModifierConfig {
    fn default() -> Self {
        Self {
            retention_floor: 0.6,
            noise_std: 0.0,
        }
    }
}

/// The per-agent action modifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionModifier {
    config: ModifierConfig,
}

impl ActionModifier {
    /// Creates a modifier with the given configuration.
    ///
    /// # Panics
    /// Panics if the retention floor is outside `[0, 1]` or the noise is
    /// negative.
    pub fn new(config: ModifierConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.retention_floor),
            "retention floor must be in [0, 1]"
        );
        assert!(config.noise_std >= 0.0, "noise std must be non-negative");
        Self { config }
    }

    /// The modifier's configuration.
    pub fn config(&self) -> &ModifierConfig {
        &self.config
    }

    /// Modifies the original action according to the coordinating parameters
    /// `betas` (indexed by [`ResourceKind::ALL`]).
    ///
    /// Dimensions that do not draw from a shared resource (MCS offsets,
    /// scheduler selectors) are returned unchanged.
    pub fn modify<R: Rng + ?Sized>(
        &self,
        original: &Action,
        betas: &[f64; 6],
        rng: &mut R,
    ) -> Action {
        let mut modified = *original;
        for resource in ResourceKind::ALL {
            let beta = betas[resource.index()].max(0.0);
            if beta == 0.0 && self.config.noise_std == 0.0 {
                continue;
            }
            let dim = resource.action_dim();
            let requested = original.get(dim);
            // Closed-form minimizer of (x - a)^2 + beta * x on [0, 1] ...
            let unconstrained = requested - beta / 2.0;
            // ... kept above the performance-retention floor.
            let floor = self.config.retention_floor * requested;
            let mut value = unconstrained.max(floor);
            if self.config.noise_std > 0.0 {
                value += self.config.noise_std * standard_normal(rng);
            }
            modified.set(dim, value);
        }
        modified
    }

    /// The Eq. 13 objective value of a candidate modification, with the cost
    /// term supplied by the caller (used in tests and ablation benches).
    pub fn objective(original: &Action, modified: &Action, betas: &[f64; 6], cost: f64) -> f64 {
        let distance = modified.squared_distance(original);
        let price: f64 = ResourceKind::ALL
            .iter()
            .map(|r| betas[r.index()] * modified.resource_share(*r))
            .sum();
        distance + price + cost
    }
}

impl Default for ActionModifier {
    fn default() -> Self {
        Self::new(ModifierConfig::default())
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn zero_betas_leave_the_action_unchanged() {
        let m = ActionModifier::default();
        let a = Action::uniform(0.4);
        assert_eq!(m.modify(&a, &[0.0; 6], &mut rng()), a);
    }

    #[test]
    fn positive_beta_reduces_only_the_priced_dimension() {
        let m = ActionModifier::default();
        let a = Action::uniform(0.5);
        let mut betas = [0.0; 6];
        betas[ResourceKind::EdgeCpu.index()] = 0.2;
        let modified = m.modify(&a, &betas, &mut rng());
        assert!(modified.cpu < a.cpu);
        assert!((modified.cpu - 0.4).abs() < 1e-12); // 0.5 - 0.2/2
        assert_eq!(modified.ul_bandwidth, a.ul_bandwidth);
        assert_eq!(modified.ram, a.ram);
        assert_eq!(modified.ul_mcs_offset, a.ul_mcs_offset);
    }

    #[test]
    fn retention_floor_bounds_the_reduction() {
        let m = ActionModifier::new(ModifierConfig {
            retention_floor: 0.6,
            noise_std: 0.0,
        });
        let a = Action::uniform(0.5);
        let mut betas = [0.0; 6];
        betas[ResourceKind::UplinkRadio.index()] = 10.0; // enormous price
        let modified = m.modify(&a, &betas, &mut rng());
        assert!(
            (modified.ul_bandwidth - 0.3).abs() < 1e-12,
            "floor = 0.6 * 0.5"
        );
    }

    #[test]
    fn modification_never_increases_priced_dimensions_without_noise() {
        let m = ActionModifier::default();
        let a = Action::uniform(0.7);
        let betas = [0.3; 6];
        let modified = m.modify(&a, &betas, &mut rng());
        for r in ResourceKind::ALL {
            assert!(modified.resource_share(r) <= a.resource_share(r) + 1e-12);
        }
        assert!(modified.resource_usage() < a.resource_usage());
    }

    #[test]
    fn modified_action_improves_the_priced_objective() {
        let m = ActionModifier::default();
        let a = Action::uniform(0.8);
        let betas = [0.5; 6];
        let modified = m.modify(&a, &betas, &mut rng());
        // With an identical (zero) cost term, the modified action must score
        // no worse than keeping the original.
        let kept = ActionModifier::objective(&a, &a, &betas, 0.0);
        let moved = ActionModifier::objective(&a, &modified, &betas, 0.0);
        assert!(moved < kept, "objective should improve: {moved} vs {kept}");
    }

    #[test]
    fn noise_perturbs_the_output() {
        let noisy = ActionModifier::new(ModifierConfig {
            retention_floor: 0.6,
            noise_std: 1.0,
        });
        let a = Action::uniform(0.5);
        let out = noisy.modify(&a, &[0.0; 6], &mut rng());
        assert_ne!(out, a);
        // Still a valid action after clamping.
        for v in out.to_vec() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn iterated_modification_with_rising_betas_reaches_feasibility() {
        // Two agents over-request CPU (0.8 each); a coordination loop with
        // the closed-form modifier must converge to a feasible split.
        let m = ActionModifier::default();
        let mut betas = [0.0; 6];
        let originals = [Action::uniform(0.8), Action::uniform(0.8)];
        let mut current = originals;
        let mut rounds = 0;
        // The dual ascent converges geometrically, so allow a small tolerance
        // on the capacity (the orchestrator falls back to projection for the
        // residual sliver).
        while current.iter().map(|a| a.cpu).sum::<f64>() > 1.0 + 1e-6 && rounds < 50 {
            betas[ResourceKind::EdgeCpu.index()] +=
                0.5 * (current.iter().map(|a| a.cpu).sum::<f64>() - 1.0);
            current = [
                m.modify(&originals[0], &betas, &mut rng()),
                m.modify(&originals[1], &betas, &mut rng()),
            ];
            rounds += 1;
        }
        assert!(
            current.iter().map(|a| a.cpu).sum::<f64>() <= 1.0 + 1e-6,
            "coordination should become feasible (floor 0.6 · 0.8 · 2 = 0.96 < 1)"
        );
        assert!(rounds < 40, "convergence took too long: {rounds} rounds");
    }

    #[test]
    #[should_panic(expected = "retention floor must be in [0, 1]")]
    fn invalid_floor_is_rejected() {
        let _ = ActionModifier::new(ModifierConfig {
            retention_floor: 1.5,
            noise_std: 0.0,
        });
    }
}
