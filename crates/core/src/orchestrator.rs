//! The OnSlicing orchestrator: per-slice agents, domain managers and the
//! distributed coordination loop.
//!
//! The orchestrator ties the pieces together for every configuration slot:
//!
//! 1. every agent proposes an action for its slice;
//! 2. the actions are coordinated against the infrastructure capacities —
//!    either through the paper's β-priced action modification loop (Eq. 13 +
//!    Eq. 14, warm-started between slots) or through plain projection (the
//!    baseline/OnRL method);
//! 3. the final actions are enforced by the domain managers and executed in
//!    the network simulator;
//! 4. the agents record the outcome and, at epoch boundaries, update their
//!    policies.
//!
//! ## Fused cell inference
//!
//! Every slice agent in a cell shares one trunk architecture, so the slot
//! hot path no longer dispatches one small forward pass per slice. Instead
//! [`Orchestrator::run_slot`] *gathers* one observation row per active slice
//! into a [`CellBatch`], runs one fused layer-major sweep per network family
//! (policy means, critic values) across the whole cell, and *scatters* the
//! output rows back into per-agent decisions. The split is RNG-exact:
//!
//! 1. **phase A** — each agent draws its switching statistic and classifies
//!    the proactive switch ([`OnSlicingAgent::decide_phase_switch`]); these
//!    are the only pre-action RNG draws, and agents own independent streams;
//! 2. **phase B** — the fused forwards (no RNG at all);
//! 3. **phase C** — each agent finishes its decision from its fused mean row
//!    ([`OnSlicingAgent::decide_finish`]), drawing exactly the action-sample
//!    variates the dispatched path would.
//!
//! The composition is bit-identical to the per-slice reference path, which is
//! kept as [`Orchestrator::run_slot_reference`] for equivalence tests and as
//! the fallback when the cell holds heterogeneous trunk shapes.
//!
//! ## Parallelism
//!
//! Per-slice agents are fully independent between coordination rounds: each
//! owns its policy networks, RNG and rollout buffer, and each slice
//! environment owns its simulator. Since the fused refactor, thread-level
//! parallelism lives *inside* the batched GEMM kernels (`onslicing_nn`
//! row-tiles large matrix products across cores); the slot loop itself runs
//! the gather → fused sweep → scatter sequence single-threaded, which costs
//! nothing at cell sizes and keeps the per-slot allocation count at zero in
//! steady state. Offline pre-training still fans out across cores with
//! `rayon` (episode-grained, embarrassingly parallel). Determinism is
//! unaffected everywhere: no RNG is shared between agents, and the kernels'
//! per-row reduction order is tiling-invariant, so results are identical at
//! every thread count.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use onslicing_domains::{DomainSet, SliceId};
use onslicing_nn::{CellBatch, Mlp};
use onslicing_rl::PpoUpdateScratch;
use onslicing_slices::{Action, Sla, SliceState, STATE_DIM};

use onslicing_slices::SlotKpi;

use crate::agent::{Decision, OnSlicingAgent};
use crate::env::{MultiSliceEnvironment, SliceEnvironment};
use crate::metrics::{EpisodeMetrics, EpochMetrics};

/// How over-requests of shared resources are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoordinationMode {
    /// The paper's mechanism: coordinating parameters β from the domain
    /// managers drive each agent's action modifier; at most `max_rounds`
    /// agent↔manager interactions per slot, then projection as a last
    /// resort.
    Modifier {
        /// Maximum number of interactions per slot.
        max_rounds: usize,
        /// Whether β is warm-started from the previous slot (the paper's
        /// initialization; disabling it raises the interaction count).
        warm_start: bool,
    },
    /// Plain proportional projection (the Baseline / OnRL method).
    Projection,
}

impl Default for CoordinationMode {
    fn default() -> Self {
        CoordinationMode::Modifier {
            max_rounds: 10,
            warm_start: true,
        }
    }
}

/// Configuration of the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Over-request resolution mechanism.
    pub coordination: CoordinationMode,
    /// Episodes collected between consecutive policy updates (the paper's
    /// epoch is ~10 episodes of 96 transitions; scaled-down experiments use
    /// fewer).
    pub episodes_per_epoch: usize,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            coordination: CoordinationMode::default(),
            episodes_per_epoch: 2,
        }
    }
}

/// Why an orchestrator-level slice operation failed.
///
/// Callers that coordinate many orchestrators (the fleet runner, the
/// scenario engine's admission path) match on the variants instead of
/// string-comparing error text; `From<OrchestratorError> for String` keeps
/// the old `Result<_, String>` call sites compiling with a `?` or
/// `map_err(String::from)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrchestratorError {
    /// A domain manager rejected the slice lifecycle command (duplicate
    /// registration, unknown id at the domain layer, ...).
    Domain {
        /// The slice the command addressed.
        id: SliceId,
        /// The manager's own description of the rejection.
        reason: String,
    },
    /// The referenced slice is not (or no longer) active in this
    /// orchestrator.
    InactiveSlice(SliceId),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestratorError::Domain { id, reason } => {
                write!(f, "domain managers rejected {id}: {reason}")
            }
            OrchestratorError::InactiveSlice(id) => write!(f, "{id} is not an active slice"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<OrchestratorError> for String {
    fn from(e: OrchestratorError) -> Self {
        e.to_string()
    }
}

/// Outcome of one coordinated slot (exposed for tests, the showcase figures
/// and the telemetry recorder).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotOutcome {
    /// Each agent's own decision (before coordination).
    pub decisions: Vec<Decision>,
    /// The actions finally enforced.
    pub executed: Vec<Action>,
    /// The per-slice KPI each slice's simulator reported for the slot,
    /// parallel to `executed`.
    pub kpis: Vec<SlotKpi>,
    /// Number of agent↔manager interactions this slot took.
    pub interactions: usize,
}

/// Cheap scalar summary of one [`SlotOutcome`] — what a cell- or
/// fleet-level aggregator keeps per slot instead of the full
/// decision/action/KPI vectors (the scenario engine folds these into its
/// running `avg_slot_cost` / `avg_slot_usage_percent` report fields).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotAggregate {
    /// Slices that executed the slot.
    pub slices: usize,
    /// Agent↔manager interactions the slot took.
    pub interactions: usize,
    /// Sum of the slices' per-slot costs.
    pub total_cost: f64,
    /// Mean resource utilization across the slices, in percent.
    pub mean_usage_percent: f64,
}

impl SlotOutcome {
    /// Folds the per-slice vectors into a [`SlotAggregate`] in one pass.
    pub fn aggregate(&self) -> SlotAggregate {
        let n = self.kpis.len();
        let mut total_cost = 0.0;
        let mut usage = 0.0;
        for kpi in &self.kpis {
            total_cost += kpi.cost;
            usage += kpi.resource_usage_percent();
        }
        SlotAggregate {
            slices: n,
            interactions: self.interactions,
            total_cost,
            mean_usage_percent: usage / n.max(1) as f64,
        }
    }
}

/// The complete serialized state of one slice, detached from its
/// orchestrator: the agent (networks, Adam moments, rollout buffer,
/// Lagrangian state, RNG stream) and the environment (simulator, traffic
/// trace + generator cursor, slot/cost accumulators, RNG stream).
///
/// This is the unit of **live migration**: [`Orchestrator::export_slice`]
/// detaches a slice into a checkpoint and [`Orchestrator::import_slice`]
/// re-attaches it to another orchestrator, preserving every weight and RNG
/// stream bit-for-bit — a migrated slice continues exactly the trajectory
/// it would have taken, just under a different cell's coordination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceCheckpoint {
    /// The slice's application class (redundant with the agent's, kept for
    /// cheap inspection without touching agent internals).
    pub kind: onslicing_slices::SliceKind,
    /// The detached agent, mid-episode state included.
    pub agent: OnSlicingAgent,
    /// The detached environment, mid-episode state included.
    pub env: SliceEnvironment,
}

/// Reusable buffers of the fused slot path: the gather vectors, the two
/// fused-forward workspaces (policy means and critic values), the
/// coordination scratch and the cell-shared PPO update scratch. Pure
/// caches — cleared and refilled every slot, so a freshly-`Default`ed
/// workspace (e.g. after deserialization) warms up on the first slot and
/// allocates nothing from then on.
#[derive(Debug, Clone, Default)]
struct SlotWorkspace {
    /// One observation per active slice, gathered at the top of the slot.
    states: Vec<SliceState>,
    /// Each slice's cumulative episode cost, parallel to `states`.
    costs: Vec<f64>,
    /// Each agent's switching statistic from phase A.
    statistics: Vec<f64>,
    /// Each agent's fused critic value from phase B.
    values: Vec<f64>,
    /// The agents' proposed actions (pre-coordination).
    proposals: Vec<Action>,
    /// Fused forward workspace for the policy mean networks.
    policy_cell: CellBatch,
    /// Fused forward workspace for the critic networks.
    critic_cell: CellBatch,
    /// One PPO update scratch shared by every agent in the cell: the trunk
    /// shapes match, so the minibatch buffers keep their dimensions from
    /// agent to agent across the epoch's update sweep.
    ppo_scratch: PpoUpdateScratch,
    /// The slot outcome reused across an episode's slots.
    episode_outcome: SlotOutcome,
}

/// The end-to-end orchestrator of one infrastructure.
///
/// Serializes the entire deployment — every agent's networks, optimizers and
/// RNG, every environment's simulator and trace state, the domain managers'
/// allocations and coordinating parameters, and the slice-id bookkeeping —
/// so a deserialized orchestrator runs the remaining slots bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Orchestrator {
    env: MultiSliceEnvironment,
    agents: Vec<OnSlicingAgent>,
    domains: DomainSet,
    config: OrchestratorConfig,
    /// Stable identity of each active slice, parallel to `agents`/`env`.
    /// Positions shift on teardown; ids never do.
    slice_ids: Vec<SliceId>,
    /// Next id handed out by [`Orchestrator::admit_slice`].
    next_slice_id: u32,
    /// Fused slot-path scratch; never serialized, rebuilt lazily.
    #[serde(skip)]
    workspace: SlotWorkspace,
}

impl Orchestrator {
    /// Assembles an orchestrator; there must be exactly one agent per slice
    /// environment.
    ///
    /// # Panics
    /// Panics if the numbers of agents and environments differ.
    pub fn new(
        env: MultiSliceEnvironment,
        agents: Vec<OnSlicingAgent>,
        domains: DomainSet,
        config: OrchestratorConfig,
    ) -> Self {
        assert_eq!(
            env.num_slices(),
            agents.len(),
            "one agent per slice environment is required"
        );
        let slice_ids: Vec<SliceId> = (0..agents.len() as u32).map(SliceId).collect();
        let mut orchestrator = Self {
            env,
            agents,
            domains,
            config,
            next_slice_id: slice_ids.len() as u32,
            slice_ids,
            workspace: SlotWorkspace::default(),
        };
        for id in orchestrator.slice_ids.clone() {
            // Slices may already exist when an orchestrator is rebuilt around
            // a shared DomainSet; ignore duplicates.
            let _ = orchestrator.domains.create_slice(id);
        }
        orchestrator
    }

    /// Immutable access to the agents.
    pub fn agents(&self) -> &[OnSlicingAgent] {
        &self.agents
    }

    /// The stable ids of the active slices, parallel to
    /// [`Orchestrator::agents`] and the environment bundle.
    pub fn slice_ids(&self) -> &[SliceId] {
        &self.slice_ids
    }

    /// Number of currently active slices.
    pub fn num_slices(&self) -> usize {
        self.agents.len()
    }

    /// The position of a slice id, if the slice is active.
    pub fn index_of(&self, id: SliceId) -> Option<usize> {
        self.slice_ids.iter().position(|s| *s == id)
    }

    /// Burns the next slice id without admitting anything. Scenario files
    /// number mid-run slices by admission-event order, so a *denied*
    /// admission must still consume its id — otherwise every later scripted
    /// id would silently shift onto the wrong slice.
    pub fn reserve_slice_id(&mut self) -> SliceId {
        let id = SliceId(self.next_slice_id);
        self.next_slice_id += 1;
        id
    }

    /// Admits a new slice mid-run: registers it with every domain manager,
    /// appends its agent and environment, and returns its stable id. The
    /// caller decides *whether* admission is allowed (capacity checks live
    /// in the admission controller, not here).
    pub fn admit_slice(
        &mut self,
        agent: OnSlicingAgent,
        env: SliceEnvironment,
    ) -> Result<SliceId, OrchestratorError> {
        let id = SliceId(self.next_slice_id);
        self.domains
            .create_slice(id)
            .map_err(|reason| OrchestratorError::Domain { id, reason })?;
        self.next_slice_id += 1;
        self.slice_ids.push(id);
        self.agents.push(agent);
        self.env.push_env(env);
        Ok(id)
    }

    /// Tears a slice down mid-run: deregisters it from every domain manager
    /// (its enforced allocation stops counting against capacity immediately)
    /// and returns its agent and environment to the caller.
    pub fn teardown_slice(
        &mut self,
        id: SliceId,
    ) -> Result<(OnSlicingAgent, SliceEnvironment), OrchestratorError> {
        let index = self
            .index_of(id)
            .ok_or(OrchestratorError::InactiveSlice(id))?;
        self.domains
            .delete_slice(id)
            .map_err(|reason| OrchestratorError::Domain { id, reason })?;
        self.slice_ids.remove(index);
        let agent = self.agents.remove(index);
        let env = self.env.remove_env(index);
        Ok((agent, env))
    }

    /// Detaches a slice into a [`SliceCheckpoint`]: deregisters it from the
    /// domain managers (like [`Orchestrator::teardown_slice`]) and returns
    /// its complete serialized state, mid-episode position included. The
    /// caller re-attaches it elsewhere with [`Orchestrator::import_slice`].
    pub fn export_slice(&mut self, id: SliceId) -> Result<SliceCheckpoint, OrchestratorError> {
        let (agent, env) = self.teardown_slice(id)?;
        Ok(SliceCheckpoint {
            kind: agent.kind(),
            agent,
            env,
        })
    }

    /// Re-attaches an exported slice under this orchestrator's **own** next
    /// slice id (per-cell id spaces are independent, so the exported id is
    /// not carried over). The agent and environment resume bit-for-bit; no
    /// reset, pre-training or re-calibration happens.
    pub fn import_slice(
        &mut self,
        checkpoint: SliceCheckpoint,
    ) -> Result<SliceId, OrchestratorError> {
        self.admit_slice(checkpoint.agent, checkpoint.env)
    }

    /// Renegotiates one slice's SLA: both the environment (cost/violation
    /// accounting) and the agent (switching budget, Lagrangian constraint)
    /// move to the new terms.
    pub fn renegotiate_sla(&mut self, id: SliceId, sla: Sla) -> Result<(), OrchestratorError> {
        let index = self
            .index_of(id)
            .ok_or(OrchestratorError::InactiveSlice(id))?;
        self.agents[index].set_sla(sla);
        self.env.envs_mut()[index].set_sla(sla);
        Ok(())
    }

    /// Mutable access to the agents (e.g. for offline pre-training).
    pub fn agents_mut(&mut self) -> &mut [OnSlicingAgent] {
        &mut self.agents
    }

    /// Immutable access to the environments.
    pub fn env(&self) -> &MultiSliceEnvironment {
        &self.env
    }

    /// Mutable access to the environments.
    pub fn env_mut(&mut self) -> &mut MultiSliceEnvironment {
        &mut self.env
    }

    /// The domain managers.
    pub fn domains(&self) -> &DomainSet {
        &self.domains
    }

    /// Mutable access to the domain managers (e.g. to pin coordinating
    /// parameters for the fixed-β sweep of Fig. 14).
    pub fn domains_mut(&mut self) -> &mut DomainSet {
        &mut self.domains
    }

    /// Runs the offline pre-training stage of every agent (§5) with
    /// `episodes_per_agent` baseline episodes each — one core per slice.
    pub fn offline_pretrain_all(&mut self, episodes_per_agent: usize) {
        self.agents
            .par_iter_mut()
            .zip(self.env.envs_mut().par_iter_mut())
            .for_each(|(agent, env)| {
                agent.offline_pretrain(env, episodes_per_agent);
            });
    }

    /// Allocation-free [`Orchestrator::coordinate`]: the enforceable actions
    /// land in `executed` (cleared first), and every β update, feasibility
    /// check and last-resort projection runs in place through the domain
    /// set's slice APIs. The round structure — and therefore every modifier
    /// RNG draw and every β trajectory — matches the allocating variant
    /// bit-for-bit.
    fn coordinate_in_place(&mut self, proposals: &[Action], executed: &mut Vec<Action>) -> usize {
        executed.clear();
        match self.config.coordination {
            CoordinationMode::Projection => {
                executed.extend_from_slice(proposals);
                self.domains.project_in_place(executed);
                1
            }
            CoordinationMode::Modifier {
                max_rounds,
                warm_start,
            } => {
                if !warm_start {
                    self.domains.reset_betas();
                }
                let mut betas = self.domains.betas();
                for (a, agent) in proposals.iter().zip(self.agents.iter_mut()) {
                    executed.push(agent.modify(a, &betas));
                }
                let mut rounds = 1;
                loop {
                    betas = self.domains.update_coordination_slice(executed);
                    if self.domains.is_feasible_slice(executed) || rounds >= max_rounds {
                        break;
                    }
                    executed.clear();
                    for (a, agent) in proposals.iter().zip(self.agents.iter_mut()) {
                        executed.push(agent.modify(a, &betas));
                    }
                    rounds += 1;
                }
                if !self.domains.is_feasible_slice(executed) {
                    self.domains.project_in_place(executed);
                }
                rounds
            }
        }
    }

    /// Resolves the slices' proposed actions against the shared capacities
    /// and returns the enforceable actions plus the interaction count.
    fn coordinate(&mut self, proposals: &[Action]) -> (Vec<Action>, usize) {
        match self.config.coordination {
            CoordinationMode::Projection => (self.domains.project(proposals.iter()), 1),
            CoordinationMode::Modifier {
                max_rounds,
                warm_start,
            } => {
                if !warm_start {
                    self.domains.reset_betas();
                }
                let mut betas = self.domains.betas();
                let mut actions: Vec<Action> = proposals
                    .iter()
                    .zip(self.agents.iter_mut())
                    .map(|(a, agent)| agent.modify(a, &betas))
                    .collect();
                let mut rounds = 1;
                loop {
                    betas = self.domains.update_coordination(actions.iter());
                    if self.domains.is_feasible(actions.iter()) || rounds >= max_rounds {
                        break;
                    }
                    actions = proposals
                        .iter()
                        .zip(self.agents.iter_mut())
                        .map(|(a, agent)| agent.modify(a, &betas))
                        .collect();
                    rounds += 1;
                }
                if !self.domains.is_feasible(actions.iter()) {
                    actions = self.domains.project(actions.iter());
                }
                (actions, rounds)
            }
        }
    }

    /// Whether every agent in the cell shares one trunk shape (policy mean
    /// net and critic), making the fused slot path applicable.
    fn cell_is_fusable(&self) -> bool {
        let Some(first) = self.agents.first() else {
            return true;
        };
        let mean0 = first.ppo().policy().mean_net();
        let critic0 = first.ppo().critic();
        self.agents.iter().skip(1).all(|agent| {
            same_trunk(agent.ppo().policy().mean_net(), mean0)
                && same_trunk(agent.ppo().critic(), critic0)
        })
    }

    /// Runs one coordinated slot across all slices.
    ///
    /// When `learn` is true the agents sample stochastic actions and record
    /// transitions; when false they act deterministically (test-time
    /// evaluation).
    ///
    /// Cells whose agents share one trunk architecture (the normal case) take
    /// the fused gather → GEMM → scatter path; heterogeneous cells fall back
    /// to the dispatched [`Orchestrator::run_slot_reference`]. Both produce
    /// bit-identical outcomes.
    pub fn run_slot(&mut self, learn: bool) -> SlotOutcome {
        let mut out = SlotOutcome::default();
        self.run_slot_into(learn, &mut out);
        out
    }

    /// [`Orchestrator::run_slot`] into a caller-owned outcome: the outcome's
    /// vectors are cleared and refilled, so a reused `SlotOutcome` makes the
    /// whole slot allocation-free in steady state.
    pub fn run_slot_into(&mut self, learn: bool, out: &mut SlotOutcome) {
        let mut ws = std::mem::take(&mut self.workspace);
        if self.cell_is_fusable() {
            self.run_slot_fused(learn, &mut ws, out);
        } else {
            *out = self.run_slot_reference(learn);
        }
        self.workspace = ws;
    }

    /// The fused slot path: one observation row per slice is gathered into
    /// the cell batch, the policy means and critic values of the whole cell
    /// are computed in two fused layer-major sweeps, and the rows are
    /// scattered back through the agents' phased decide. RNG-draw order per
    /// agent is exactly that of the dispatched path, so the outcome is
    /// bit-identical.
    fn run_slot_fused(&mut self, learn: bool, ws: &mut SlotWorkspace, out: &mut SlotOutcome) {
        let n = self.agents.len();
        // Gather: observations, costs and the stacked observation rows.
        ws.states.clear();
        ws.costs.clear();
        for env in self.env.envs() {
            ws.states.push(env.state());
            ws.costs.push(env.cumulative_cost());
        }
        {
            let input = ws.policy_cell.input_mut(n, STATE_DIM);
            for (i, state) in ws.states.iter().enumerate() {
                state.write_row(input.row_mut(i));
            }
        }
        // Phase A: switching statistics and proactive-switch classification.
        // These draws are the only pre-action RNG consumption, and each agent
        // owns an independent stream, so running them batch-first instead of
        // interleaved with the forwards cannot change any draw.
        ws.statistics.clear();
        for i in 0..n {
            let row = ws.policy_cell.input().row(i);
            ws.statistics
                .push(self.agents[i].decide_phase_switch(row, ws.costs[i]));
        }
        // Phase B: the fused forwards (no RNG). Policy means feed phase C;
        // critic values feed the recording phase (bootstrap values for
        // baseline-switched agents and transition values for π_θ actions).
        {
            let SlotWorkspace {
                policy_cell,
                critic_cell,
                values,
                ..
            } = ws;
            {
                let src = policy_cell.input();
                let dst = critic_cell.input_mut(n, STATE_DIM);
                dst.data_mut().copy_from_slice(src.data());
            }
            let agents = &self.agents;
            policy_cell.forward_grouped(|i| agents[i].ppo().policy().mean_net());
            let vals = critic_cell.forward_grouped(|i| agents[i].ppo().critic());
            values.clear();
            for i in 0..n {
                values.push(vals.row(i)[0]);
            }
        }
        // Phase C: each agent finishes its decision from its fused mean row.
        out.decisions.clear();
        for i in 0..n {
            let mean = ws.policy_cell.output().row(i);
            out.decisions.push(self.agents[i].decide_finish(
                &ws.states[i],
                ws.statistics[i],
                mean,
                !learn,
            ));
        }
        ws.proposals.clear();
        for d in out.decisions.iter() {
            ws.proposals.push(d.action);
        }
        out.interactions = self.coordinate_in_place(&ws.proposals, &mut out.executed);
        for (i, action) in out.executed.iter().enumerate() {
            self.domains
                .enforce(self.slice_ids[i], *action)
                .expect("active slices are registered with every domain");
        }
        // Execution phase: each slice steps its own simulator and records its
        // own outcome with the fused critic value. The agent only stores a
        // learning transition when the decision carried a stochastic sample
        // (i.e. `learn` was true and π_θ acted); recording always happens so
        // episode usage/cost summaries stay available.
        let SlotOutcome {
            decisions,
            executed,
            kpis,
            ..
        } = out;
        kpis.clear();
        for (i, (agent, env)) in self
            .agents
            .iter_mut()
            .zip(self.env.envs_mut().iter_mut())
            .enumerate()
        {
            let result = env.step(&executed[i]);
            agent.record_with_value(
                &ws.states[i],
                &decisions[i],
                &executed[i],
                &result.kpi,
                result.done,
                ws.values[i],
            );
            kpis.push(result.kpi);
        }
    }

    /// The dispatched per-slice reference path: one forward pass per network
    /// per slice, exactly as the pre-fusion orchestrator ran it. Kept as the
    /// fallback for heterogeneous-trunk cells and as the ground truth the
    /// fused path is tested (and benchmarked) against.
    pub fn run_slot_reference(&mut self, learn: bool) -> SlotOutcome {
        let states: Vec<_> = self.env.envs().iter().map(|e| e.state()).collect();
        let costs: Vec<f64> = self
            .env
            .envs()
            .iter()
            .map(|e| e.cumulative_cost())
            .collect();
        // Decision phase: every agent proposes independently (own networks,
        // own RNG).
        let decisions: Vec<Decision> = self
            .agents
            .iter_mut()
            .enumerate()
            .map(|(i, agent)| agent.decide(&states[i], costs[i], !learn))
            .collect();
        let proposals: Vec<Action> = decisions.iter().map(|d| d.action).collect();
        let (executed, interactions) = self.coordinate(&proposals);
        for (i, action) in executed.iter().enumerate() {
            self.domains
                .enforce(self.slice_ids[i], *action)
                .expect("active slices are registered with every domain");
        }
        // Execution phase: each slice steps its own simulator and records its
        // own outcome. The agent only stores a learning transition when the
        // decision carried a stochastic sample (i.e. `learn` was true and π_θ
        // acted); recording always happens so episode usage/cost summaries
        // stay available.
        let kpis: Vec<SlotKpi> = self
            .agents
            .iter_mut()
            .zip(self.env.envs_mut().iter_mut())
            .enumerate()
            .map(|(i, (agent, env))| {
                let result = env.step(&executed[i]);
                agent.record(
                    &states[i],
                    &decisions[i],
                    &executed[i],
                    &result.kpi,
                    result.done,
                );
                result.kpi
            })
            .collect();
        SlotOutcome {
            decisions,
            executed,
            kpis,
            interactions,
        }
    }

    /// Runs one full episode (one emulated day) and returns its metrics.
    /// With no active slices (all torn down) the episode is empty.
    pub fn run_episode(&mut self, learn: bool) -> EpisodeMetrics {
        if self.agents.is_empty() {
            return EpisodeMetrics {
                slices: Vec::new(),
                avg_interactions: 0.0,
            };
        }
        self.env.reset_all();
        let horizon = self.env.envs()[0].horizon();
        let mut interactions = 0usize;
        // One outcome buffer serves every slot of the episode, so the slot
        // loop recycles its vectors instead of reallocating them per slot.
        let mut outcome = std::mem::take(&mut self.workspace.episode_outcome);
        for _ in 0..horizon {
            self.run_slot_into(learn, &mut outcome);
            interactions += outcome.interactions;
        }
        self.workspace.episode_outcome = outcome;
        let slices = self.agents.iter_mut().map(|a| a.end_episode()).collect();
        EpisodeMetrics {
            slices,
            avg_interactions: interactions as f64 / horizon as f64,
        }
    }

    /// Runs one learning epoch (`episodes_per_epoch` episodes followed by a
    /// PPO update per agent) and returns the aggregated metrics.
    pub fn run_epoch(&mut self) -> EpochMetrics {
        let mut episodes = Vec::with_capacity(self.config.episodes_per_epoch);
        for _ in 0..self.config.episodes_per_epoch {
            episodes.push(self.run_episode(true));
        }
        // PPO updates run back to back through one shared scratch: every
        // agent in the cell shares the trunk architecture, so the minibatch
        // buffers keep their dimensions from agent to agent and the whole
        // sweep reallocates nothing. Each update's arithmetic and RNG use are
        // exactly those of `OnSlicingAgent::update_policy`, and agents own
        // independent streams, so the sequential sweep is bit-identical to
        // the old per-core fan-out.
        let mut scratch = std::mem::take(&mut self.workspace.ppo_scratch);
        for agent in &mut self.agents {
            agent.update_policy_with_scratch(&mut scratch);
        }
        self.workspace.ppo_scratch = scratch;
        EpochMetrics::from_episodes(&episodes)
    }

    /// Runs `num_epochs` learning epochs and returns the per-epoch learning
    /// curve (the data behind Figs. 9, 11 and 13).
    pub fn run_online(&mut self, num_epochs: usize) -> Vec<EpochMetrics> {
        (0..num_epochs).map(|_| self.run_epoch()).collect()
    }

    /// Evaluates the current policies deterministically over `episodes`
    /// episodes (the "test performance" of Table 1).
    pub fn evaluate(&mut self, episodes: usize) -> EpochMetrics {
        let runs: Vec<EpisodeMetrics> = (0..episodes).map(|_| self.run_episode(false)).collect();
        EpochMetrics::from_episodes(&runs)
    }
}

/// Whether two networks share layer count and per-layer dimensions (the
/// trunk *shape* — weights are free to differ).
fn same_trunk(a: &Mlp, b: &Mlp) -> bool {
    a.num_layers() == b.num_layers()
        && a.layers_ref()
            .iter()
            .zip(b.layers_ref())
            .all(|(x, y)| x.in_dim() == y.in_dim() && x.out_dim() == y.out_dim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use crate::baselines::RuleBasedBaseline;
    use onslicing_netsim::NetworkConfig;
    use onslicing_slices::{Sla, SliceKind};
    use onslicing_traffic::SLOTS_PER_DAY;

    fn build(config: AgentConfig, coordination: CoordinationMode) -> Orchestrator {
        let network = NetworkConfig::testbed_default();
        let env = MultiSliceEnvironment::testbed_default(network, 5);
        let horizon = SLOTS_PER_DAY;
        let agents = SliceKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let sla = Sla::for_kind(*kind);
                let baseline = RuleBasedBaseline::calibrate(
                    *kind,
                    &sla,
                    &network,
                    kind.default_peak_users_per_second(),
                    4,
                    100 + i as u64,
                );
                OnSlicingAgent::new(*kind, sla, baseline, config.scaled_down(horizon), i as u64)
            })
            .collect();
        Orchestrator::new(
            env,
            agents,
            DomainSet::testbed_default(),
            OrchestratorConfig {
                coordination,
                episodes_per_epoch: 1,
            },
        )
    }

    #[test]
    fn episode_produces_metrics_for_every_slice() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.offline_pretrain_all(1);
        let metrics = orch.run_episode(true);
        assert_eq!(metrics.slices.len(), 3);
        assert!(metrics.avg_usage_percent() > 0.0);
        assert!(metrics.avg_interactions >= 1.0);
    }

    #[test]
    fn executed_actions_are_always_feasible() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.env_mut().reset_all();
        for _ in 0..10 {
            let outcome = orch.run_slot(true);
            assert!(orch.domains().is_feasible(outcome.executed.iter()));
        }
    }

    #[test]
    fn projection_mode_also_keeps_actions_feasible() {
        let mut orch = build(AgentConfig::onrl(), CoordinationMode::Projection);
        orch.env_mut().reset_all();
        for _ in 0..5 {
            let outcome = orch.run_slot(true);
            assert!(orch.domains().is_feasible(outcome.executed.iter()));
            assert_eq!(outcome.interactions, 1);
        }
    }

    #[test]
    fn pretrained_onslicing_keeps_violations_near_zero_in_the_first_epoch() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.offline_pretrain_all(2);
        let metrics = orch.run_epoch();
        assert!(
            metrics.violation_percent <= 34.0,
            "imitation + switching should prevent widespread violations, got {}%",
            metrics.violation_percent
        );
    }

    #[test]
    fn evaluation_runs_deterministically_without_recording() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.offline_pretrain_all(1);
        let before = orch.agents()[0].pending_transitions();
        let metrics = orch.evaluate(1);
        assert_eq!(metrics.num_slice_episodes, 3);
        assert_eq!(orch.agents()[0].pending_transitions(), before);
    }

    fn extra_slice(kind: SliceKind, seed: u64) -> (OnSlicingAgent, crate::env::SliceEnvironment) {
        let network = NetworkConfig::testbed_default();
        let sla = Sla::for_kind(kind);
        let baseline = RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            4,
            seed,
        );
        let env = crate::env::SliceEnvironment::new(kind, network, seed);
        let horizon = env.horizon();
        let agent = OnSlicingAgent::new(
            kind,
            sla,
            baseline,
            AgentConfig::onslicing().scaled_down(horizon),
            seed,
        );
        (agent, env)
    }

    #[test]
    fn slices_can_join_and_leave_mid_run() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.env_mut().reset_all();
        orch.run_slot(true);
        assert_eq!(
            orch.slice_ids().to_vec(),
            vec![SliceId(0), SliceId(1), SliceId(2)]
        );

        let (agent, env) = extra_slice(SliceKind::Mar, 400);
        let id = orch.admit_slice(agent, env).unwrap();
        assert_eq!(id, SliceId(3));
        assert_eq!(orch.num_slices(), 4);
        assert!(orch.domains().has_slice(id));
        let outcome = orch.run_slot(true);
        assert_eq!(outcome.executed.len(), 4);
        assert!(orch.domains().is_feasible(outcome.executed.iter()));

        // Tear down a *middle* slice: ids stay stable, positions shift.
        let (torn_agent, _torn_env) = orch.teardown_slice(SliceId(1)).unwrap();
        assert_eq!(torn_agent.kind(), SliceKind::Hvs);
        assert_eq!(
            orch.slice_ids().to_vec(),
            vec![SliceId(0), SliceId(2), SliceId(3)]
        );
        assert!(!orch.domains().has_slice(SliceId(1)));
        assert_eq!(orch.index_of(SliceId(3)), Some(2));
        let outcome = orch.run_slot(true);
        assert_eq!(outcome.executed.len(), 3);
        // The torn-down slice's allocation no longer counts against capacity.
        for m in orch.domains().managers() {
            assert_eq!(m.num_slices(), 3);
        }
        assert!(orch.teardown_slice(SliceId(1)).is_err());
    }

    #[test]
    fn exported_slice_migrates_with_exact_weights_and_rng_streams() {
        // Two identical deployments diverge only in which orchestrator runs
        // slice 1 after the export: the migrated agent+env must be byte-
        // identical to the stay-at-home copy at export time, and must keep
        // producing the identical trajectory under the new orchestrator
        // when the surrounding population is the same.
        let mut source = build(AgentConfig::onslicing(), CoordinationMode::default());
        source.offline_pretrain_all(1);
        source.env_mut().reset_all();
        for _ in 0..3 {
            source.run_slot(true);
        }
        let reference = source.clone();

        let checkpoint = source.export_slice(SliceId(1)).unwrap();
        assert_eq!(checkpoint.kind, SliceKind::Hvs);
        assert!(!source.domains().has_slice(SliceId(1)));
        // Export is non-destructive to the slice state itself: the detached
        // agent and environment serialize byte-identically to the untouched
        // copies in the reference orchestrator.
        let index = reference.index_of(SliceId(1)).unwrap();
        assert_eq!(
            serde_json::to_string(&checkpoint.agent).unwrap(),
            serde_json::to_string(&reference.agents()[index]).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&checkpoint.env).unwrap(),
            serde_json::to_string(&reference.env().envs()[index]).unwrap()
        );

        // Import into a fresh orchestrator built from the same snapshot but
        // with its own id space: the slice gets the next free id there and
        // is registered with every domain manager.
        let mut target = reference.clone();
        let new_id = target.import_slice(checkpoint).unwrap();
        assert_eq!(new_id, SliceId(3));
        assert!(target.domains().has_slice(new_id));
        assert_eq!(target.num_slices(), 4);
        let imported = target.index_of(new_id).unwrap();
        assert_eq!(
            serde_json::to_string(&target.agents()[imported]).unwrap(),
            serde_json::to_string(&reference.agents()[index]).unwrap()
        );
    }

    #[test]
    fn reserved_slice_ids_are_never_handed_out_again() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        assert_eq!(orch.reserve_slice_id(), SliceId(3));
        let (agent, env) = extra_slice(SliceKind::Hvs, 500);
        assert_eq!(orch.admit_slice(agent, env).unwrap(), SliceId(4));
        assert!(orch.index_of(SliceId(3)).is_none());
    }

    #[test]
    fn sla_renegotiation_reaches_agent_and_environment() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        let loose = Sla::for_kind(SliceKind::Hvs).with_cost_threshold(0.5);
        orch.renegotiate_sla(SliceId(1), loose).unwrap();
        assert_eq!(orch.agents()[1].sla().cost_threshold, 0.5);
        assert_eq!(orch.env().envs()[1].sla().cost_threshold, 0.5);
        assert!(orch
            .renegotiate_sla(SliceId(9), Sla::for_kind(SliceKind::Mar))
            .is_err());
    }

    #[test]
    fn serialized_orchestrator_resumes_bit_for_bit() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.offline_pretrain_all(1);
        orch.env_mut().reset_all();
        for _ in 0..3 {
            orch.run_slot(true);
        }
        let json = serde_json::to_string(&orch).unwrap();
        let mut restored: Orchestrator = serde_json::from_str(&json).unwrap();
        for _ in 0..5 {
            let original = orch.run_slot(true);
            let resumed = restored.run_slot(true);
            assert_eq!(original, resumed);
        }
    }

    #[test]
    fn orchestrator_errors_are_typed_and_matchable() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        match orch.teardown_slice(SliceId(9)) {
            Err(OrchestratorError::InactiveSlice(id)) => assert_eq!(id, SliceId(9)),
            other => panic!("expected InactiveSlice, got {other:?}"),
        }
        assert_eq!(
            orch.renegotiate_sla(SliceId(9), Sla::for_kind(SliceKind::Mar))
                .unwrap_err(),
            OrchestratorError::InactiveSlice(SliceId(9))
        );
        // Pre-registering the next id at the domain layer makes the domain
        // managers reject the admission — the Domain variant carries both
        // the id and the manager's reason.
        orch.domains_mut().create_slice(SliceId(3)).unwrap();
        let (agent, env) = extra_slice(SliceKind::Rdc, 600);
        match orch.admit_slice(agent, env) {
            Err(OrchestratorError::Domain { id, reason }) => {
                assert_eq!(id, SliceId(3));
                assert!(reason.contains("already exists"), "reason: {reason}");
            }
            other => panic!("expected Domain rejection, got {other:?}"),
        }
        // Legacy call sites keep working through the String conversion.
        let text: String = OrchestratorError::InactiveSlice(SliceId(9)).into();
        assert!(text.contains("not an active slice"));
    }

    #[test]
    fn slot_aggregate_folds_the_full_outcome() {
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        orch.env_mut().reset_all();
        let outcome = orch.run_slot(true);
        let agg = outcome.aggregate();
        assert_eq!(agg.slices, outcome.kpis.len());
        assert_eq!(agg.interactions, outcome.interactions);
        let total: f64 = outcome.kpis.iter().map(|k| k.cost).sum();
        assert!((agg.total_cost - total).abs() < 1e-12);
        let usage: f64 = outcome
            .kpis
            .iter()
            .map(|k| k.resource_usage_percent())
            .sum::<f64>()
            / outcome.kpis.len() as f64;
        assert!((agg.mean_usage_percent - usage).abs() < 1e-12);
        assert_eq!(
            SlotOutcome {
                decisions: Vec::new(),
                executed: Vec::new(),
                kpis: Vec::new(),
                interactions: 2,
            }
            .aggregate(),
            SlotAggregate {
                slices: 0,
                interactions: 2,
                total_cost: 0.0,
                mean_usage_percent: 0.0,
            }
        );
    }

    #[test]
    fn fused_slot_is_bit_identical_to_the_reference_path() {
        // Two clones of the same deployment: one runs the fused path, the
        // other the dispatched reference. Outcomes — decisions, samples,
        // executed actions, KPIs, interaction counts — must match
        // bit-for-bit in both learning and evaluation mode, and the agents
        // themselves (weights, RNG streams, buffers) must stay serialization-
        // equal throughout.
        let mut fused = build(AgentConfig::onslicing(), CoordinationMode::default());
        fused.offline_pretrain_all(1);
        let mut reference = fused.clone();
        fused.env_mut().reset_all();
        reference.env_mut().reset_all();
        assert!(fused.cell_is_fusable());
        for slot in 0..6 {
            let learn = slot % 2 == 0;
            let a = fused.run_slot(learn);
            let b = reference.run_slot_reference(learn);
            assert_eq!(a, b, "slot {slot} (learn={learn}) diverged");
        }
        for (a, b) in fused.agents().iter().zip(reference.agents()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        assert_eq!(
            serde_json::to_string(fused.env()).unwrap(),
            serde_json::to_string(reference.env()).unwrap()
        );
    }

    #[test]
    fn fused_slot_matches_reference_through_admission_and_teardown() {
        // Ragged cell sizes mid-run: admit a fourth slice, then tear down a
        // middle one, running fused and reference side by side throughout —
        // including down to a single slice and an empty cell.
        let mut fused = build(AgentConfig::onslicing(), CoordinationMode::default());
        let mut reference = fused.clone();
        fused.env_mut().reset_all();
        reference.env_mut().reset_all();
        assert_eq!(fused.run_slot(true), reference.run_slot_reference(true));

        for orch in [&mut fused, &mut reference] {
            let (agent, env) = extra_slice(SliceKind::Mar, 400);
            orch.admit_slice(agent, env).unwrap();
        }
        assert_eq!(fused.run_slot(true), reference.run_slot_reference(true));

        for orch in [&mut fused, &mut reference] {
            orch.teardown_slice(SliceId(1)).unwrap();
        }
        assert_eq!(fused.run_slot(false), reference.run_slot_reference(false));

        // Down to one slice, then none.
        for id in [SliceId(0), SliceId(2)] {
            for orch in [&mut fused, &mut reference] {
                orch.teardown_slice(id).unwrap();
            }
            assert_eq!(fused.run_slot(true), reference.run_slot_reference(true));
        }
        assert_eq!(fused.num_slices(), 1);
        for orch in [&mut fused, &mut reference] {
            orch.teardown_slice(SliceId(3)).unwrap();
        }
        assert_eq!(fused.num_slices(), 0);
        assert_eq!(fused.run_slot(true), reference.run_slot_reference(true));
        for (a, b) in fused.agents().iter().zip(reference.agents()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn fused_epoch_matches_reference_updates() {
        // A full learning epoch through the fused path (shared PPO scratch)
        // against one whose updates run through each agent's own scratch:
        // the resulting weights, optimizer moments and RNG streams must be
        // serialization-equal.
        let mut fused = build(AgentConfig::onslicing(), CoordinationMode::default());
        fused.offline_pretrain_all(1);
        let mut reference = fused.clone();

        let m1 = fused.run_epoch();

        reference.env_mut().reset_all();
        let horizon = reference.env().envs()[0].horizon();
        for _ in 0..horizon {
            reference.run_slot_reference(true);
        }
        for agent in reference.agents_mut() {
            agent.end_episode();
        }
        for agent in reference.agents_mut() {
            agent.update_policy();
        }
        assert_eq!(m1.num_slice_episodes, 3);
        for (a, b) in fused.agents().iter().zip(reference.agents()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn heterogeneous_trunks_fall_back_to_the_reference_path() {
        // An orchestrator whose extra agent uses the small networks is not
        // fusable; run_slot must still work (via the dispatched fallback)
        // and keep producing feasible actions.
        let mut orch = build(AgentConfig::onslicing(), CoordinationMode::default());
        let network = NetworkConfig::testbed_default();
        let kind = SliceKind::Mar;
        let sla = Sla::for_kind(kind);
        let baseline = RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &network,
            kind.default_peak_users_per_second(),
            4,
            700,
        );
        let env = crate::env::SliceEnvironment::new(kind, network, 700);
        let horizon = env.horizon();
        // `scaled_down` switches every agent to the small trunks, so a
        // full-size newcomer is what makes the cell heterogeneous.
        let mut config = AgentConfig::onslicing().scaled_down(horizon);
        config.use_small_networks = false;
        let agent = OnSlicingAgent::new(kind, sla, baseline, config, 700);
        orch.admit_slice(agent, env).unwrap();
        assert!(!orch.cell_is_fusable());
        orch.env_mut().reset_all();
        let outcome = orch.run_slot(true);
        assert_eq!(outcome.executed.len(), 4);
        assert!(orch.domains().is_feasible(outcome.executed.iter()));
    }

    #[test]
    #[should_panic(expected = "one agent per slice environment")]
    fn mismatched_agent_count_is_rejected() {
        let network = NetworkConfig::testbed_default();
        let env = MultiSliceEnvironment::testbed_default(network, 1);
        let _ = Orchestrator::new(
            env,
            Vec::new(),
            DomainSet::testbed_default(),
            OrchestratorConfig::default(),
        );
    }
}
