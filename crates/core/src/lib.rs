//! # onslicing-core
//!
//! The OnSlicing orchestration layer: per-slice safe online DRL agents, the
//! distributed action-modification/coordination mechanism, the comparison
//! policies and the experiment plumbing that reproduces the paper's
//! evaluation.
//!
//! * [`env`] — the gym-style per-slice environment (15-minute slots, 96-slot
//!   episodes) over the `onslicing_netsim` simulator;
//! * [`agent`] — the OnSlicing agent combining `π_θ` (PPO), `π_b` (rule-based
//!   baseline), `π_φ` (variational cost estimator) and `π_a` (action
//!   modifier), with every paper ablation expressed as an [`AgentConfig`]
//!   preset;
//! * [`modifier`] — the Eq. 13 action modifier;
//! * [`baselines`] — the rule-based grid-search baseline and the model-based
//!   comparator;
//! * [`orchestrator`] — the multi-slice orchestration loop with β-priced
//!   coordination or projection;
//! * [`experiment`] / [`metrics`] — deployment builder, policy evaluation and
//!   the usage/violation metrics of the paper's tables and figures.
//!
//! ```no_run
//! use onslicing_core::experiment::DeploymentBuilder;
//!
//! // A scaled-down end-to-end run: calibrate baselines, pre-train offline,
//! // learn online for a few epochs, then evaluate.
//! let mut orchestrator = DeploymentBuilder::new().scaled_down(24).seed(7).build();
//! orchestrator.offline_pretrain_all(2);
//! let curve = orchestrator.run_online(3);
//! let test = orchestrator.evaluate(2);
//! println!("final usage {:.1}%, violation {:.1}%", test.avg_usage_percent, test.violation_percent);
//! assert_eq!(curve.len(), 3);
//! ```

pub mod agent;
pub mod baselines;
pub mod env;
pub mod experiment;
pub mod metrics;
pub mod modifier;
pub mod orchestrator;

pub use agent::{AgentConfig, Decision, OnSlicingAgent, PretrainReport};
pub use baselines::{FixedPolicy, ModelBasedPolicy, RuleBasedBaseline, SlicePolicy};
pub use env::{MultiSliceEnvironment, SliceEnvironment, StepResult};
pub use experiment::{evaluate_policy, DeploymentBuilder};
pub use metrics::{EpisodeMetrics, EpochMetrics, PolicyEvaluation, SliceEpisodeSummary};
pub use modifier::{ActionModifier, ModifierConfig};
pub use orchestrator::{
    CoordinationMode, Orchestrator, OrchestratorConfig, OrchestratorError, SliceCheckpoint,
    SlotAggregate, SlotOutcome,
};
