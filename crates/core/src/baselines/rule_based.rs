//! The rule-based baseline policy (paper §7.1, "Baseline").
//!
//! The paper builds its baseline in three steps: (1) identify the key action
//! factors of each slice offline ([U_u, U_b, U_c] for MAR, [U_d, U_b] for
//! HVS, [U_m, U_s] for RDC), (2) grid-search the minimum resource usage that
//! meets the slice's performance requirement at each traffic level, and (3)
//! let the domain managers project over-requests. This module reproduces
//! steps (1) and (2): [`RuleBasedBaseline::calibrate`] runs the grid search
//! against the network simulator and stores one action per traffic bucket;
//! at run time the policy looks up the bucket of the observed traffic.
//!
//! The same object serves as the baseline policy `π_b` that the OnSlicing
//! agent imitates offline (Eq. 15) and proactively switches to (Eq. 8).

use serde::{Deserialize, Serialize};

use onslicing_netsim::{NetworkConfig, NetworkSimulator};
use onslicing_slices::{Action, Sla, SliceKind, SliceState};

use super::SlicePolicy;

/// Safety margin on the performance score required during calibration: a
/// candidate counts as "meeting the requirement" only if its score stays
/// above `1 + CALIBRATION_MARGIN` in the evaluation slots, so that run-time
/// noise does not immediately cause violations.
const CALIBRATION_MARGIN: f64 = 0.08;

/// Number of simulated slots used to evaluate one candidate at one traffic
/// level.
const EVAL_SLOTS: usize = 3;

/// The grid-searched rule-based baseline for one slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleBasedBaseline {
    kind: SliceKind,
    /// One pre-computed action per traffic bucket (index 0 = idle, last =
    /// peak traffic).
    table: Vec<Action>,
    num_buckets: usize,
}

impl RuleBasedBaseline {
    /// Runs the offline grid search for the given slice on the given network
    /// and returns the calibrated policy.
    ///
    /// `peak_rate` is the slice's peak arrival rate in users/s (the value its
    /// normalized traffic observation is scaled by).
    pub fn calibrate(
        kind: SliceKind,
        sla: &Sla,
        network: &NetworkConfig,
        peak_rate: f64,
        num_buckets: usize,
        seed: u64,
    ) -> Self {
        assert!(num_buckets >= 2, "need at least two traffic buckets");
        assert!(peak_rate > 0.0, "peak rate must be positive");
        let mut sim = NetworkSimulator::new(network.with_seed(seed));
        let candidates = Self::candidates(kind);
        let mut table = Vec::with_capacity(num_buckets + 1);
        for bucket in 0..=num_buckets {
            // Evaluate at the bucket's *upper* edge so the chosen action is
            // conservative for every traffic level that maps to the bucket.
            let arrival = peak_rate * (bucket as f64 / num_buckets as f64);
            let mut best: Option<(f64, Action)> = None;
            for candidate in &candidates {
                if Self::meets_requirement(&mut sim, kind, sla, candidate, arrival) {
                    let usage = candidate.resource_usage();
                    if best.as_ref().is_none_or(|(u, _)| usage < *u) {
                        best = Some((usage, *candidate));
                    }
                }
            }
            // If nothing meets the requirement (e.g. the traffic exceeds what
            // any single-slice allocation can serve), fall back to the most
            // generous candidate.
            let chosen = best.map(|(_, a)| a).unwrap_or_else(|| {
                *candidates
                    .iter()
                    .max_by(|a, b| a.resource_usage().partial_cmp(&b.resource_usage()).unwrap())
                    .expect("candidate grid is never empty")
            });
            table.push(chosen);
        }
        Self {
            kind,
            table,
            num_buckets,
        }
    }

    /// The slice this baseline was calibrated for.
    pub fn kind(&self) -> SliceKind {
        self.kind
    }

    /// The calibrated lookup table (one action per traffic bucket).
    pub fn table(&self) -> &[Action] {
        &self.table
    }

    /// The action chosen for a given normalized traffic level in `[0, 1]`.
    pub fn action_for_traffic(&self, normalized_traffic: f64) -> Action {
        let t = normalized_traffic.clamp(0.0, 1.0);
        let bucket = (t * self.num_buckets as f64).ceil() as usize;
        self.table[bucket.min(self.num_buckets)]
    }

    /// Default values of the non-key action dimensions for each slice kind.
    ///
    /// Every dimension a slice genuinely needs is kept comfortably above the
    /// point where the service collapses (≥ 0.08): the baseline is the policy
    /// the learning agent imitates and explores *around*, and razor-thin
    /// allocations would turn ordinary exploration noise into total outages —
    /// something an operator-crafted rule would never do either.
    fn default_action(kind: SliceKind) -> Action {
        match kind {
            SliceKind::Mar => Action {
                ul_bandwidth: 0.1,
                ul_mcs_offset: 0.0,
                ul_scheduler: 0.5,
                dl_bandwidth: 0.12,
                dl_mcs_offset: 0.0,
                dl_scheduler: 0.5,
                tn_bandwidth: 0.05,
                tn_path: 0.3,
                cpu: 0.12,
                ram: 0.3,
            },
            SliceKind::Hvs => Action {
                ul_bandwidth: 0.08,
                ul_mcs_offset: 0.0,
                ul_scheduler: 0.5,
                dl_bandwidth: 0.12,
                dl_mcs_offset: 0.0,
                dl_scheduler: 0.5,
                tn_bandwidth: 0.05,
                tn_path: 0.3,
                cpu: 0.12,
                ram: 0.25,
            },
            SliceKind::Rdc => Action {
                ul_bandwidth: 0.08,
                ul_mcs_offset: 0.0,
                ul_scheduler: 0.2,
                dl_bandwidth: 0.08,
                dl_mcs_offset: 0.0,
                dl_scheduler: 0.2,
                tn_bandwidth: 0.05,
                tn_path: 0.1,
                cpu: 0.12,
                ram: 0.1,
            },
        }
    }

    /// The candidate grid over the slice's key action factors, applied on top
    /// of the defaults.
    fn candidates(kind: SliceKind) -> Vec<Action> {
        let base = Self::default_action(kind);
        let bandwidth_grid = [0.08, 0.12, 0.16, 0.2, 0.3, 0.4, 0.5, 0.7];
        let cpu_grid = [0.08, 0.12, 0.16, 0.2, 0.3, 0.4, 0.5, 0.7];
        let tn_grid = [0.05, 0.08, 0.12, 0.2];
        let offset_grid = [0.0, 0.2, 0.4, 0.6, 0.8];
        let mut out = Vec::new();
        match kind {
            SliceKind::Mar => {
                for &uu in &bandwidth_grid {
                    for &uc in &cpu_grid {
                        for &ub in &tn_grid {
                            let mut a = base;
                            a.ul_bandwidth = uu;
                            a.cpu = uc;
                            a.tn_bandwidth = ub;
                            out.push(a);
                        }
                    }
                }
            }
            SliceKind::Hvs => {
                for &ud in &bandwidth_grid {
                    for &ub in &tn_grid {
                        let mut a = base;
                        a.dl_bandwidth = ud;
                        a.tn_bandwidth = ub;
                        out.push(a);
                    }
                }
            }
            SliceKind::Rdc => {
                for &um in &offset_grid {
                    for &us in &offset_grid {
                        let mut a = base;
                        a.ul_mcs_offset = um;
                        a.dl_mcs_offset = us;
                        out.push(a);
                    }
                }
            }
        }
        out
    }

    /// Whether a candidate keeps the slice's performance score above the
    /// calibration margin at the given arrival rate.
    fn meets_requirement(
        sim: &mut NetworkSimulator,
        kind: SliceKind,
        sla: &Sla,
        candidate: &Action,
        arrival_rate: f64,
    ) -> bool {
        for _ in 0..EVAL_SLOTS {
            let kpi = sim.step_slice(kind, sla, candidate, arrival_rate);
            if kpi.performance_score < 1.0 + CALIBRATION_MARGIN {
                return false;
            }
        }
        true
    }
}

impl SlicePolicy for RuleBasedBaseline {
    fn act(&self, state: &SliceState) -> Action {
        self.action_for_traffic(state.traffic)
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SliceEnvironment;

    fn calibrated(kind: SliceKind) -> RuleBasedBaseline {
        let sla = Sla::for_kind(kind);
        RuleBasedBaseline::calibrate(
            kind,
            &sla,
            &NetworkConfig::testbed_default(),
            kind.default_peak_users_per_second(),
            5,
            123,
        )
    }

    #[test]
    fn calibration_produces_one_action_per_bucket() {
        let b = calibrated(SliceKind::Mar);
        assert_eq!(b.table().len(), 6);
        assert_eq!(b.kind(), SliceKind::Mar);
    }

    #[test]
    fn allocations_grow_with_traffic() {
        let b = calibrated(SliceKind::Mar);
        let low = b.action_for_traffic(0.1).resource_usage();
        let high = b.action_for_traffic(1.0).resource_usage();
        assert!(
            high >= low,
            "peak-traffic allocation {high} should not be below idle {low}"
        );
    }

    #[test]
    fn rdc_calibration_selects_a_positive_mcs_offset() {
        let b = calibrated(SliceKind::Rdc);
        let at_peak = b.action_for_traffic(1.0);
        assert!(
            at_peak.ul_mcs_offset_steps() >= 4,
            "RDC needs a large uplink MCS offset, got {}",
            at_peak.ul_mcs_offset_steps()
        );
    }

    #[test]
    fn baseline_keeps_every_slice_violation_free_over_an_episode() {
        for kind in SliceKind::ALL {
            let baseline = calibrated(kind);
            let mut env = SliceEnvironment::new(kind, NetworkConfig::testbed_default(), 7);
            env.reset();
            loop {
                let action = baseline.act(&env.state());
                if env.step(&action).done {
                    break;
                }
            }
            assert!(
                !env.is_violated(),
                "{kind}: baseline violated its SLA (avg cost {})",
                env.average_cost()
            );
        }
    }

    #[test]
    fn baseline_uses_substantially_less_than_full_allocation() {
        let b = calibrated(SliceKind::Hvs);
        let at_peak = b.action_for_traffic(1.0);
        assert!(at_peak.resource_usage_percent() < 60.0);
    }

    #[test]
    fn action_for_traffic_clamps_out_of_range_inputs() {
        let b = calibrated(SliceKind::Hvs);
        assert_eq!(b.action_for_traffic(-1.0), b.table()[0]);
        assert_eq!(b.action_for_traffic(2.0), *b.table().last().unwrap());
    }
}
