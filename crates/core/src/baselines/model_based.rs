//! The model-based comparison method (paper §7.1, "Model_Based").
//!
//! The paper's model-based method sizes each slice's resources from
//! approximate analytic performance models — `p_MAR = (f·s)/U_u + l_s` for
//! the AR latency, `p_HVS = U_d/(f·s)` for the streaming rate, and a fixed
//! MCS offset `U_m = 6, U_s = 0` for RDC reliability picked from the Fig. 6
//! measurements — and solves the usage-minimization problem with CVXPY.
//!
//! The defining property of this method is that its models do **not** capture
//! queueing, HARQ overhead or edge-compute contention, so it simultaneously
//! over-provisions the dimensions its models do cover (it adds safety
//! margins everywhere) and under-provisions the ones they ignore — which is
//! exactly why the paper measures it as the most expensive method *and* the
//! one with a noticeable SLA violation rate (Table 1: 59.04 % usage, 3.13 %
//! violation). This implementation mirrors those modeling choices.

use serde::{Deserialize, Serialize};

use onslicing_netsim::SliceWorkload;
use onslicing_slices::{Action, Sla, SliceKind, SliceState};

use super::SlicePolicy;

/// The analytic, model-driven policy for one slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelBasedPolicy {
    kind: SliceKind,
    /// Peak arrival rate (users/s) used to de-normalize the traffic
    /// observation.
    peak_rate: f64,
    /// Assumed full-carrier uplink capacity in Mbps (the linear link model).
    assumed_ul_capacity_mbps: f64,
    /// Assumed full-carrier downlink capacity in Mbps.
    assumed_dl_capacity_mbps: f64,
    /// Assumed static (non-transmission) latency in ms for the MAR model.
    assumed_static_latency_ms: f64,
    /// Multiplicative safety margin applied to every model-derived share.
    safety_margin: f64,
    /// The SLA the sizing is done against.
    sla: Sla,
}

impl ModelBasedPolicy {
    /// Creates the model-based policy with the paper-style assumptions.
    pub fn new(kind: SliceKind, sla: Sla, peak_rate: f64) -> Self {
        Self {
            kind,
            peak_rate,
            // The analytic model assumes the link delivers a fixed capacity
            // proportional to the share — ignoring MCS adaptation, HARQ and
            // queueing.
            assumed_ul_capacity_mbps: 25.0,
            assumed_dl_capacity_mbps: 50.0,
            assumed_static_latency_ms: 250.0,
            safety_margin: 1.5,
            sla,
        }
    }

    /// The slice this policy sizes resources for.
    pub fn kind(&self) -> SliceKind {
        self.kind
    }

    /// Resource sizing at an explicit arrival rate (users/s).
    pub fn action_for_arrival_rate(&self, arrival_rate: f64) -> Action {
        let workload = SliceWorkload::for_kind(self.kind);
        let f = arrival_rate.max(0.0);
        match self.kind {
            SliceKind::Mar => {
                // p_MAR = (f·s)/R_u + l_s ≤ P  with R_u = U_u · C_ul:
                // the share must carry the offered bit-rate within the
                // latency budget that remains after the assumed static part.
                let budget_s = ((self.sla.performance_target - self.assumed_static_latency_ms)
                    / 1e3)
                    .max(0.05);
                let offered_mbps = workload.ul_demand_mbps(f);
                let required_mbps =
                    (workload.ul_bits_per_request / 1e6 / budget_s).max(offered_mbps);
                let uu = (required_mbps / self.assumed_ul_capacity_mbps * self.safety_margin)
                    .clamp(0.05, 1.0);
                Action {
                    ul_bandwidth: uu,
                    ul_mcs_offset: 0.0,
                    ul_scheduler: 0.5,
                    dl_bandwidth: 0.15,
                    dl_mcs_offset: 0.0,
                    dl_scheduler: 0.5,
                    tn_bandwidth: 0.1,
                    tn_path: 0.5,
                    // The analytic model has no term for edge-compute
                    // queueing; a flat allocation is assumed sufficient,
                    // which is the source of its peak-traffic violations.
                    cpu: 0.28,
                    ram: 0.4,
                }
            }
            SliceKind::Hvs => {
                // p_HVS = U_d / (f·s) ≥ 1  →  U_d ≥ f·s / C_dl.
                let offered_mbps = workload.dl_demand_mbps(f);
                let ud = (offered_mbps / self.assumed_dl_capacity_mbps * self.safety_margin)
                    .clamp(0.05, 1.0);
                Action {
                    ul_bandwidth: 0.08,
                    ul_mcs_offset: 0.0,
                    ul_scheduler: 0.5,
                    dl_bandwidth: ud,
                    dl_mcs_offset: 0.0,
                    dl_scheduler: 0.5,
                    tn_bandwidth: 0.1,
                    tn_path: 0.5,
                    cpu: 0.15,
                    ram: 0.35,
                }
            }
            SliceKind::Rdc => Action {
                // The Fig. 6 measurement-driven choice: U_m = 6, U_s = 0.
                ul_bandwidth: 0.15,
                ul_mcs_offset: 0.6,
                ul_scheduler: 0.2,
                dl_bandwidth: 0.15,
                dl_mcs_offset: 0.0,
                dl_scheduler: 0.2,
                tn_bandwidth: 0.05,
                tn_path: 0.3,
                cpu: 0.15,
                ram: 0.15,
            },
        }
    }
}

impl SlicePolicy for ModelBasedPolicy {
    fn act(&self, state: &SliceState) -> Action {
        self.action_for_arrival_rate(state.traffic * self.peak_rate)
    }

    fn name(&self) -> &'static str {
        "Model_Based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::rule_based::RuleBasedBaseline;
    use crate::env::SliceEnvironment;
    use onslicing_netsim::NetworkConfig;

    fn policy(kind: SliceKind) -> ModelBasedPolicy {
        ModelBasedPolicy::new(
            kind,
            Sla::for_kind(kind),
            kind.default_peak_users_per_second(),
        )
    }

    #[test]
    fn mar_sizing_grows_with_traffic() {
        let p = policy(SliceKind::Mar);
        let low = p.action_for_arrival_rate(1.0);
        let high = p.action_for_arrival_rate(5.0);
        assert!(high.ul_bandwidth > low.ul_bandwidth);
        assert!(high.resource_usage() > low.resource_usage());
    }

    #[test]
    fn rdc_uses_the_measured_mcs_offsets() {
        let p = policy(SliceKind::Rdc);
        let a = p.action_for_arrival_rate(100.0);
        assert_eq!(a.ul_mcs_offset_steps(), 6);
        assert_eq!(a.dl_mcs_offset_steps(), 0);
    }

    #[test]
    fn model_based_is_more_expensive_than_the_grid_searched_baseline() {
        // Table 1's qualitative ordering: Model_Based uses more resources
        // than Baseline on average.
        let network = NetworkConfig::testbed_default();
        let mut total_model = 0.0;
        let mut total_baseline = 0.0;
        for kind in SliceKind::ALL {
            let sla = Sla::for_kind(kind);
            let model = policy(kind);
            let baseline = RuleBasedBaseline::calibrate(
                kind,
                &sla,
                &network,
                kind.default_peak_users_per_second(),
                5,
                1,
            );
            for t in [0.2, 0.5, 0.8, 1.0] {
                let rate = t * kind.default_peak_users_per_second();
                total_model += model.action_for_arrival_rate(rate).resource_usage();
                total_baseline += baseline.action_for_traffic(t).resource_usage();
            }
        }
        assert!(
            total_model > total_baseline,
            "model-based total {total_model} should exceed baseline total {total_baseline}"
        );
    }

    #[test]
    fn model_based_violates_occasionally_on_the_mar_slice() {
        // The analytic model ignores edge-compute queueing; at peak MAR
        // traffic this should cost it some latency headroom (non-zero cost in
        // at least a few slots), mirroring the paper's 3.13 % violation rate.
        let p = policy(SliceKind::Mar);
        let mut env = SliceEnvironment::new(SliceKind::Mar, NetworkConfig::testbed_default(), 5);
        env.reset();
        let mut positive_cost_slots = 0;
        loop {
            let action = p.act(&env.state());
            let r = env.step(&action);
            if r.kpi.cost > 0.0 {
                positive_cost_slots += 1;
            }
            if r.done {
                break;
            }
        }
        assert!(
            positive_cost_slots > 0,
            "the mis-specified analytic model should miss the SLA in at least one slot"
        );
    }

    #[test]
    fn actions_are_valid_for_all_slices_and_rates() {
        for kind in SliceKind::ALL {
            let p = policy(kind);
            for rate in [0.0, 0.5, 2.0, 5.0, 100.0] {
                let a = p.action_for_arrival_rate(rate);
                for v in a.to_vec() {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }
}
