//! Comparison policies: the rule-based baseline and the model-based method.
//!
//! The paper compares OnSlicing against three non-learning or differently-
//! learning methods (§7.1):
//!
//! * **Baseline** — a rule-based policy built by offline grid search over each
//!   slice's key action factors ([`rule_based::RuleBasedBaseline`]); it is
//!   also the policy `π_b` the OnSlicing agent imitates offline and switches
//!   to proactively;
//! * **Model_Based** — closed-form resource sizing from approximate analytic
//!   performance models ([`model_based::ModelBasedPolicy`]);
//! * **OnRL** — an online DRL comparator that learns from scratch with reward
//!   shaping and projection; it shares the learning machinery of the
//!   OnSlicing agent and is therefore expressed as an agent variant in
//!   [`crate::agent`], not here.

pub mod model_based;
pub mod rule_based;

pub use model_based::ModelBasedPolicy;
pub use rule_based::RuleBasedBaseline;

use onslicing_slices::{Action, SliceState};

/// A deterministic per-slice orchestration policy (no learning).
pub trait SlicePolicy {
    /// The action to execute for the upcoming slot given the current
    /// observation.
    fn act(&self, state: &SliceState) -> Action;

    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;
}

/// A policy that always requests the same action — useful as a control in
/// tests and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPolicy {
    /// The action returned for every state.
    pub action: Action,
}

impl SlicePolicy for FixedPolicy {
    fn act(&self, _state: &SliceState) -> Action {
        self.action
    }

    fn name(&self) -> &'static str {
        "Fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_slices::{Sla, SliceKind};

    #[test]
    fn fixed_policy_ignores_the_state() {
        let p = FixedPolicy {
            action: Action::uniform(0.3),
        };
        let sla = Sla::for_kind(SliceKind::Mar);
        let s1 = SliceState::initial(&sla, 0.1);
        let s2 = SliceState::initial(&sla, 0.9);
        assert_eq!(p.act(&s1), p.act(&s2));
        assert_eq!(p.name(), "Fixed");
    }
}
