//! The live elastic fleet: the scripted runner's step loop extracted into
//! an externally drivable, checkpointable state machine.
//!
//! [`crate::ElasticFleetRunner`] executes a whole [`FleetScenario`] in one
//! call; a long-running service cannot — it must advance the fleet in
//! bounded windows, apply control requests (admissions, teardowns, SLA
//! renegotiations) between them, snapshot itself on a cadence and survive
//! a stop → restart cycle bit-for-bit. [`ElasticFleet`] is that machine:
//!
//! * [`ElasticFleet::advance_to`] steps every cell rayon-parallel to the
//!   next **sync point** (a balancer cadence boundary, a scripted
//!   fleet-admission slot, or the caller's target), running the sequential
//!   fleet layer — scripted admissions routed least-utilized-first, then
//!   the balancer round — exactly where the scripted runner would. The
//!   runner is now a thin wrapper: build, `advance_to(total_slots)`,
//!   [`ElasticFleet::finish`]; its traces are byte-identical to before the
//!   extraction.
//! * [`ElasticFleet::admit`] / [`ElasticFleet::inject_cell_event`] apply
//!   live control between windows through the same admission-reservation
//!   rule ([`ScenarioEngine::check_admission`]) the scripted paths use, so
//!   a fleet driven by a logged request stream is bit-for-bit a fleet with
//!   those events spliced into the timeline.
//! * [`ElasticFleet::checkpoint`] freezes everything — every cell's
//!   deployment and telemetry recorder, the balancer's window baselines,
//!   the scripted-timeline cursor and the admission counters — into a
//!   versioned [`FleetCheckpoint`] whose restore continues the run
//!   byte-exactly.
//!
//! ## Sync-point invariant
//!
//! At every public API boundary (after `new`, `advance_to` or `restore`),
//! all internal sync points at slots `<=` the current slot have been
//! processed. That makes the processed-sync cursor a pure function of the
//! current slot, so checkpoints don't store it and a restored fleet cannot
//! re-run (or skip) a balancer round.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use onslicing_replay::{atomic_write, peek_format_version, TelemetryRecorder};
use onslicing_scenario::{
    FleetScenario, LiveEventOutcome, ScenarioEngine, ScenarioEvent, SliceSpec,
};

use crate::balancer::{cell_utilization, CellRuntime, FleetBalancer, MigrationRecord};
use crate::elastic::ElasticFleetConfig;
use crate::{
    aggregate_fleet, CellOutcome, CellTraceEntry, FleetOutcome, FleetTrace,
    FLEET_TRACE_FORMAT_VERSION,
};

/// Version stamp of the fleet-checkpoint JSON layout; bump on breaking
/// changes so stale files fail loudly instead of mis-restoring.
pub const FLEET_CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// A running elastic fleet that can be driven from outside: stepped in
/// windows, fed live control requests at window boundaries, checkpointed
/// and resumed. See the module docs for the contract.
#[derive(Debug)]
pub struct ElasticFleet {
    scenario: FleetScenario,
    config: ElasticFleetConfig,
    cells: Vec<CellRuntime>,
    balancer: FleetBalancer,
    migrations: Vec<MigrationRecord>,
    /// Cursor into the scripted fleet admissions (sorted by slot).
    next_admission: usize,
    fleet_admissions_granted: usize,
    fleet_admissions_denied: usize,
    /// Internal sync points (balancer cadence boundaries and scripted
    /// fleet-admission slots, plus the scenario end), ascending. Recomputed
    /// from the scenario and config — never serialized.
    sync_points: Vec<usize>,
    /// First entry of `sync_points` strictly above the current slot.
    next_sync: usize,
}

impl ElasticFleet {
    /// Checks that `scenario` and `config` form a buildable fleet, without
    /// building one — the runner's constructor-time validation.
    pub fn validate(scenario: &FleetScenario, config: &ElasticFleetConfig) -> Result<(), String> {
        scenario.validate()?;
        config.balancer.validate()?;
        if config.cells == 0 {
            return Err("an elastic fleet needs at least one cell".to_string());
        }
        if config.cells < scenario.min_cells {
            return Err(format!(
                "fleet scenario `{}` needs at least {} cells, configured {}",
                scenario.name, scenario.min_cells, config.cells
            ));
        }
        if config.cells > u32::MAX as usize {
            return Err("cell count exceeds the u32 cell-index space".to_string());
        }
        Ok(())
    }

    /// Validates the scenario and tuning, builds every cell (in parallel —
    /// construction is per-cell work like everything else) and processes
    /// any fleet-layer work scheduled at slot 0.
    pub fn new(scenario: FleetScenario, config: ElasticFleetConfig) -> Result<Self, String> {
        Self::validate(&scenario, &config)?;
        let total_slots = scenario.base.total_slots;
        // Cell timelines may reference ids only a fleet-routed admission
        // assigns; the engines must validate with that slack, exactly like
        // `FleetScenario::validate` does for the materialized scenarios.
        let admission_slack = scenario.fleet_admissions().len();
        let cells: Result<Vec<CellRuntime>, String> = (0..config.cells)
            .into_par_iter()
            .map(|i| {
                let cell = i as u32;
                let cell_config = config.base.for_cell(cell);
                let engine = ScenarioEngine::with_admission_slack(
                    scenario.scenario_for_cell(cell),
                    cell_config,
                    admission_slack,
                )?;
                let recorder = TelemetryRecorder::new(&engine);
                Ok(CellRuntime {
                    cell,
                    seed: cell_config.seed,
                    engine,
                    recorder,
                    slot_latencies_ms: Vec::with_capacity(total_slots),
                })
            })
            .collect();
        let cells = cells?;
        let balancer = FleetBalancer::new(config.balancer, cells.len());
        let mut fleet = Self::assemble(scenario, config, cells, balancer, Vec::new(), 0, 0, 0);
        // Establish the sync-point invariant: fleet-layer work scheduled at
        // slot 0 (a scripted admission, typically) runs before the caller
        // sees the fleet — exactly where the scripted runner would run it.
        // `assemble` positions the cursor *past* every sync point at or
        // before the current slot, which is right for restored checkpoints
        // (their slot-0 work ran before capture) but would silently drop a
        // slot-0 admission on a fresh fleet: rewind before processing.
        fleet.next_sync = 0;
        fleet.process_due_syncs()?;
        Ok(fleet)
    }

    /// Builds the struct and positions the sync cursor per the invariant.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        scenario: FleetScenario,
        config: ElasticFleetConfig,
        cells: Vec<CellRuntime>,
        balancer: FleetBalancer,
        migrations: Vec<MigrationRecord>,
        next_admission: usize,
        fleet_admissions_granted: usize,
        fleet_admissions_denied: usize,
    ) -> Self {
        let sync_points = compute_sync_points(&scenario, &config);
        let slot = cells.first().map(|c| c.engine.current_slot()).unwrap_or(0);
        let next_sync = sync_points.partition_point(|s| *s <= slot);
        Self {
            scenario,
            config,
            cells,
            balancer,
            migrations,
            next_admission,
            fleet_admissions_granted,
            fleet_admissions_denied,
            sync_points,
            next_sync,
        }
    }

    /// The fleet scenario.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &ElasticFleetConfig {
        &self.config
    }

    /// The current global slot. All cells are aligned at every public API
    /// boundary, so the first cell speaks for the fleet.
    pub fn slot(&self) -> usize {
        self.cells[0].engine.current_slot()
    }

    /// Scheduled end of the scenario, in slots.
    pub fn total_slots(&self) -> usize {
        self.scenario.base.total_slots
    }

    /// Whether every scheduled slot has executed.
    pub fn is_complete(&self) -> bool {
        self.slot() >= self.total_slots()
    }

    /// The live cells, in cell order.
    pub fn cells(&self) -> &[CellRuntime] {
        &self.cells
    }

    /// Migrations applied so far, in application order.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Fleet-routed admissions granted so far (scripted and live alike).
    pub fn fleet_admissions_granted(&self) -> usize {
        self.fleet_admissions_granted
    }

    /// Fleet-routed admissions denied fleet-wide so far.
    pub fn fleet_admissions_denied(&self) -> usize {
        self.fleet_admissions_denied
    }

    /// Total active slices across the fleet.
    pub fn active_slices(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.engine.orchestrator().num_slices())
            .sum()
    }

    /// Deterministic per-cell utilization (worst-resource enforced share),
    /// in cell order.
    pub fn cell_utilizations(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| cell_utilization(&c.engine))
            .collect()
    }

    /// Runs the sequential fleet layer of every sync point due at or before
    /// the current slot: scripted fleet admissions first, then the balancer
    /// round when the sync sits on the cadence. The scenario-end pseudo-sync
    /// does no fleet work.
    fn process_due_syncs(&mut self) -> Result<(), String> {
        let slot = self.slot();
        let total = self.total_slots();
        while self.next_sync < self.sync_points.len() && self.sync_points[self.next_sync] <= slot {
            let sync = self.sync_points[self.next_sync];
            self.next_sync += 1;
            if sync >= total {
                continue;
            }
            let admissions = self.scenario.fleet_admissions();
            while self.next_admission < admissions.len()
                && admissions[self.next_admission].0 <= sync
            {
                let (_, spec) = admissions[self.next_admission];
                self.next_admission += 1;
                match route_fleet_admission(&mut self.cells, &spec, sync) {
                    Some(_) => self.fleet_admissions_granted += 1,
                    None => self.fleet_admissions_denied += 1,
                }
            }
            // The cadence schedule starts at `1 * cadence_slots` (see
            // `compute_sync_points`); `sync == 0` only ever appears here
            // because a scripted fleet admission sits at slot 0, and slot 0
            // satisfies `is_multiple_of` for every cadence — without the
            // guard that admission would trigger an unscheduled balancer
            // round before any slot has executed.
            if self.config.balancer.enabled
                && sync > 0
                && sync.is_multiple_of(self.config.balancer.cadence_slots)
            {
                let migrated = self.balancer.rebalance(sync, &mut self.cells)?;
                self.migrations.extend(migrated);
            }
        }
        Ok(())
    }

    /// Advances the fleet to global slot `target` (clamped to the scenario
    /// end): windows of rayon-parallel per-cell stepping separated by the
    /// sequential fleet layer at every internal sync point on the way.
    /// Returns the slot actually reached. A `target` at or below the
    /// current slot is a no-op.
    pub fn advance_to(&mut self, target: usize) -> Result<usize, String> {
        let target = target.min(self.total_slots());
        loop {
            self.process_due_syncs()?;
            let slot = self.slot();
            if slot >= target {
                return Ok(slot);
            }
            let stop = self
                .sync_points
                .get(self.next_sync)
                .copied()
                .unwrap_or(self.total_slots())
                .min(target);
            self.cells.par_iter_mut().for_each(|c| {
                while c.engine.current_slot() < stop {
                    // detlint: allow(wall-clock) -- report-only: slot
                    // latencies feed the report's percentile fields; every
                    // balancer plan reads deterministic signals only.
                    let slot_start = std::time::Instant::now();
                    c.engine.step_slot(&mut c.recorder);
                    c.slot_latencies_ms
                        .push(slot_start.elapsed().as_secs_f64() * 1_000.0);
                }
            });
        }
    }

    /// Admits a slice at the current window boundary through the fleet
    /// admission controller: cells are tried least-utilized first and the
    /// slice lands on the first whose own reservation-aware admission check
    /// accepts it. Returns the hosting `(cell, slice_id)` pair, or `None`
    /// for a fleet-wide denial. Counted alongside the scripted fleet
    /// admissions.
    pub fn admit(&mut self, spec: &SliceSpec) -> Option<(u32, u32)> {
        let slot = self.slot();
        // A fleet at its scenario end executes no further slots, so a
        // slice granted here would never run (and its zero-slot episode
        // would pollute the final aggregation): deny fleet-wide.
        if self.is_complete() {
            self.fleet_admissions_denied += 1;
            return None;
        }
        match route_fleet_admission(&mut self.cells, spec, slot) {
            Some(placement) => {
                self.fleet_admissions_granted += 1;
                Some(placement)
            }
            None => {
                self.fleet_admissions_denied += 1;
                None
            }
        }
    }

    /// Applies one scenario event to a specific cell at the current window
    /// boundary, exactly as if the cell's timeline had scheduled it here
    /// (slice ids are the target cell's own). Denials and skips are
    /// outcomes; an unknown cell or invalid event is an error.
    pub fn inject_cell_event(
        &mut self,
        cell: u32,
        event: &ScenarioEvent,
    ) -> Result<LiveEventOutcome, String> {
        let index = self
            .cells
            .iter()
            .position(|c| c.cell == cell)
            .ok_or_else(|| format!("no such cell {cell} (fleet has {})", self.cells.len()))?;
        let c = &mut self.cells[index];
        c.engine.inject_event(event, &mut c.recorder)
    }

    /// Freezes the complete fleet state into a versioned checkpoint.
    /// Call between windows (the cells must be aligned), never from inside
    /// an observer callback.
    pub fn checkpoint(&self) -> FleetCheckpoint {
        FleetCheckpoint {
            format_version: FLEET_CHECKPOINT_FORMAT_VERSION,
            scenario_name: self.scenario.name.clone(),
            master_seed: self.config.base.seed,
            slot: self.slot(),
            total_slots: self.total_slots(),
            scenario: self.scenario.clone(),
            config: self.config,
            cells: self
                .cells
                .iter()
                .map(|c| CellRuntime {
                    cell: c.cell,
                    seed: c.seed,
                    engine: c.engine.clone(),
                    recorder: c.recorder.clone(),
                    slot_latencies_ms: c.slot_latencies_ms.clone(),
                })
                .collect(),
            balancer: self.balancer.clone(),
            migrations: self.migrations.clone(),
            next_admission: self.next_admission,
            fleet_admissions_granted: self.fleet_admissions_granted,
            fleet_admissions_denied: self.fleet_admissions_denied,
        }
    }

    /// Closes every cell's final partial episodes and aggregates the fleet
    /// outcome — trace, report, per-cell breakdown. Only a complete fleet
    /// can finish; a service that stops early checkpoints instead.
    /// `wall_clock_ms` is the caller-measured wall time of the run (report
    /// only; zero is fine for resumed service runs where it is meaningless).
    pub fn finish(self, wall_clock_ms: f64) -> Result<FleetOutcome, String> {
        if !self.is_complete() {
            return Err(format!(
                "cannot finish an incomplete fleet run (slot {} of {})",
                self.slot(),
                self.total_slots()
            ));
        }
        let outcomes: Result<Vec<CellOutcome>, String> = self
            .cells
            .into_par_iter()
            .map(|mut c| {
                let report = c.engine.run_with_observer(&mut c.recorder);
                if report.has_non_finite() {
                    return Err(format!(
                        "cell {} (seed {}) produced non-finite metrics",
                        c.cell, c.seed
                    ));
                }
                Ok(CellOutcome {
                    cell: c.cell,
                    seed: c.seed,
                    report,
                    trace: c.recorder.finalize(),
                    slot_latencies_ms: c.slot_latencies_ms,
                })
            })
            .collect();
        let outcomes = outcomes?;
        let mut report = aggregate_fleet(
            &self.scenario.name,
            self.config.base.seed,
            &outcomes,
            wall_clock_ms,
        );
        report.migrations = self.migrations;
        report.fleet_admissions_granted = self.fleet_admissions_granted;
        report.fleet_admissions_denied = self.fleet_admissions_denied;
        let trace = FleetTrace {
            format_version: FLEET_TRACE_FORMAT_VERSION,
            scenario: self.scenario.name.clone(),
            master_seed: self.config.base.seed,
            cells: outcomes
                .iter()
                .map(|c| CellTraceEntry {
                    cell: c.cell,
                    seed: c.seed,
                    trace: c.trace.clone(),
                })
                .collect(),
        };
        Ok(FleetOutcome {
            report,
            trace,
            cells: outcomes,
        })
    }
}

/// The internal sync points of a fleet run: scripted fleet-admission slots
/// and balancer cadence boundaries, plus the scenario end, ascending and
/// deduplicated — the exact schedule the scripted runner has always used.
fn compute_sync_points(scenario: &FleetScenario, config: &ElasticFleetConfig) -> Vec<usize> {
    let total = scenario.base.total_slots;
    let mut points: Vec<usize> = scenario
        .fleet_admissions()
        .iter()
        .map(|(slot, _)| *slot)
        .collect();
    if config.balancer.enabled {
        let cadence = config.balancer.cadence_slots;
        points.extend((1..).map(|k| k * cadence).take_while(|s| *s < total));
    }
    points.push(total);
    points.sort_unstable();
    points.dedup();
    points
}

/// Routes one fleet-level admission: cells are tried least-utilized first
/// (ties toward the lower index), and the slice lands on the first cell
/// whose own [`ScenarioEngine::check_admission`] accepts it — that check
/// reserves the estimated share of every slice already granted at this
/// boundary (fleet admissions and migrations alike). Returns the hosting
/// `(cell, slice_id)` pair, or `None` for a fleet-wide denial.
fn route_fleet_admission(
    cells: &mut [CellRuntime],
    spec: &SliceSpec,
    slot: usize,
) -> Option<(u32, u32)> {
    let utilizations: Vec<f64> = cells.iter().map(|c| cell_utilization(&c.engine)).collect();
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        utilizations[a]
            .partial_cmp(&utilizations[b])
            .expect("utilization is never NaN")
            .then(a.cmp(&b))
    });
    for i in order {
        if cells[i].engine.check_admission().is_ok() {
            let slice = cells[i].engine.force_admit(spec, slot);
            return Some((cells[i].cell, slice.0));
        }
    }
    None
}

/// A versioned, self-describing snapshot of a whole elastic fleet run:
/// every cell's deployment and telemetry recorder, the balancer's window
/// baselines, the scripted-timeline cursor and the admission counters.
/// Restoring continues the run byte-exactly — the final trace of a resumed
/// fleet is byte-identical to the uninterrupted run's.
#[derive(Debug, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// Layout version ([`FLEET_CHECKPOINT_FORMAT_VERSION`] at capture).
    pub format_version: u32,
    /// Fleet scenario name.
    pub scenario_name: String,
    /// Fleet master seed.
    pub master_seed: u64,
    /// Next global slot the restored fleet will execute.
    pub slot: usize,
    /// Scheduled scenario length in slots.
    pub total_slots: usize,
    scenario: FleetScenario,
    config: ElasticFleetConfig,
    cells: Vec<CellRuntime>,
    balancer: FleetBalancer,
    migrations: Vec<MigrationRecord>,
    next_admission: usize,
    fleet_admissions_granted: usize,
    fleet_admissions_denied: usize,
}

impl FleetCheckpoint {
    /// Consumes the checkpoint and rebuilds the live fleet. The processed
    /// sync-point cursor is recomputed from the restored slot (see the
    /// module docs' invariant), so nothing replays and nothing is skipped.
    pub fn restore(self) -> Result<ElasticFleet, String> {
        if self.cells.is_empty() {
            return Err("fleet checkpoint holds no cells".to_string());
        }
        // The balancer's window baselines were sized for the fleet shape at
        // capture time; restoring them against a different cell count would
        // index out of bounds inside a later rebalancing round. Fail loudly
        // here instead.
        self.balancer
            .validate_cells(self.cells.len())
            .map_err(|e| format!("fleet checkpoint is inconsistent: {e}"))?;
        Ok(ElasticFleet::assemble(
            self.scenario,
            self.config,
            self.cells,
            self.balancer,
            self.migrations,
            self.next_admission,
            self.fleet_admissions_granted,
            self.fleet_admissions_denied,
        ))
    }

    /// The balance policy the checkpointed run was using. A resume must run
    /// the same one, or its trace would splice two deterministic histories.
    pub fn balance_policy(&self) -> crate::BalancePolicyName {
        self.config.balancer.policy
    }

    /// The admission policy the checkpointed run was using.
    pub fn admission_policy(&self) -> onslicing_scenario::AdmissionPolicyName {
        self.config.base.admission.policy
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet checkpoint serialization cannot fail")
    }

    /// Parses a fleet checkpoint, rejecting unknown layout versions with a
    /// clear version error (the stamp is peeked before the structural
    /// parse, like the single-cell [`onslicing_replay::Checkpoint`]).
    pub fn from_json(text: &str) -> Result<Self, String> {
        peek_format_version(text, "fleet checkpoint", FLEET_CHECKPOINT_FORMAT_VERSION)?;
        let checkpoint: FleetCheckpoint =
            serde_json::from_str(text).map_err(|e| format!("malformed fleet checkpoint: {e}"))?;
        Ok(checkpoint)
    }

    /// Writes the checkpoint crash-safely (temp file + fsync + atomic
    /// rename): a crash mid-save never leaves a torn file where the
    /// previous checkpoint was.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        atomic_write(path.as_ref(), &self.to_json())
            .map_err(|e| format!("cannot write fleet checkpoint: {e}"))
    }

    /// Reads and validates a fleet checkpoint file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            format!(
                "cannot read fleet checkpoint {}: {e}",
                path.as_ref().display()
            )
        })?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::BalancerConfig;
    use onslicing_scenario::{fleet_by_name, Scenario};
    use onslicing_slices::SliceKind;

    fn tiny_fleet_scenario() -> FleetScenario {
        let base = Scenario::new("tiny-live", 8, 32)
            .with_capacity(1.5)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Rdc));
        FleetScenario::new(base, 1).fleet_admit(4, SliceSpec::new(SliceKind::Hvs))
    }

    fn quick_config(cells: usize) -> ElasticFleetConfig {
        ElasticFleetConfig::new(cells)
            .with_seed(11)
            .with_balancer(BalancerConfig {
                cadence_slots: 8,
                ..BalancerConfig::default()
            })
    }

    #[test]
    fn stepwise_advance_matches_one_shot_runner_bit_for_bit() {
        // The extracted machine, driven in awkward uneven windows, must
        // produce the exact trace of the scripted runner's single run().
        let runner =
            crate::ElasticFleetRunner::new(tiny_fleet_scenario(), quick_config(2)).unwrap();
        let reference = runner.run().unwrap();

        let mut fleet = ElasticFleet::new(tiny_fleet_scenario(), quick_config(2)).unwrap();
        for target in [1usize, 4, 5, 9, 16, 17, 31, 32, 32] {
            fleet.advance_to(target).unwrap();
        }
        assert!(fleet.is_complete());
        let outcome = fleet.finish(0.0).unwrap();
        assert_eq!(outcome.trace.to_json(), reference.trace.to_json());
        assert_eq!(
            outcome.report.fleet_admissions_granted + outcome.report.fleet_admissions_denied,
            1
        );
    }

    #[test]
    fn checkpoint_resume_continues_bit_for_bit() {
        // Snapshot mid-run (JSON round-trip included), continue both
        // copies, and require byte-identical final traces.
        let mut fleet = ElasticFleet::new(tiny_fleet_scenario(), quick_config(2)).unwrap();
        fleet.advance_to(13).unwrap();
        let snapshot = FleetCheckpoint::from_json(&fleet.checkpoint().to_json()).unwrap();
        assert_eq!(snapshot.slot, 13);

        fleet.advance_to(32).unwrap();
        let reference = fleet.finish(0.0).unwrap();

        let mut resumed = snapshot.restore().unwrap();
        assert_eq!(resumed.slot(), 13);
        resumed.advance_to(32).unwrap();
        let outcome = resumed.finish(0.0).unwrap();
        assert_eq!(outcome.trace.to_json(), reference.trace.to_json());
    }

    #[test]
    fn live_admissions_and_events_apply_at_boundaries() {
        let mut fleet = ElasticFleet::new(tiny_fleet_scenario(), quick_config(2)).unwrap();
        fleet.advance_to(8).unwrap();
        // Admit until denial: the reservation rule must eventually say no,
        // and both outcomes update the fleet counters.
        let mut granted = 0;
        for _ in 0..64 {
            match fleet.admit(&SliceSpec::new(SliceKind::Hvs)) {
                Some((cell, _)) => {
                    assert!((cell as usize) < 2);
                    granted += 1;
                }
                None => break,
            }
        }
        assert!(granted > 0, "at least one live admission must fit");
        assert!(fleet.fleet_admissions_denied() > 0 || granted == 64);
        // A teardown of a real slice applies; an unknown cell errors.
        let victim = fleet.cells()[0]
            .engine
            .orchestrator()
            .slice_ids()
            .iter()
            .map(|id| id.0)
            .max()
            .unwrap();
        assert_eq!(
            fleet
                .inject_cell_event(0, &ScenarioEvent::TeardownSlice { slice: victim })
                .unwrap(),
            LiveEventOutcome::Applied
        );
        assert!(fleet
            .inject_cell_event(7, &ScenarioEvent::TeardownSlice { slice: 0 })
            .is_err());
        fleet.advance_to(32).unwrap();
        assert!(fleet.finish(0.0).is_ok());
    }

    #[test]
    fn incomplete_fleets_refuse_to_finish_and_stale_versions_fail_clearly() {
        let mut fleet = ElasticFleet::new(tiny_fleet_scenario(), quick_config(1)).unwrap();
        fleet.advance_to(4).unwrap();
        let checkpoint = fleet.checkpoint();
        assert!(fleet.finish(0.0).unwrap_err().contains("incomplete"));
        // Version gate: a stale stamp reports the version, not a missing
        // field; a missing stamp is malformed.
        let mut doctored = checkpoint.to_json();
        doctored = doctored.replacen("\"format_version\":1", "\"format_version\":9", 1);
        let err = FleetCheckpoint::from_json(&doctored).unwrap_err();
        assert_eq!(
            err,
            "fleet checkpoint format version 9 is not supported (expected 1)"
        );
        let err = FleetCheckpoint::from_json("{\"slot\":4}").unwrap_err();
        assert!(err.contains("missing format_version"), "{err}");
    }

    #[test]
    fn slot0_fleet_admission_is_adjudicated_without_a_balancer_round() {
        // A fleet admission scripted at slot 0 creates sync point 0. The
        // construction-time cursor must not skip it (the admission would be
        // adjudicated late — or never, with the balancer disabled), and the
        // balancer must not treat it as a cadence boundary (0 is a multiple
        // of every cadence, but the schedule starts at 1 · cadence).
        let base = Scenario::new("slot0-admit", 8, 16)
            .with_capacity(1.5)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs));
        let scenario = FleetScenario::new(base, 2).fleet_admit(0, SliceSpec::new(SliceKind::Rdc));

        let config = ElasticFleetConfig::new(2)
            .with_seed(3)
            .with_balancer(BalancerConfig {
                cadence_slots: 8,
                min_load_gap: 0.0,
                ..BalancerConfig::default()
            });
        let fleet = ElasticFleet::new(scenario.clone(), config).unwrap();
        assert_eq!(
            fleet.fleet_admissions_granted() + fleet.fleet_admissions_denied(),
            1,
            "the slot-0 admission must be adjudicated before the caller sees the fleet"
        );
        assert!(
            fleet.migrations().is_empty(),
            "no balancer round may run at slot 0"
        );

        // With the balancer disabled the end pseudo-sync is the only other
        // sync point and it does no fleet work — slot 0 is the one chance.
        let config = ElasticFleetConfig::new(2)
            .with_seed(3)
            .with_balancer(BalancerConfig::disabled());
        let mut fleet = ElasticFleet::new(scenario, config).unwrap();
        assert_eq!(
            fleet.fleet_admissions_granted() + fleet.fleet_admissions_denied(),
            1
        );
        fleet.advance_to(16).unwrap();
        let outcome = fleet.finish(0.0).unwrap();
        assert_eq!(
            outcome.report.fleet_admissions_granted + outcome.report.fleet_admissions_denied,
            1
        );
    }

    #[test]
    fn cell_events_may_reference_fleet_admitted_ids() {
        // The cell timeline names slice 1, an id only the fleet-routed
        // admission assigns: the cell engines must validate with the same
        // admission slack FleetScenario::validate grants.
        let base = Scenario::new("fleet-admitted-id", 4, 8).slice(SliceSpec::new(SliceKind::Mar));
        let scenario = FleetScenario::new(base, 1)
            .fleet_admit(1, SliceSpec::new(SliceKind::Hvs))
            .at_cell(
                4,
                0,
                ScenarioEvent::SetTrafficScale {
                    slice: 1,
                    scale: 2.0,
                },
            );
        scenario.validate().unwrap();
        let mut fleet =
            ElasticFleet::new(scenario, ElasticFleetConfig::new(1).with_seed(7)).unwrap();
        fleet.advance_to(8).unwrap();
        fleet.finish(0.0).unwrap();
    }

    #[test]
    fn completed_fleet_denies_live_admissions() {
        let mut fleet = ElasticFleet::new(tiny_fleet_scenario(), quick_config(1)).unwrap();
        fleet.advance_to(32).unwrap();
        assert!(fleet.is_complete());
        let denied_before = fleet.fleet_admissions_denied();
        assert_eq!(
            fleet.admit(&SliceSpec::new(SliceKind::Mar)),
            None,
            "a slice granted at the scenario end would never execute a slot"
        );
        assert_eq!(fleet.fleet_admissions_denied(), denied_before + 1);
        fleet.finish(0.0).unwrap();
    }

    #[test]
    fn builtin_fleet_scenarios_run_through_the_live_machine() {
        // hotspot-shift exercises migrations + fleet admissions end to end
        // through advance_to; the result must match the scripted runner.
        let scenario = fleet_by_name("hotspot-shift").unwrap();
        let config = ElasticFleetConfig::new(2).with_seed(5);
        let reference = crate::ElasticFleetRunner::new(scenario.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let mut fleet = ElasticFleet::new(scenario, config).unwrap();
        let total = fleet.total_slots();
        let mut target = 7;
        while !fleet.is_complete() {
            fleet.advance_to(target.min(total)).unwrap();
            target += 7;
        }
        let outcome = fleet.finish(0.0).unwrap();
        assert_eq!(outcome.trace.to_json(), reference.trace.to_json());
        assert_eq!(outcome.report.migrations, reference.report.migrations);
    }
}
