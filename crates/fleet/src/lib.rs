//! # onslicing-fleet
//!
//! Fleet-scale multi-cell orchestration: partitions a large slice
//! population across `N` independent **cells** — each cell a complete
//! deployment (its own [`onslicing_core::Orchestrator`], multi-slice
//! environment and scenario timeline) — executes the cells in parallel
//! with `rayon` (nested above the per-slice fan-out inside every
//! orchestrator), and aggregates the per-cell telemetry into one
//! fleet-level report.
//!
//! This is the scale axis of conf_conext_LiuCH21's per-slice-parallel
//! design taken one level up: slice-local work dominates and cross-slice
//! coordination is confined to a cell, so cells share *nothing* — no RNG,
//! no capacity, no coordination state — and a fleet of `N` cells is `N`
//! shards of one keyed seed family rather than one giant coordination
//! domain.
//!
//! ## Determinism
//!
//! Every cell's master seed is [`onslicing_scenario::derive_cell_seed`] of
//! the fleet seed, so the fleet is as reproducible as a single scenario
//! run: the [`FleetTrace`] (the concatenation of the per-cell telemetry
//! traces, in cell order) is **byte-identical** whatever the rayon worker
//! count, extending the repository's thread-count determinism gate to
//! fleets. Wall-clock metrics (latency percentiles, throughput) live only
//! in the [`FleetReport`], never in the trace.
//!
//! ## Throughput accounting
//!
//! Two throughput numbers are reported, because they answer different
//! questions:
//!
//! * [`FleetReport::slice_slots_per_second`] — executed slice-slots divided
//!   by the fleet's wall-clock time **on this machine**: what this host
//!   actually sustained (bounded by its core count).
//! * [`FleetReport::aggregate_cell_slots_per_second`] — the sum of the
//!   cells' individual rates: the shared-nothing **capacity** of the fleet,
//!   i.e. what the same cells deliver when placed on independent hardware.
//!   Because cells share no state, this is the number that scales with the
//!   cell count; the `fleet_runner` bench tracks its scaling curve.

use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use onslicing_replay::{percentile, TelemetryRecorder, TelemetryTrace};
use onslicing_scenario::{Scenario, ScenarioConfig, ScenarioEngine, ScenarioReport};

pub mod balancer;
pub mod elastic;
pub mod live;
pub mod policy;

pub use balancer::{cell_utilization, BalancerConfig, CellRuntime, FleetBalancer, MigrationRecord};
pub use elastic::{ElasticFleetConfig, ElasticFleetRunner};
pub use live::{ElasticFleet, FleetCheckpoint, FLEET_CHECKPOINT_FORMAT_VERSION};
pub use policy::{
    balance_policy_by_name, balance_policy_names, BalancePolicy, BalancePolicyName, BalanceSignals,
    BALANCE_POLICIES,
};

/// Version stamp of the fleet-trace JSON layout; bump on breaking changes.
pub const FLEET_TRACE_FORMAT_VERSION: u32 = 1;

/// Tuning of a fleet run: the cell count plus the per-cell scenario
/// configuration whose `seed` acts as the fleet-wide master seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of independent cells.
    pub cells: usize,
    /// Base per-cell configuration; `base.seed` is the fleet master seed
    /// from which every cell's own seed is derived.
    pub base: ScenarioConfig,
}

impl FleetConfig {
    /// A fleet of `cells` cells with the default scenario tuning.
    pub fn new(cells: usize) -> Self {
        Self {
            cells,
            base: ScenarioConfig::default(),
        }
    }

    /// Replaces the fleet master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.seed = seed;
        self
    }
}

/// One cell's complete outcome: the scenario report, the deterministic
/// telemetry trace and the measured per-slot wall-clock latencies.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell index (0-based).
    pub cell: u32,
    /// The cell's derived master seed.
    pub seed: u64,
    /// The cell's scenario report.
    pub report: ScenarioReport,
    /// The cell's telemetry trace (deterministic).
    pub trace: TelemetryTrace,
    /// Wall-clock latency of every executed scenario slot, in milliseconds.
    pub slot_latencies_ms: Vec<f64>,
}

/// Per-cell row of the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Cell index.
    pub cell: u32,
    /// The cell's derived master seed.
    pub seed: u64,
    /// Largest number of concurrently active slices in the cell.
    pub peak_slices: usize,
    /// Executed slice-slots.
    pub slice_slots: usize,
    /// Closed slice-episodes.
    pub episodes: usize,
    /// Episodes that violated their SLA.
    pub violations: usize,
    /// Percentage of episodes that violated their SLA.
    pub sla_violation_percent: f64,
    /// Mean episode-average cost.
    pub avg_cost: f64,
    /// Mean per-slice-slot cost (the engine's cheap slot-level fold).
    pub avg_slot_cost: f64,
    /// The cell's own wall-clock, in milliseconds.
    pub wall_clock_ms: f64,
    /// The cell's own throughput in slice-slots per second.
    pub slice_slots_per_second: f64,
    /// Median per-slot wall-clock latency, in milliseconds.
    pub slot_latency_p50_ms: f64,
    /// 99th-percentile per-slot wall-clock latency, in milliseconds.
    pub slot_latency_p99_ms: f64,
}

/// The aggregated outcome of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Scenario executed by every cell.
    pub scenario: String,
    /// Fleet master seed.
    pub master_seed: u64,
    /// Number of cells.
    pub cells: usize,
    /// Sum over cells of the peak concurrent slice count — the fleet's
    /// slice population at its widest point.
    pub peak_slices: usize,
    /// Total executed slice-slots.
    pub slice_slots: usize,
    /// Total closed slice-episodes.
    pub slice_episodes: usize,
    /// Total episodes that violated their SLA.
    pub violations: usize,
    /// Fleet-wide SLA-violation percentage (violations / episodes).
    pub sla_violation_percent: f64,
    /// Mean episode-average cost, weighted by each cell's episode count.
    pub avg_cost: f64,
    /// Mean per-slice-slot cost across every cell, weighted by each cell's
    /// slice-slots — equals the mean of the concatenated per-cell slot
    /// samples, but computed from the cells' cheap slot-level folds.
    pub avg_slot_cost: f64,
    /// Median per-slice-slot cost across every cell (deterministic).
    pub cost_p50: f64,
    /// 90th-percentile per-slice-slot cost (deterministic).
    pub cost_p90: f64,
    /// 99th-percentile per-slice-slot cost (deterministic).
    pub cost_p99: f64,
    /// Fleet wall-clock of the parallel run, in milliseconds.
    pub wall_clock_ms: f64,
    /// Executed slice-slots per wall-clock second on this machine.
    pub slice_slots_per_second: f64,
    /// Sum of the cells' individual slice-slots-per-second rates: the
    /// shared-nothing capacity of the fleet (see the module docs).
    pub aggregate_cell_slots_per_second: f64,
    /// Median per-slot wall-clock latency across all cells' slots, in ms.
    pub slot_latency_p50_ms: f64,
    /// 90th-percentile per-slot latency, in ms.
    pub slot_latency_p90_ms: f64,
    /// 99th-percentile per-slot latency, in ms.
    pub slot_latency_p99_ms: f64,
    /// Live migrations the balancer applied, in application order (empty
    /// for frozen-sharding runs).
    pub migrations: Vec<MigrationRecord>,
    /// Fleet-routed admissions granted (placed on some cell).
    pub fleet_admissions_granted: usize,
    /// Fleet-routed admissions denied fleet-wide (no cell could host).
    pub fleet_admissions_denied: usize,
    /// Per-cell breakdown, in cell order.
    pub cells_detail: Vec<CellSummary>,
}

impl FleetReport {
    /// Whether any aggregate **or per-cell** metric is NaN or infinite (the
    /// CI smoke check). The gate is on `is_finite`, not `is_nan`: a cell
    /// whose SLA or cost metric overflowed to `±inf` is as broken as a NaN
    /// one and must not sail through.
    pub fn has_non_finite(&self) -> bool {
        let aggregate_broken = [
            self.sla_violation_percent,
            self.avg_cost,
            self.avg_slot_cost,
            self.cost_p50,
            self.cost_p90,
            self.cost_p99,
            self.wall_clock_ms,
            self.slice_slots_per_second,
            self.aggregate_cell_slots_per_second,
            self.slot_latency_p50_ms,
            self.slot_latency_p90_ms,
            self.slot_latency_p99_ms,
        ]
        .iter()
        .any(|v| !v.is_finite());
        aggregate_broken
            || self.cells_detail.iter().any(|c| {
                [
                    c.sla_violation_percent,
                    c.avg_cost,
                    c.avg_slot_cost,
                    c.wall_clock_ms,
                    c.slice_slots_per_second,
                    c.slot_latency_p50_ms,
                    c.slot_latency_p99_ms,
                ]
                .iter()
                .any(|v| !v.is_finite())
            })
    }
}

/// One cell's entry in the fleet trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTraceEntry {
    /// Cell index.
    pub cell: u32,
    /// The cell's derived master seed.
    pub seed: u64,
    /// The cell's full telemetry trace.
    pub trace: TelemetryTrace,
}

/// The deterministic telemetry artifact of one fleet run: the per-cell
/// traces in cell order, with no wall-clock fields — two runs of the same
/// fleet (same scenario, master seed and cell count) emit byte-identical
/// JSON whatever the rayon worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Layout version ([`FLEET_TRACE_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Scenario executed by every cell.
    pub scenario: String,
    /// Fleet master seed.
    pub master_seed: u64,
    /// Per-cell traces, in cell order.
    pub cells: Vec<CellTraceEntry>,
}

impl FleetTrace {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet trace serialization cannot fail")
    }

    /// Parses a fleet trace, rejecting unknown layout versions.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let trace: FleetTrace =
            serde_json::from_str(text).map_err(|e| format!("malformed fleet trace: {e}"))?;
        if trace.format_version != FLEET_TRACE_FORMAT_VERSION {
            return Err(format!(
                "fleet trace format version {} is not supported (expected {})",
                trace.format_version, FLEET_TRACE_FORMAT_VERSION
            ));
        }
        Ok(trace)
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        std::fs::write(path.as_ref(), self.to_json())
            .map_err(|e| format!("cannot write fleet trace {}: {e}", path.as_ref().display()))
    }
}

/// The complete outcome of [`FleetRunner::run`].
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The aggregated fleet report.
    pub report: FleetReport,
    /// The deterministic fleet trace.
    pub trace: FleetTrace,
    /// The raw per-cell outcomes, in cell order.
    pub cells: Vec<CellOutcome>,
}

/// The fleet runner: one scenario instantiated `N` times with derived
/// seeds, executed cell-parallel, aggregated into a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct FleetRunner {
    scenario: Scenario,
    config: FleetConfig,
}

impl FleetRunner {
    /// Validates the scenario and fleet tuning.
    pub fn new(scenario: Scenario, config: FleetConfig) -> Result<Self, String> {
        scenario.validate()?;
        if config.cells == 0 {
            return Err("a fleet needs at least one cell".to_string());
        }
        if config.cells > u32::MAX as usize {
            return Err("cell count exceeds the u32 cell-index space".to_string());
        }
        Ok(Self { scenario, config })
    }

    /// The per-cell scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The derived master seed of every cell, in cell order.
    pub fn cell_seeds(&self) -> Vec<u64> {
        (0..self.config.cells)
            .map(|i| self.config.base.for_cell(i as u32).seed)
            .collect()
    }

    /// Builds and executes every cell — in parallel across the rayon pool,
    /// each cell nesting the per-slice fan-out of its own orchestrator —
    /// and aggregates the outcomes. Cell construction (baseline
    /// calibration, offline pre-training) happens inside the parallel
    /// region too: it is per-cell work like everything else.
    pub fn run(&self) -> Result<FleetOutcome, String> {
        // detlint: allow(wall-clock) -- report-only: wall_clock_ms lands in
        // FleetReport; FleetTrace (the byte-compared artifact) excludes it.
        let start = Instant::now();
        let cells: Result<Vec<CellOutcome>, String> = (0..self.config.cells)
            .into_par_iter()
            .map(|i| run_cell(self.scenario.clone(), self.config.base, i as u32))
            .collect();
        let cells = cells?;
        let wall_clock_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let report = aggregate_fleet(
            &self.scenario.name,
            self.config.base.seed,
            &cells,
            wall_clock_ms,
        );
        let trace = FleetTrace {
            format_version: FLEET_TRACE_FORMAT_VERSION,
            scenario: self.scenario.name.clone(),
            master_seed: self.config.base.seed,
            cells: cells
                .iter()
                .map(|c| CellTraceEntry {
                    cell: c.cell,
                    seed: c.seed,
                    trace: c.trace.clone(),
                })
                .collect(),
        };
        Ok(FleetOutcome {
            report,
            trace,
            cells,
        })
    }
}

/// Builds and runs one cell: scenario instantiation with the derived seed,
/// slot-stepwise execution with per-slot latency measurement, telemetry
/// recording.
fn run_cell(scenario: Scenario, base: ScenarioConfig, cell: u32) -> Result<CellOutcome, String> {
    let config = base.for_cell(cell);
    let seed = config.seed;
    let mut engine = ScenarioEngine::new(scenario, config)?;
    let mut recorder = TelemetryRecorder::new(&engine);
    let total_slots = engine.scenario().total_slots;
    let mut slot_latencies_ms = Vec::with_capacity(total_slots);
    while engine.current_slot() < total_slots {
        // detlint: allow(wall-clock) -- report-only: slot latencies feed the
        // report's percentile fields; no trace or balancer plan reads them.
        let slot_start = Instant::now();
        engine.step_slot(&mut recorder);
        slot_latencies_ms.push(slot_start.elapsed().as_secs_f64() * 1_000.0);
    }
    // The timeline is exhausted; this call only closes the final partial
    // episodes and produces the aggregated report.
    let report = engine.run_with_observer(&mut recorder);
    if report.has_non_finite() {
        return Err(format!(
            "cell {cell} (seed {seed}) produced non-finite metrics"
        ));
    }
    Ok(CellOutcome {
        cell,
        seed,
        report,
        trace: recorder.finalize(),
        slot_latencies_ms,
    })
}

/// Folds per-cell outcomes into the fleet-level report.
///
/// Public so the aggregation math is property-testable: the fleet
/// SLA-violation percentage and every percentile must equal the values
/// recomputed from the concatenated per-cell samples.
pub fn aggregate_fleet(
    scenario: &str,
    master_seed: u64,
    cells: &[CellOutcome],
    wall_clock_ms: f64,
) -> FleetReport {
    let mut peak_slices = 0usize;
    let mut slice_slots = 0usize;
    let mut slice_episodes = 0usize;
    let mut violations = 0usize;
    let mut cost_weighted = 0.0;
    let mut slot_cost_weighted = 0.0;
    let mut aggregate_rate = 0.0;
    let mut slot_costs: Vec<f64> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut cells_detail = Vec::with_capacity(cells.len());
    for c in cells {
        let cell_violations: usize = c.report.slices.iter().map(|s| s.violations).sum();
        peak_slices += c.report.peak_concurrent_slices;
        slice_slots += c.report.slice_slots;
        slice_episodes += c.report.slice_episodes;
        violations += cell_violations;
        cost_weighted += c.report.avg_cost * c.report.slice_episodes as f64;
        slot_cost_weighted += c.report.avg_slot_cost * c.report.slice_slots as f64;
        aggregate_rate += c.report.slice_slots_per_second;
        for slot in &c.trace.slots {
            slot_costs.extend(slot.slices.iter().map(|s| s.cost));
        }
        latencies.extend_from_slice(&c.slot_latencies_ms);
        cells_detail.push(CellSummary {
            cell: c.cell,
            seed: c.seed,
            peak_slices: c.report.peak_concurrent_slices,
            slice_slots: c.report.slice_slots,
            episodes: c.report.slice_episodes,
            violations: cell_violations,
            sla_violation_percent: c.report.sla_violation_percent,
            avg_cost: c.report.avg_cost,
            avg_slot_cost: c.report.avg_slot_cost,
            wall_clock_ms: c.report.wall_clock_ms,
            slice_slots_per_second: c.report.slice_slots_per_second,
            slot_latency_p50_ms: percentile(&c.slot_latencies_ms, 50.0),
            slot_latency_p99_ms: percentile(&c.slot_latencies_ms, 99.0),
        });
    }
    FleetReport {
        scenario: scenario.to_string(),
        master_seed,
        cells: cells.len(),
        peak_slices,
        slice_slots,
        slice_episodes,
        violations,
        sla_violation_percent: if slice_episodes > 0 {
            100.0 * violations as f64 / slice_episodes as f64
        } else {
            0.0
        },
        avg_cost: if slice_episodes > 0 {
            cost_weighted / slice_episodes as f64
        } else {
            0.0
        },
        avg_slot_cost: if slice_slots > 0 {
            slot_cost_weighted / slice_slots as f64
        } else {
            0.0
        },
        cost_p50: percentile(&slot_costs, 50.0),
        cost_p90: percentile(&slot_costs, 90.0),
        cost_p99: percentile(&slot_costs, 99.0),
        wall_clock_ms,
        slice_slots_per_second: if wall_clock_ms > 0.0 {
            slice_slots as f64 / (wall_clock_ms / 1_000.0)
        } else {
            0.0
        },
        aggregate_cell_slots_per_second: aggregate_rate,
        slot_latency_p50_ms: percentile(&latencies, 50.0),
        slot_latency_p90_ms: percentile(&latencies, 90.0),
        slot_latency_p99_ms: percentile(&latencies, 99.0),
        // Elastic-fleet fields; the frozen runner never migrates and the
        // elastic runner overwrites these after aggregation.
        migrations: Vec::new(),
        fleet_admissions_granted: 0,
        fleet_admissions_denied: 0,
        cells_detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_scenario::{derive_cell_seed, SliceSpec};
    use onslicing_slices::SliceKind;

    fn tiny_scenario() -> Scenario {
        Scenario::new("tiny-fleet", 8, 16)
            .with_capacity(1.5)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Rdc))
    }

    #[test]
    fn fleet_run_aggregates_every_cell() {
        let runner = FleetRunner::new(tiny_scenario(), FleetConfig::new(3).with_seed(7)).unwrap();
        let outcome = runner.run().unwrap();
        let report = &outcome.report;
        assert_eq!(report.cells, 3);
        assert_eq!(report.scenario, "tiny-fleet");
        assert_eq!(report.master_seed, 7);
        // Two slices × 16 slots × 3 cells.
        assert_eq!(report.slice_slots, 2 * 16 * 3);
        assert_eq!(report.peak_slices, 6);
        assert!(report.slice_episodes > 0);
        assert!(!report.has_non_finite());
        assert!(
            report.migrations.is_empty(),
            "the frozen runner never migrates"
        );
        assert!(report.slice_slots_per_second > 0.0);
        assert!(report.aggregate_cell_slots_per_second > 0.0);
        assert!(report.slot_latency_p50_ms <= report.slot_latency_p99_ms);
        assert!(report.cost_p50 <= report.cost_p99);
        assert!(report.avg_slot_cost >= 0.0);
        assert_eq!(report.cells_detail.len(), 3);
        for (i, cell) in report.cells_detail.iter().enumerate() {
            assert_eq!(cell.cell, i as u32);
            assert_eq!(cell.seed, derive_cell_seed(7, i as u32));
            assert_eq!(cell.slice_slots, 32);
        }
        // Cells are distinct deployments: their seeds differ, and so do
        // their telemetry streams.
        assert_ne!(
            outcome.trace.cells[0].trace.to_json(),
            outcome.trace.cells[1].trace.to_json()
        );
    }

    #[test]
    fn fleet_traces_are_reproducible_and_version_gated() {
        let runner = FleetRunner::new(tiny_scenario(), FleetConfig::new(2).with_seed(3)).unwrap();
        let a = runner.run().unwrap().trace;
        let b = runner.run().unwrap().trace;
        assert_eq!(a.to_json(), b.to_json());
        let back = FleetTrace::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        let mut bad = a.clone();
        bad.format_version = 99;
        assert!(FleetTrace::from_json(&bad.to_json())
            .unwrap_err()
            .contains("version 99"));
    }

    #[test]
    fn non_finite_metrics_fail_the_smoke_gate() {
        let runner = FleetRunner::new(tiny_scenario(), FleetConfig::new(2).with_seed(1)).unwrap();
        let report = runner.run().unwrap().report;
        assert!(!report.has_non_finite());
        // An infinite aggregate metric must trip the gate — this is the
        // regression the old `is_nan()` check waved through.
        let mut infinite = report.clone();
        infinite.cost_p99 = f64::INFINITY;
        assert!(infinite.has_non_finite());
        let mut negative_infinite = report.clone();
        negative_infinite.avg_cost = f64::NEG_INFINITY;
        assert!(negative_infinite.has_non_finite());
        // NaN still fails, and per-cell breakdowns are gated too.
        let mut nan = report.clone();
        nan.sla_violation_percent = f64::NAN;
        assert!(nan.has_non_finite());
        let mut cell_broken = report;
        cell_broken.cells_detail[1].avg_slot_cost = f64::INFINITY;
        assert!(cell_broken.has_non_finite());
    }

    #[test]
    fn invalid_fleets_are_rejected() {
        assert!(FleetRunner::new(tiny_scenario(), FleetConfig::new(0)).is_err());
        let empty = Scenario::new("empty", 8, 16);
        assert!(FleetRunner::new(empty, FleetConfig::new(2)).is_err());
    }

    #[test]
    fn cell_seeds_match_the_scenario_derivation() {
        let runner = FleetRunner::new(tiny_scenario(), FleetConfig::new(5).with_seed(11)).unwrap();
        let seeds = runner.cell_seeds();
        assert_eq!(seeds.len(), 5);
        for (i, s) in seeds.iter().enumerate() {
            assert_eq!(*s, derive_cell_seed(11, i as u32));
        }
    }
}
