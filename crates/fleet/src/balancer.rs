//! The fleet balancer: deterministic live-migration planning over a set of
//! running cells.
//!
//! On a configurable cadence the balancer measures every cell's load and
//! migrates whole slices — agent weights, optimizer moments, RNG streams,
//! environment simulator and traffic cursors, the mid-episode position
//! included — from the most loaded cell to the least loaded one that still
//! passes the per-cell admission check. Migration is the checkpoint
//! machinery at work between cells: [`ScenarioEngine::extract_slice`]
//! detaches the slice, [`ScenarioEngine::inject_slice`] re-attaches it, and
//! nothing is reset or retrained on the way.
//!
//! ## Determinism contract
//!
//! Migration **plans are a pure function of deterministic state**: enforced
//! capacity shares (utilization) and closed-episode SLA violations. The
//! measured per-slot wall-clock latencies are deliberately *not* a policy
//! input — they differ run to run and machine to machine, and a plan based
//! on them would break the fleet's byte-identical-trace guarantee. Ties are
//! broken by cell index, the migrant is the source cell's highest slice id
//! (its most recently admitted slice), and the balancer runs between the
//! parallel stepping windows, so the same fleet produces the same migration
//! schedule whatever the rayon worker count.

use serde::{DeError, Deserialize, Serialize, Value};

use onslicing_replay::{MigrationEvent, TelemetryRecorder};
use onslicing_scenario::ScenarioEngine;
use onslicing_slices::{ResourceKind, SliceKind};

use crate::policy::{BalancePolicyName, BalanceSignals};

/// Tuning of the fleet balancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancerConfig {
    /// Whether rebalancing runs at all (off = PR 4's frozen sharding).
    pub enabled: bool,
    /// Slots between rebalancing rounds.
    pub cadence_slots: usize,
    /// Most migrations one round may apply.
    pub max_migrations_per_round: usize,
    /// Smallest source-minus-target load gap that justifies a migration;
    /// `f64::INFINITY` forces a no-op plan (the balancer measures but never
    /// moves — the control arm of the equivalence tests).
    pub min_load_gap: f64,
    /// Weight of the per-window SLA-violation rate in the load score (the
    /// utilization term has weight 1).
    pub violation_weight: f64,
    /// A source cell never drops to fewer active slices than this.
    pub min_slices_per_cell: usize,
    /// The registered migration strategy to plan with (default `greedy`).
    pub policy: BalancePolicyName,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // One episode of the CI-scale scenarios: migrating on episode
            // boundaries moves slices between days, not mid-day, so the
            // arriving slice starts a clean episode in its new home.
            cadence_slots: 12,
            max_migrations_per_round: 2,
            min_load_gap: 0.25,
            // Mild SLA feedback: utilization leads (it reacts within a
            // slot), violations confirm. A heavy violation weight makes
            // the balancer chase last window's pain back and forth.
            violation_weight: 0.5,
            min_slices_per_cell: 1,
            policy: BalancePolicyName::GREEDY,
        }
    }
}

// Hand-written instead of derived so that the `policy` field is optional on
// input (checkpoints and configs predating the registry carry none) and
// defaults to `greedy`, the historical behaviour.
impl Serialize for BalancerConfig {
    fn serialize_value(&self) -> Value {
        Value::Obj(vec![
            ("enabled".to_string(), self.enabled.serialize_value()),
            (
                "cadence_slots".to_string(),
                self.cadence_slots.serialize_value(),
            ),
            (
                "max_migrations_per_round".to_string(),
                self.max_migrations_per_round.serialize_value(),
            ),
            (
                "min_load_gap".to_string(),
                self.min_load_gap.serialize_value(),
            ),
            (
                "violation_weight".to_string(),
                self.violation_weight.serialize_value(),
            ),
            (
                "min_slices_per_cell".to_string(),
                self.min_slices_per_cell.serialize_value(),
            ),
            ("policy".to_string(), self.policy.serialize_value()),
        ])
    }
}

impl Deserialize for BalancerConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| DeError::msg(format!("BalancerConfig: missing field `{name}`")))
        };
        Ok(Self {
            enabled: bool::from_value(field("enabled")?)?,
            cadence_slots: usize::from_value(field("cadence_slots")?)?,
            max_migrations_per_round: usize::from_value(field("max_migrations_per_round")?)?,
            min_load_gap: f64::from_value(field("min_load_gap")?)?,
            violation_weight: f64::from_value(field("violation_weight")?)?,
            min_slices_per_cell: usize::from_value(field("min_slices_per_cell")?)?,
            policy: match v.get("policy") {
                Some(p) => BalancePolicyName::from_value(p)?,
                None => BalancePolicyName::GREEDY,
            },
        })
    }
}

impl BalancerConfig {
    /// A disabled balancer (frozen sharding).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// An enabled balancer whose plan is always empty: it measures on the
    /// normal cadence (so the run is window-stepped exactly like a
    /// balancing run) but the infinite load-gap threshold suppresses every
    /// migration.
    pub fn forced_noop() -> Self {
        Self {
            min_load_gap: f64::INFINITY,
            ..Self::default()
        }
    }

    /// Validates the tuning, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.cadence_slots == 0 {
            return Err("balancer cadence must be at least one slot".to_string());
        }
        if self.enabled && self.max_migrations_per_round == 0 {
            return Err("max_migrations_per_round must be at least 1".to_string());
        }
        if self.min_load_gap.is_nan() || self.min_load_gap < 0.0 {
            return Err(format!(
                "min_load_gap must be non-negative, got {}",
                self.min_load_gap
            ));
        }
        if !(self.violation_weight >= 0.0 && self.violation_weight.is_finite()) {
            return Err(format!(
                "violation_weight must be non-negative and finite, got {}",
                self.violation_weight
            ));
        }
        if self.min_slices_per_cell == 0 {
            return Err("min_slices_per_cell must be at least 1".to_string());
        }
        Ok(())
    }
}

/// One applied migration, in fleet-level terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Global slot the migration happened before.
    pub slot: usize,
    /// Source cell.
    pub from_cell: u32,
    /// The slice's id in the source cell.
    pub from_slice: u32,
    /// Target cell.
    pub to_cell: u32,
    /// The slice's id in the target cell.
    pub to_slice: u32,
    /// Application class of the migrated slice.
    pub kind: SliceKind,
}

/// One live cell of an elastic fleet run: its engine, telemetry recorder
/// and measured per-slot wall-clock latencies.
///
/// Serializable so a fleet checkpoint can freeze every cell whole —
/// deployment, telemetry-so-far and (report-only) latency samples — and a
/// restored cell continues exactly where the snapshot stopped.
#[derive(Debug, Serialize, Deserialize)]
pub struct CellRuntime {
    /// Cell index (0-based).
    pub cell: u32,
    /// The cell's derived master seed.
    pub seed: u64,
    /// The cell's live deployment.
    pub engine: ScenarioEngine,
    /// The cell's telemetry recorder (migrations included).
    pub recorder: TelemetryRecorder,
    /// Wall-clock latency of every executed slot, in milliseconds
    /// (report-only; never a balancer input).
    pub slot_latencies_ms: Vec<f64>,
}

/// Deterministic utilization of one cell: the worst resource's enforced
/// fraction of effective capacity. Above 1.0 means the enforced shares
/// exceed the (possibly fault-degraded) capacity — an overload the
/// coordination loop is squeezing.
pub fn cell_utilization(engine: &ScenarioEngine) -> f64 {
    let domains = engine.orchestrator().domains();
    ResourceKind::ALL
        .iter()
        .map(|r| {
            let capacity = domains.capacity_of(*r);
            if capacity > 0.0 {
                1.0 - domains.residual_capacity(*r) / capacity
            } else {
                1.0
            }
        })
        .fold(0.0, f64::max)
}

/// The balancer: plans and applies migrations between rebalancing windows.
///
/// Serializable (window baselines included) so a checkpointed fleet resumes
/// with the same per-window SLA pressure the uninterrupted run would see.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetBalancer {
    config: BalancerConfig,
    /// Violation/episode totals at the previous window boundary, per cell —
    /// the baseline the per-window SLA pressure is measured against.
    last_violations: Vec<usize>,
    last_episodes: Vec<usize>,
    /// Cost/slice-slot totals at the previous window boundary, per cell —
    /// the baseline the per-window cost rate (the `cost-aware` policy's
    /// signal) is measured against.
    last_cost_totals: Vec<f64>,
    last_cost_slots: Vec<usize>,
}

impl FleetBalancer {
    /// Creates a balancer for `cells` cells.
    pub fn new(config: BalancerConfig, cells: usize) -> Self {
        Self {
            config,
            last_violations: vec![0; cells],
            last_episodes: vec![0; cells],
            last_cost_totals: vec![0.0; cells],
            last_cost_slots: vec![0; cells],
        }
    }

    /// The balancer's configuration.
    pub fn config(&self) -> &BalancerConfig {
        &self.config
    }

    /// Checks that this balancer's per-cell window baselines match a fleet
    /// of `cells` cells — the guard a checkpoint restore runs so a snapshot
    /// restored into a differently-shaped fleet fails loudly instead of
    /// indexing out of bounds inside a later rebalancing round.
    pub fn validate_cells(&self, cells: usize) -> Result<(), String> {
        for (what, len) in [
            ("violation", self.last_violations.len()),
            ("episode", self.last_episodes.len()),
            ("cost-total", self.last_cost_totals.len()),
            ("cost-slot", self.last_cost_slots.len()),
        ] {
            if len != cells {
                return Err(format!(
                    "balancer {what} baselines cover {len} cell(s) but the fleet has {cells}"
                ));
            }
        }
        Ok(())
    }

    /// The weighted per-window SLA pressure of every cell: the violation
    /// rate of the episodes closed since the previous window, scaled by
    /// `violation_weight`. One of the two terms of the load score (the
    /// other, utilization, is re-measured after every migration).
    fn violation_terms(&self, cells: &[CellRuntime]) -> Vec<f64> {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let violations = c.engine.total_violations() - self.last_violations[i];
                let episodes = c.engine.total_episodes() - self.last_episodes[i];
                self.config.violation_weight * violations as f64 / episodes.max(1) as f64
            })
            .collect()
    }

    /// Per-slice-slot cost every cell accrued since the previous window
    /// boundary — the deterministic signal the `cost-aware` policy drains
    /// expensive cells by.
    fn window_cost_terms(&self, cells: &[CellRuntime]) -> Vec<f64> {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cost = c.engine.slot_cost_total() - self.last_cost_totals[i];
                let slots = c.engine.slice_slots() - self.last_cost_slots[i];
                cost / slots.max(1) as f64
            })
            .collect()
    }

    /// Runs one rebalancing round at global slot `slot`: repeatedly asks
    /// the configured [`crate::BalancePolicy`] for a `(source, target)`
    /// pair over the current deterministic signals and moves the source's
    /// highest-id slice there (earlier same-round arrivals' estimated
    /// shares reserved), until the policy declines or the per-round
    /// migration budget is spent. Records the departure/arrival pair in the
    /// cells' telemetry and returns the applied migrations.
    pub fn rebalance(
        &mut self,
        slot: usize,
        cells: &mut [CellRuntime],
    ) -> Result<Vec<MigrationRecord>, String> {
        let mut records = Vec::new();
        if !self.config.enabled || cells.len() < 2 {
            return Ok(records);
        }
        self.validate_cells(cells.len())?;
        // Per-window SLA pressure and cost rates are fixed for the round;
        // utilization is re-measured after every migration (the move frees
        // enforced shares at the source immediately).
        let violation_terms = self.violation_terms(cells);
        let window_cost = self.window_cost_terms(cells);
        for (i, c) in cells.iter().enumerate() {
            self.last_violations[i] = c.engine.total_violations();
            self.last_episodes[i] = c.engine.total_episodes();
            self.last_cost_totals[i] = c.engine.slot_cost_total();
            self.last_cost_slots[i] = c.engine.slice_slots();
        }
        let policy = self.config.policy.policy();
        for _ in 0..self.config.max_migrations_per_round {
            // A slice that was admitted or arrived at this boundary — by a
            // fleet-routed admission or an earlier migration of this round
            // — enforces nothing until the next slot, so its estimated
            // share is added as a virtual load; otherwise every migrant of
            // a round would pile onto the same still-cold-looking target.
            let loads: Vec<f64> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    cell_utilization(&c.engine)
                        + violation_terms[i]
                        + c.engine.pending_admissions() as f64
                            * c.engine.admission().reserved_share_per_admission()
                })
                .collect();
            // Eligibility is policy-independent: a source must be able to
            // spare a slice, a target must pass its own admission check —
            // `check_admission` reserves the estimated share of every slice
            // pending at this boundary, whether it came from a fleet-routed
            // admission or an earlier migration of this same round.
            let signals = BalanceSignals {
                loads,
                can_source: cells
                    .iter()
                    .map(|c| c.engine.orchestrator().num_slices() > self.config.min_slices_per_cell)
                    .collect(),
                can_target: cells
                    .iter()
                    .map(|c| c.engine.check_admission().is_ok())
                    .collect(),
                // Half a window of lookahead: over a full diurnal period
                // the mean normalized traffic is phase-blind (every trace
                // averages to its own day mean), while the next half-window
                // still sees *where in the day* each cell's peak falls.
                forecast: cells
                    .iter()
                    .map(|c| {
                        c.engine
                            .forecast_normalized_traffic((self.config.cadence_slots / 2).max(1))
                    })
                    .collect(),
                window_cost: window_cost.clone(),
                min_load_gap: self.config.min_load_gap,
            };
            let Some((src, dst)) = policy.plan_move(&signals) else {
                break;
            };
            if src == dst || src >= cells.len() || dst >= cells.len() {
                return Err(format!(
                    "balance policy `{}` planned an invalid move {src} -> {dst} \
                     over {} cell(s)",
                    self.config.policy,
                    cells.len()
                ));
            }
            let from_slice = cells[src]
                .engine
                .orchestrator()
                .slice_ids()
                .iter()
                .map(|id| id.0)
                .max()
                .expect("source cell has more slices than the configured minimum");
            let migration = cells[src].engine.extract_slice(from_slice, slot)?;
            let kind = migration.checkpoint.kind;
            let to_slice = cells[dst].engine.inject_slice(migration, slot)?.0;
            let (from_cell, to_cell) = (cells[src].cell, cells[dst].cell);
            cells[src].recorder.record_migration(MigrationEvent {
                slot,
                slice: from_slice,
                kind,
                arrived: false,
                peer_cell: to_cell,
                peer_slice: to_slice,
            });
            cells[dst].recorder.record_migration(MigrationEvent {
                slot,
                slice: to_slice,
                kind,
                arrived: true,
                peer_cell: from_cell,
                peer_slice: from_slice,
            });
            records.push(MigrationRecord {
                slot,
                from_cell,
                from_slice,
                to_cell,
                to_slice,
                kind,
            });
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancer_config_validation_catches_bad_tuning() {
        BalancerConfig::default().validate().unwrap();
        BalancerConfig::disabled().validate().unwrap();
        BalancerConfig::forced_noop().validate().unwrap();
        assert!(BalancerConfig {
            cadence_slots: 0,
            ..BalancerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BalancerConfig {
            max_migrations_per_round: 0,
            ..BalancerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BalancerConfig {
            min_load_gap: -0.1,
            ..BalancerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BalancerConfig {
            violation_weight: f64::NAN,
            ..BalancerConfig::default()
        }
        .validate()
        .is_err());
        assert!(BalancerConfig {
            min_slices_per_cell: 0,
            ..BalancerConfig::default()
        }
        .validate()
        .is_err());
        // A disabled balancer tolerates a zero cadence (it never fires).
        BalancerConfig {
            enabled: false,
            cadence_slots: 0,
            ..BalancerConfig::default()
        }
        .validate()
        .unwrap();
    }
}
