//! The elastic fleet runner: PR 4's sharded cells made live.
//!
//! Where [`crate::FleetRunner`] freezes the slice-to-cell assignment at
//! startup, the elastic runner executes a [`FleetScenario`] in **stepping
//! windows**: cells run rayon-parallel (exactly like the frozen runner)
//! up to the next synchronization point — a balancer cadence boundary or a
//! fleet-routed admission slot — where the fleet layer runs sequentially:
//! fleet admissions are routed to the least-loaded cell that passes its
//! admission check, and the [`crate::FleetBalancer`] migrates slices away
//! from overloaded cells. Because every synchronization point is a pure
//! function of deterministic state, the resulting [`crate::FleetTrace`] —
//! migrations included — stays byte-identical across rayon worker counts,
//! and a run whose balancer plans nothing is byte-identical to the frozen
//! runner's.

use std::time::Instant;

use rayon::prelude::*;

use onslicing_replay::TelemetryRecorder;
use onslicing_scenario::{FleetScenario, ScenarioConfig, ScenarioEngine, SliceSpec};

use crate::balancer::{cell_utilization, BalancerConfig, CellRuntime, FleetBalancer};
use crate::{
    aggregate_fleet, CellOutcome, CellTraceEntry, FleetOutcome, FleetTrace,
    FLEET_TRACE_FORMAT_VERSION,
};

/// Tuning of an elastic fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticFleetConfig {
    /// Number of cells.
    pub cells: usize,
    /// Base per-cell configuration; `base.seed` is the fleet master seed.
    pub base: ScenarioConfig,
    /// Balancer tuning (disable for the frozen-sharding control arm).
    pub balancer: BalancerConfig,
}

impl ElasticFleetConfig {
    /// An elastic fleet of `cells` cells with default tuning.
    pub fn new(cells: usize) -> Self {
        Self {
            cells,
            base: ScenarioConfig::default(),
            balancer: BalancerConfig::default(),
        }
    }

    /// Replaces the fleet master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.seed = seed;
        self
    }

    /// Replaces the balancer tuning.
    pub fn with_balancer(mut self, balancer: BalancerConfig) -> Self {
        self.balancer = balancer;
        self
    }
}

/// The elastic fleet runner: a [`FleetScenario`] over `N` cells with live
/// rebalancing and fleet-level admission.
#[derive(Debug, Clone)]
pub struct ElasticFleetRunner {
    scenario: FleetScenario,
    config: ElasticFleetConfig,
}

impl ElasticFleetRunner {
    /// Validates the fleet scenario and tuning.
    pub fn new(scenario: FleetScenario, config: ElasticFleetConfig) -> Result<Self, String> {
        scenario.validate()?;
        config.balancer.validate()?;
        if config.cells == 0 {
            return Err("an elastic fleet needs at least one cell".to_string());
        }
        if config.cells < scenario.min_cells {
            return Err(format!(
                "fleet scenario `{}` needs at least {} cells, configured {}",
                scenario.name, scenario.min_cells, config.cells
            ));
        }
        if config.cells > u32::MAX as usize {
            return Err("cell count exceeds the u32 cell-index space".to_string());
        }
        Ok(Self { scenario, config })
    }

    /// The fleet scenario.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &ElasticFleetConfig {
        &self.config
    }

    /// The slots at which the parallel stepping pauses for sequential
    /// fleet-level work: balancer cadence boundaries and fleet-admission
    /// slots, plus the scenario end.
    fn sync_points(&self) -> Vec<usize> {
        let total = self.scenario.base.total_slots;
        let mut points: Vec<usize> = self
            .scenario
            .fleet_admissions()
            .iter()
            .map(|(slot, _)| *slot)
            .collect();
        if self.config.balancer.enabled {
            let cadence = self.config.balancer.cadence_slots;
            points.extend((1..).map(|k| k * cadence).take_while(|s| *s < total));
        }
        points.push(total);
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Builds and executes the fleet: windows of parallel per-cell
    /// stepping, separated by sequential admission routing and rebalancing.
    pub fn run(&self) -> Result<FleetOutcome, String> {
        let start = Instant::now();
        let total_slots = self.scenario.base.total_slots;
        let cells: Result<Vec<CellRuntime>, String> = (0..self.config.cells)
            .into_par_iter()
            .map(|i| {
                let cell = i as u32;
                let config = self.config.base.for_cell(cell);
                let engine = ScenarioEngine::new(self.scenario.scenario_for_cell(cell), config)?;
                let recorder = TelemetryRecorder::new(&engine);
                Ok(CellRuntime {
                    cell,
                    seed: config.seed,
                    engine,
                    recorder,
                    slot_latencies_ms: Vec::with_capacity(total_slots),
                })
            })
            .collect();
        let mut cells = cells?;

        let admissions = self.scenario.fleet_admissions();
        let mut next_admission = 0usize;
        let mut balancer = FleetBalancer::new(self.config.balancer, cells.len());
        let mut migrations = Vec::new();
        let mut fleet_admissions_granted = 0usize;
        let mut fleet_admissions_denied = 0usize;

        for sync in self.sync_points() {
            // Parallel window: every cell steps independently to the sync
            // point — the same shared-nothing fan-out as the frozen runner.
            cells.par_iter_mut().for_each(|c| {
                while c.engine.current_slot() < sync {
                    let slot_start = Instant::now();
                    c.engine.step_slot(&mut c.recorder);
                    c.slot_latencies_ms
                        .push(slot_start.elapsed().as_secs_f64() * 1_000.0);
                }
            });
            if sync >= total_slots {
                break;
            }
            // Sequential fleet layer. Fleet-routed admissions first (they
            // fire at their scripted slot, which is a sync point by
            // construction); each cell's `check_admission` reserves the
            // shares of everything already granted at this boundary, so
            // the balancer round below sees the same pledges.
            while next_admission < admissions.len() && admissions[next_admission].0 <= sync {
                let (_, spec) = admissions[next_admission];
                next_admission += 1;
                match route_fleet_admission(&mut cells, &spec, sync) {
                    Some(_) => fleet_admissions_granted += 1,
                    None => fleet_admissions_denied += 1,
                }
            }
            if self.config.balancer.enabled && sync % self.config.balancer.cadence_slots == 0 {
                migrations.extend(balancer.rebalance(sync, &mut cells)?);
            }
        }

        // Finish: close final partial episodes and aggregate, cell-parallel
        // like the frozen runner.
        let outcomes: Result<Vec<CellOutcome>, String> = cells
            .into_par_iter()
            .map(|mut c| {
                let report = c.engine.run_with_observer(&mut c.recorder);
                if report.has_non_finite() {
                    return Err(format!(
                        "cell {} (seed {}) produced non-finite metrics",
                        c.cell, c.seed
                    ));
                }
                Ok(CellOutcome {
                    cell: c.cell,
                    seed: c.seed,
                    report,
                    trace: c.recorder.finalize(),
                    slot_latencies_ms: c.slot_latencies_ms,
                })
            })
            .collect();
        let outcomes = outcomes?;
        let wall_clock_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let mut report = aggregate_fleet(
            &self.scenario.name,
            self.config.base.seed,
            &outcomes,
            wall_clock_ms,
        );
        report.migrations = migrations;
        report.fleet_admissions_granted = fleet_admissions_granted;
        report.fleet_admissions_denied = fleet_admissions_denied;
        let trace = FleetTrace {
            format_version: FLEET_TRACE_FORMAT_VERSION,
            scenario: self.scenario.name.clone(),
            master_seed: self.config.base.seed,
            cells: outcomes
                .iter()
                .map(|c| CellTraceEntry {
                    cell: c.cell,
                    seed: c.seed,
                    trace: c.trace.clone(),
                })
                .collect(),
        };
        Ok(FleetOutcome {
            report,
            trace,
            cells: outcomes,
        })
    }
}

/// Routes one fleet-level admission: cells are tried least-utilized first
/// (ties toward the lower index), and the slice lands on the first cell
/// whose own [`ScenarioEngine::check_admission`] accepts it — that check
/// reserves the estimated share of every slice already granted at this
/// boundary (fleet admissions and migrations alike). Returns the hosting
/// cell, or `None` for a fleet-wide denial.
fn route_fleet_admission(cells: &mut [CellRuntime], spec: &SliceSpec, slot: usize) -> Option<u32> {
    let utilizations: Vec<f64> = cells.iter().map(|c| cell_utilization(&c.engine)).collect();
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| {
        utilizations[a]
            .partial_cmp(&utilizations[b])
            .expect("utilization is never NaN")
            .then(a.cmp(&b))
    });
    for i in order {
        if cells[i].engine.check_admission().is_ok() {
            cells[i].engine.force_admit(spec, slot);
            return Some(cells[i].cell);
        }
    }
    None
}
