//! The elastic fleet runner: PR 4's sharded cells made live.
//!
//! Where [`crate::FleetRunner`] freezes the slice-to-cell assignment at
//! startup, the elastic runner executes a [`FleetScenario`] in **stepping
//! windows**: cells run rayon-parallel (exactly like the frozen runner)
//! up to the next synchronization point — a balancer cadence boundary or a
//! fleet-routed admission slot — where the fleet layer runs sequentially:
//! fleet admissions are routed to the least-loaded cell that passes its
//! admission check, and the [`crate::FleetBalancer`] migrates slices away
//! from overloaded cells. Because every synchronization point is a pure
//! function of deterministic state, the resulting [`crate::FleetTrace`] —
//! migrations included — stays byte-identical across rayon worker counts,
//! and a run whose balancer plans nothing is byte-identical to the frozen
//! runner's.
//!
//! The step loop itself lives in [`crate::ElasticFleet`] (`live.rs`), the
//! externally drivable state machine the `fleetd` service daemon runs;
//! this runner is the one-shot convenience wrapper over it, and its traces
//! are byte-identical to what the loop produced when it was inlined here.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use onslicing_scenario::{FleetScenario, ScenarioConfig};

use crate::balancer::BalancerConfig;
use crate::live::ElasticFleet;
use crate::FleetOutcome;

/// Tuning of an elastic fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticFleetConfig {
    /// Number of cells.
    pub cells: usize,
    /// Base per-cell configuration; `base.seed` is the fleet master seed.
    pub base: ScenarioConfig,
    /// Balancer tuning (disable for the frozen-sharding control arm).
    pub balancer: BalancerConfig,
}

impl ElasticFleetConfig {
    /// An elastic fleet of `cells` cells with default tuning.
    pub fn new(cells: usize) -> Self {
        Self {
            cells,
            base: ScenarioConfig::default(),
            balancer: BalancerConfig::default(),
        }
    }

    /// Replaces the fleet master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.seed = seed;
        self
    }

    /// Replaces the balancer tuning.
    pub fn with_balancer(mut self, balancer: BalancerConfig) -> Self {
        self.balancer = balancer;
        self
    }
}

/// The elastic fleet runner: a [`FleetScenario`] over `N` cells with live
/// rebalancing and fleet-level admission, executed start-to-finish in one
/// call. For a fleet driven in windows (the service daemon), use
/// [`ElasticFleet`] directly.
#[derive(Debug, Clone)]
pub struct ElasticFleetRunner {
    scenario: FleetScenario,
    config: ElasticFleetConfig,
}

impl ElasticFleetRunner {
    /// Validates the fleet scenario and tuning.
    pub fn new(scenario: FleetScenario, config: ElasticFleetConfig) -> Result<Self, String> {
        // Build (and drop) the live machine once so invalid fleets fail at
        // construction, matching the historical contract of this type —
        // minus the slot-0 fleet work, which `run` must perform itself.
        ElasticFleet::validate(&scenario, &config)?;
        Ok(Self { scenario, config })
    }

    /// The fleet scenario.
    pub fn scenario(&self) -> &FleetScenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &ElasticFleetConfig {
        &self.config
    }

    /// Builds and executes the fleet: windows of parallel per-cell
    /// stepping, separated by sequential admission routing and rebalancing.
    pub fn run(&self) -> Result<FleetOutcome, String> {
        // detlint: allow(wall-clock) -- report-only: wall_clock_ms lands in
        // FleetReport; FleetTrace (the byte-compared artifact) excludes it.
        let start = Instant::now();
        let mut fleet = ElasticFleet::new(self.scenario.clone(), self.config)?;
        fleet.advance_to(fleet.total_slots())?;
        let wall_clock_ms = start.elapsed().as_secs_f64() * 1_000.0;
        fleet.finish(wall_clock_ms)
    }
}
