//! The balance-policy registry: named, deterministic migration strategies
//! the [`crate::FleetBalancer`] dispatches through.
//!
//! A [`BalancePolicy`] picks at most one `(source, target)` cell pair per
//! planning step from a [`BalanceSignals`] snapshot — pre-computed,
//! deterministic per-cell signals (load scores, eligibility masks, traffic
//! forecasts, windowed cost rates). Policies are registered in
//! [`BALANCE_POLICIES`] and selected by name through
//! [`crate::BalancerConfig::policy`]; unknown names are configuration
//! errors that list the known set. The historical `FleetBalancer::rebalance`
//! selection rule is the `greedy` policy and stays the default.
//!
//! ## Determinism contract
//!
//! Every signal in [`BalanceSignals`] is a pure function of simulated state
//! (enforced shares, closed-episode SLA counts, deterministic arrival
//! traces, deterministic slot costs). Policies must be pure functions of
//! the snapshot — no interior state, clocks, or randomness — so a fleet's
//! migration schedule is byte-identical across thread counts and across
//! checkpoint/resume.

use serde::{DeError, Deserialize, Serialize, Value};

/// The deterministic per-cell signals one planning step sees. Index `i`
/// throughout refers to cell `i` of the fleet.
#[derive(Debug, Clone)]
pub struct BalanceSignals {
    /// The classic load score per cell: worst-resource utilization plus the
    /// weighted per-window SLA-violation rate plus the virtual load of
    /// same-boundary pending admissions.
    pub loads: Vec<f64>,
    /// Whether each cell may give up a slice (it holds more than the
    /// configured minimum).
    pub can_source: Vec<bool>,
    /// Whether each cell passes its own admission check right now (pending
    /// same-boundary grants reserved).
    pub can_target: Vec<bool>,
    /// Mean normalized traffic each cell's slices will see over the next
    /// rebalancing window, from their deterministic arrival traces.
    pub forecast: Vec<f64>,
    /// Per-slice-slot cost each cell accrued since the previous window
    /// boundary (deterministic simulated cost, not wall clock).
    pub window_cost: Vec<f64>,
    /// The configured minimum score gap that justifies a migration
    /// (`f64::INFINITY` in forced-noop mode — policies must compare with a
    /// strict `<` so the infinite threshold cleanly suppresses every move).
    pub min_load_gap: f64,
}

impl BalanceSignals {
    /// Picks the `(source, target)` pair by a per-cell score: source is the
    /// highest-scored eligible cell, target the lowest-scored other cell
    /// that passes admission, ties breaking toward the lower index, and the
    /// pair only stands if the score gap clears `min_load_gap`. This is the
    /// shared selection skeleton; policies differ in the score they feed it.
    fn pick_by_score(&self, score: impl Fn(usize) -> f64) -> Option<(usize, usize)> {
        let cells = self.loads.len();
        let mut source: Option<usize> = None;
        for i in 0..cells {
            if !self.can_source[i] {
                continue;
            }
            if source.is_none_or(|s| score(i) > score(s)) {
                source = Some(i);
            }
        }
        let src = source?;
        let mut target: Option<usize> = None;
        for i in 0..cells {
            if i == src || !self.can_target[i] {
                continue;
            }
            if target.is_none_or(|t| score(i) < score(t)) {
                target = Some(i);
            }
        }
        let dst = target?;
        // `<` (not a negated `>=`) so an infinite threshold — the
        // forced-noop mode — compares cleanly and always suppresses.
        if score(src) - score(dst) < self.min_load_gap {
            return None;
        }
        Some((src, dst))
    }
}

/// A named migration strategy: given one deterministic signal snapshot,
/// pick at most one `(source, target)` cell pair. `None` ends the round.
pub trait BalancePolicy: Sync {
    /// The registry name (`config.toml` key).
    fn name(&self) -> &'static str;
    /// One-line, human-readable summary for catalogues and status verbs.
    fn description(&self) -> &'static str;
    /// Plans one move; see [`BalanceSignals`].
    fn plan_move(&self, signals: &BalanceSignals) -> Option<(usize, usize)>;
}

/// The historical selection rule, unchanged: move from the most loaded cell
/// to the least loaded admissible one whenever the load gap clears the
/// threshold. Selecting `greedy` through the registry is byte-identical to
/// the pre-registry balancer.
struct GreedyBalance;

impl BalancePolicy for GreedyBalance {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn description(&self) -> &'static str {
        "most- to least-loaded cell by current utilization + SLA pressure (original rule)"
    }

    fn plan_move(&self, signals: &BalanceSignals) -> Option<(usize, usize)> {
        signals.pick_by_score(|i| signals.loads[i])
    }
}

/// Plans on where load is *about to be*: blends the deterministic traffic
/// forecast for the next window into the load score, so a cell whose
/// diurnal peak is approaching sheds slices before the peak arrives instead
/// of after its SLA already burned.
struct PredictiveBalance;

/// Weight of the next-window traffic forecast in the predictive score. The
/// forecast is a normalized per-slice mean in roughly `[0, 2]`, the same
/// scale as the utilization term, so unit weight lets a clearly approaching
/// peak outvote a mildly loaded present.
const FORECAST_WEIGHT: f64 = 1.0;

impl BalancePolicy for PredictiveBalance {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn description(&self) -> &'static str {
        "blends the next window's deterministic traffic forecast into the load score"
    }

    fn plan_move(&self, signals: &BalanceSignals) -> Option<(usize, usize)> {
        signals.pick_by_score(|i| signals.loads[i] + FORECAST_WEIGHT * signals.forecast[i])
    }
}

/// Optimizes the fleet's `avg_slot_cost`, not just SLA%: cells whose
/// recent per-slice-slot cost runs above the fleet mean score higher, so
/// slices drain from expensive cells toward cheap ones even when raw
/// utilization alone would not justify a move.
struct CostAwareBalance;

/// Weight of the relative window-cost term in the cost-aware score. The
/// term is the cell's deviation from the fleet-mean window cost in mean
/// units (≈ ±1 for a 2× spread), so half weight keeps utilization primary
/// while letting a persistently expensive cell tip the selection.
const COST_WEIGHT: f64 = 0.5;

impl BalancePolicy for CostAwareBalance {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn description(&self) -> &'static str {
        "drains persistently above-fleet-mean-cost cells toward cheap ones"
    }

    fn plan_move(&self, signals: &BalanceSignals) -> Option<(usize, usize)> {
        let n = signals.window_cost.len();
        let mean = signals.window_cost.iter().sum::<f64>() / n.max(1) as f64;
        let relative_cost = |i: usize| {
            if mean > 0.0 {
                (signals.window_cost[i] - mean) / mean
            } else {
                0.0
            }
        };
        signals.pick_by_score(|i| signals.loads[i] + COST_WEIGHT * relative_cost(i))
    }
}

/// Every registered balance policy, in catalogue order. `greedy` first —
/// it is the default and the backwards-compatibility anchor.
pub static BALANCE_POLICIES: [&'static dyn BalancePolicy; 3] =
    [&GreedyBalance, &PredictiveBalance, &CostAwareBalance];

/// The registered balance-policy names, in catalogue order.
pub fn balance_policy_names() -> Vec<&'static str> {
    BALANCE_POLICIES.iter().map(|p| p.name()).collect()
}

/// Looks up a registered balance policy; unknown names are errors that
/// name the known set (the startup-error contract for config files).
pub fn balance_policy_by_name(name: &str) -> Result<&'static dyn BalancePolicy, String> {
    BALANCE_POLICIES
        .iter()
        .copied()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown balance policy `{name}` (registered: {})",
                balance_policy_names().join(", ")
            )
        })
}

/// An interned, copyable handle to a registered balance policy. Only
/// constructible through the registry, so a held name is always resolvable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancePolicyName(&'static str);

impl BalancePolicyName {
    /// The default policy — the historical selection rule.
    pub const GREEDY: Self = Self("greedy");
    /// The forecast-blending variant.
    pub const PREDICTIVE: Self = Self("predictive");
    /// The cost-draining variant.
    pub const COST_AWARE: Self = Self("cost-aware");

    /// Interns a user-supplied name through the registry.
    pub fn parse(name: &str) -> Result<Self, String> {
        balance_policy_by_name(name).map(|p| Self(p.name()))
    }

    /// The registry name.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// The policy this name resolves to.
    pub fn policy(&self) -> &'static dyn BalancePolicy {
        balance_policy_by_name(self.0).expect("interned balance policy name is registered")
    }
}

impl Default for BalancePolicyName {
    fn default() -> Self {
        Self::GREEDY
    }
}

impl std::fmt::Display for BalancePolicyName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

// Serialized as the bare registry name; deserialization re-interns through
// the registry so unknown names fail with the known set listed.
impl Serialize for BalancePolicyName {
    fn serialize_value(&self) -> Value {
        Value::Str(self.0.to_string())
    }
}

impl Deserialize for BalancePolicyName {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::msg("expected a string for a balance policy name"))?;
        Self::parse(s).map_err(DeError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals() -> BalanceSignals {
        BalanceSignals {
            loads: vec![0.9, 0.2, 0.5],
            can_source: vec![true, true, true],
            can_target: vec![true, true, true],
            forecast: vec![0.1, 0.1, 0.1],
            window_cost: vec![1.0, 1.0, 1.0],
            min_load_gap: 0.25,
        }
    }

    #[test]
    fn registry_resolves_every_name_and_rejects_unknown_ones() {
        for policy in BALANCE_POLICIES {
            let found = balance_policy_by_name(policy.name()).unwrap();
            assert_eq!(found.name(), policy.name());
            assert!(!policy.description().is_empty());
        }
        let err = balance_policy_by_name("round-robin")
            .map(|p| p.name())
            .unwrap_err();
        assert!(err.contains("unknown balance policy `round-robin`"));
        assert!(err.contains("greedy, predictive, cost-aware"));
    }

    #[test]
    fn greedy_picks_extremes_and_respects_the_gap() {
        let s = signals();
        assert_eq!(
            BalancePolicyName::GREEDY.policy().plan_move(&s),
            Some((0, 1))
        );
        let mut close = signals();
        close.loads = vec![0.5, 0.4, 0.45];
        assert_eq!(BalancePolicyName::GREEDY.policy().plan_move(&close), None);
        let mut noop = signals();
        noop.min_load_gap = f64::INFINITY;
        assert_eq!(BalancePolicyName::GREEDY.policy().plan_move(&noop), None);
    }

    #[test]
    fn eligibility_masks_constrain_both_ends() {
        let mut s = signals();
        s.can_source = vec![false, true, true];
        // Cell 0 is the most loaded but cannot source; cell 2 is next.
        assert_eq!(
            BalancePolicyName::GREEDY.policy().plan_move(&s),
            Some((2, 1))
        );
        s.can_target = vec![false, false, false];
        assert_eq!(BalancePolicyName::GREEDY.policy().plan_move(&s), None);
    }

    #[test]
    fn predictive_moves_ahead_of_a_forecast_peak() {
        let mut s = signals();
        // Present loads are level; cell 2's peak is approaching.
        s.loads = vec![0.5, 0.5, 0.5];
        s.forecast = vec![0.2, 0.2, 1.4];
        assert_eq!(BalancePolicyName::GREEDY.policy().plan_move(&s), None);
        assert_eq!(
            BalancePolicyName::PREDICTIVE.policy().plan_move(&s),
            Some((2, 0))
        );
    }

    #[test]
    fn cost_aware_drains_the_expensive_cell() {
        let mut s = signals();
        s.loads = vec![0.5, 0.5, 0.5];
        s.window_cost = vec![4.0, 1.0, 1.0];
        assert_eq!(BalancePolicyName::GREEDY.policy().plan_move(&s), None);
        assert_eq!(
            BalancePolicyName::COST_AWARE.policy().plan_move(&s),
            Some((0, 1))
        );
    }

    #[test]
    fn policy_names_round_trip_through_serde() {
        for policy in BALANCE_POLICIES {
            let name = BalancePolicyName::parse(policy.name()).unwrap();
            let v = name.serialize_value();
            assert_eq!(BalancePolicyName::from_value(&v).unwrap(), name);
        }
        let bogus = Value::Str("bogus".to_string());
        assert!(BalancePolicyName::from_value(&bogus)
            .unwrap_err()
            .0
            .contains("unknown balance policy"));
    }
}
