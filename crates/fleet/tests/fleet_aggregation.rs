//! Property tests for the fleet aggregation math.
//!
//! The fleet report is a *derived* artifact: every aggregate must equal the
//! value recomputed from the concatenated per-cell samples. The cells here
//! are synthetic (random reports/traces/latencies), so the properties pin
//! the aggregation math itself — independently of how expensive a real
//! cell run is — including an independent reimplementation of the
//! nearest-rank percentile.

use onslicing_fleet::{aggregate_fleet, CellOutcome, FleetConfig, FleetRunner};
use onslicing_replay::{EpisodeTelemetry, SliceSlotTelemetry, SlotTelemetry, TelemetryTrace};
use onslicing_scenario::{derive_cell_seed, Scenario, ScenarioReport, SliceReport, SliceSpec};
use onslicing_slices::SliceKind;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Independent nearest-rank percentile (sort, ceil-rank, clamp) — must
/// agree with the production implementation the aggregator uses.
fn reference_percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds one synthetic cell outcome with internally consistent counters.
fn synthetic_cell(cell: u32, rng: &mut ChaCha8Rng) -> CellOutcome {
    let kinds = [SliceKind::Mar, SliceKind::Hvs, SliceKind::Rdc];
    let num_slices = rng.gen_range(1..5usize);
    let total_slots = rng.gen_range(1..20usize);
    let mut slots = Vec::new();
    for slot in 0..total_slots {
        let slices = (0..num_slices)
            .map(|i| SliceSlotTelemetry {
                id: i as u32,
                kind: kinds[i % 3],
                cost: rng.gen_range(0.0..0.4),
                reward: rng.gen_range(-1.0..1.0),
                usage_percent: rng.gen_range(0.0..100.0),
                performance_score: rng.gen_range(0.0..2.0),
                lambda: rng.gen_range(0.0..3.0),
                used_baseline: rng.gen_range(0..2) == 0,
            })
            .collect();
        slots.push(SlotTelemetry { slot, slices });
    }
    let mut slice_reports = Vec::new();
    let mut episodes_list = Vec::new();
    for i in 0..num_slices {
        let episodes = rng.gen_range(0..4usize);
        let violations = if episodes == 0 {
            0
        } else {
            rng.gen_range(0..episodes + 1)
        };
        for e in 0..episodes {
            episodes_list.push(EpisodeTelemetry {
                slot: e * 4,
                slice: i as u32,
                kind: kinds[i % 3],
                avg_cost: rng.gen_range(0.0..0.3),
                avg_usage_percent: rng.gen_range(0.0..100.0),
                violated: e < violations,
                switched_to_baseline: false,
            });
        }
        slice_reports.push(SliceReport {
            id: i as u32,
            kind: kinds[i % 3],
            admitted_at_slot: 0,
            torn_down_at_slot: None,
            episodes,
            violations,
            policy_updates: episodes,
            switched_episodes: 0,
            avg_cost: rng.gen_range(0.0..0.3),
            avg_usage_percent: rng.gen_range(0.0..100.0),
        });
    }
    let slice_episodes: usize = slice_reports.iter().map(|s| s.episodes).sum();
    let violations: usize = slice_reports.iter().map(|s| s.violations).sum();
    let wall_clock_ms = rng.gen_range(1.0..500.0);
    let slice_slots = num_slices * total_slots;
    // The engine's cheap fold: mean of the per-slice-slot costs.
    let slot_cost_sum: f64 = slots
        .iter()
        .flat_map(|s| s.slices.iter())
        .map(|s| s.cost)
        .sum();
    let report = ScenarioReport {
        scenario: "synthetic".to_string(),
        seed: u64::from(cell),
        total_slots,
        slice_slots,
        peak_concurrent_slices: num_slices,
        events_applied: 0,
        admissions_denied: 0,
        events_skipped: 0,
        slice_episodes,
        sla_violation_percent: if slice_episodes > 0 {
            100.0 * violations as f64 / slice_episodes as f64
        } else {
            0.0
        },
        avg_cost: rng.gen_range(0.0..0.3),
        avg_slot_cost: slot_cost_sum / slice_slots as f64,
        avg_slot_usage_percent: rng.gen_range(0.0..100.0),
        avg_coordination_rounds: rng.gen_range(1.0..4.0),
        slice_slots_per_second: slice_slots as f64 / (wall_clock_ms / 1_000.0),
        wall_clock_ms,
        slices: slice_reports,
    };
    let trace = TelemetryTrace {
        format_version: onslicing_replay::TRACE_FORMAT_VERSION,
        scenario: "synthetic".to_string(),
        seed: u64::from(cell),
        start_slot: 0,
        total_slots,
        slots,
        episodes: episodes_list,
        migrations: Vec::new(),
        summaries: Vec::new(),
    };
    let slot_latencies_ms = (0..total_slots)
        .map(|_| rng.gen_range(0.01..50.0))
        .collect();
    CellOutcome {
        cell,
        seed: u64::from(cell),
        report,
        trace,
        slot_latencies_ms,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fleet_aggregates_equal_recomputation_from_concatenated_samples(
        master in 0u64..1_000_000,
        num_cells in 1usize..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(master);
        let cells: Vec<CellOutcome> = (0..num_cells)
            .map(|i| synthetic_cell(i as u32, &mut rng))
            .collect();
        let wall = rng.gen_range(1.0..1_000.0);
        let report = aggregate_fleet("synthetic", master, &cells, wall);

        // Counter sums are exact.
        let episodes: usize = cells.iter().map(|c| c.report.slice_episodes).sum();
        let violations: usize = cells
            .iter()
            .flat_map(|c| c.report.slices.iter())
            .map(|s| s.violations)
            .sum();
        let slots: usize = cells.iter().map(|c| c.report.slice_slots).sum();
        prop_assert_eq!(report.slice_episodes, episodes);
        prop_assert_eq!(report.violations, violations);
        prop_assert_eq!(report.slice_slots, slots);
        prop_assert_eq!(report.cells, num_cells);

        // Fleet SLA-violation % equals the ratio over the concatenated
        // episode population (not the mean of per-cell percentages).
        let expected_violation = if episodes > 0 {
            100.0 * violations as f64 / episodes as f64
        } else {
            0.0
        };
        prop_assert!((report.sla_violation_percent - expected_violation).abs() < 1e-9);

        // Episode-weighted mean cost.
        let expected_cost = if episodes > 0 {
            cells
                .iter()
                .map(|c| c.report.avg_cost * c.report.slice_episodes as f64)
                .sum::<f64>()
                / episodes as f64
        } else {
            0.0
        };
        prop_assert!((report.avg_cost - expected_cost).abs() < 1e-9);

        // Percentiles equal the nearest-rank percentile of the
        // concatenated per-cell samples.
        let all_costs: Vec<f64> = cells
            .iter()
            .flat_map(|c| c.trace.slots.iter())
            .flat_map(|s| s.slices.iter())
            .map(|s| s.cost)
            .collect();
        // The slot-slot-weighted fold of the cells' avg_slot_cost equals
        // the mean of the concatenated samples.
        let mean_slot_cost = all_costs.iter().sum::<f64>() / all_costs.len() as f64;
        prop_assert!((report.avg_slot_cost - mean_slot_cost).abs() < 1e-9);
        for (got, q) in [
            (report.cost_p50, 50.0),
            (report.cost_p90, 90.0),
            (report.cost_p99, 99.0),
        ] {
            prop_assert!((got - reference_percentile(&all_costs, q)).abs() < 1e-12);
        }
        let all_latencies: Vec<f64> = cells
            .iter()
            .flat_map(|c| c.slot_latencies_ms.iter().copied())
            .collect();
        for (got, q) in [
            (report.slot_latency_p50_ms, 50.0),
            (report.slot_latency_p90_ms, 90.0),
            (report.slot_latency_p99_ms, 99.0),
        ] {
            prop_assert!((got - reference_percentile(&all_latencies, q)).abs() < 1e-12);
        }

        // Throughput: the machine rate divides by the fleet wall clock,
        // the aggregate rate sums the cells' independent rates.
        prop_assert!(
            (report.slice_slots_per_second - slots as f64 / (wall / 1_000.0)).abs() < 1e-6
        );
        let rate_sum: f64 = cells
            .iter()
            .map(|c| c.report.slice_slots_per_second)
            .sum();
        prop_assert!((report.aggregate_cell_slots_per_second - rate_sum).abs() < 1e-9);

        // The per-cell breakdown preserves cell order and per-cell counts.
        prop_assert_eq!(report.cells_detail.len(), num_cells);
        for (i, detail) in report.cells_detail.iter().enumerate() {
            prop_assert_eq!(detail.cell, i as u32);
            prop_assert_eq!(detail.slice_slots, cells[i].report.slice_slots);
            prop_assert_eq!(detail.episodes, cells[i].report.slice_episodes);
        }
    }

    #[test]
    fn cell_seeds_are_pairwise_distinct_and_stable(
        master in 0u64..u64::MAX / 2,
        num_cells in 2usize..64,
    ) {
        let scenario = Scenario::new("seed-probe", 8, 16).slice(SliceSpec::new(SliceKind::Mar));
        let config = FleetConfig::new(num_cells).with_seed(master);
        let runner = FleetRunner::new(scenario.clone(), config).unwrap();
        let seeds = runner.cell_seeds();
        prop_assert_eq!(seeds.len(), num_cells);
        for (i, a) in seeds.iter().enumerate() {
            prop_assert_eq!(*a, derive_cell_seed(master, i as u32));
            for b in &seeds[i + 1..] {
                prop_assert!(a != b, "cells {i} shares a seed within master {master}");
            }
        }
        // Stable: a second runner derives the identical seed vector.
        let again = FleetRunner::new(scenario, config).unwrap().cell_seeds();
        prop_assert_eq!(seeds, again);
    }
}
