//! The fleet twin of the repository's thread-count determinism gate: a
//! multi-cell fleet run must emit a byte-identical [`FleetTrace`] with the
//! rayon pool forced to one thread and at the machine default — cells share
//! nothing, and every cell's RNG chain is keyed by its derived seed, not by
//! the worker that happened to execute it. CI additionally runs the same
//! comparison across separate `fleet_runner` processes.
//!
//! This is deliberately the **only** test in this binary: the vendored
//! rayon reads `RAYON_NUM_THREADS` on every call, and mutating the process
//! environment is only safe while no other thread reads it concurrently.

use onslicing_fleet::{
    BalancePolicyName, BalancerConfig, ElasticFleetConfig, ElasticFleetRunner, FleetConfig,
    FleetRunner,
};
use onslicing_scenario::{diurnal_fleet, hotspot_shift, AdmissionPolicyName, Scenario, SliceSpec};
use onslicing_slices::SliceKind;

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts() {
    let scenario = Scenario::new("fleet-determinism", 8, 16)
        .with_capacity(2.0)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs))
        .slice(SliceSpec::new(SliceKind::Rdc));
    let record = || {
        let runner = FleetRunner::new(scenario.clone(), FleetConfig::new(3).with_seed(5)).unwrap();
        runner.run().unwrap().trace.to_json()
    };
    // The elastic twin: a migrating hotspot-shift fleet — the balancer's
    // plan (and therefore the migration schedule embedded in the trace)
    // must be a pure function of deterministic state, never of scheduling.
    let record_elastic = || {
        let runner =
            ElasticFleetRunner::new(hotspot_shift(), ElasticFleetConfig::new(2).with_seed(5))
                .unwrap();
        let outcome = runner.run().unwrap();
        assert!(
            !outcome.report.migrations.is_empty(),
            "the hotspot run must actually migrate for this gate to bite"
        );
        outcome.trace.to_json()
    };
    // Every registered non-default policy rides the same gate: the plans of
    // `predictive` and `cost-aware` (and the `cautious` admission variant)
    // must also be pure functions of deterministic state.
    let record_policy = |balance: &'static str| {
        let mut config = ElasticFleetConfig::new(2)
            .with_seed(5)
            .with_balancer(BalancerConfig {
                policy: BalancePolicyName::parse(balance).unwrap(),
                ..BalancerConfig::default()
            });
        config.base.admission.policy = AdmissionPolicyName::parse("cautious").unwrap();
        let runner = ElasticFleetRunner::new(diurnal_fleet(), config).unwrap();
        runner.run().unwrap().trace.to_json()
    };
    let previous = std::env::var("RAYON_NUM_THREADS").ok();
    let default_threads = record();
    let default_elastic = record_elastic();
    let default_predictive = record_policy("predictive");
    let default_cost_aware = record_policy("cost-aware");
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_thread = record();
    let single_elastic = record_elastic();
    let single_predictive = record_policy("predictive");
    let single_cost_aware = record_policy("cost-aware");
    match previous {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    assert_eq!(
        default_threads, single_thread,
        "fleet traces must not depend on the rayon worker count"
    );
    assert_eq!(
        default_elastic, single_elastic,
        "elastic fleet traces (migrations included) must not depend on the rayon worker count"
    );
    assert_eq!(
        default_predictive, single_predictive,
        "predictive-policy traces must not depend on the rayon worker count"
    );
    assert_eq!(
        default_cost_aware, single_cost_aware,
        "cost-aware-policy traces must not depend on the rayon worker count"
    );
}
