//! Contract tests for the pluggable balance-policy registry.
//!
//! * Unknown policy names are startup errors that name the registered set —
//!   both through the registry lookup and through `BalancerConfig`
//!   deserialization, so a bad `config.toml` never reaches a run.
//! * Selecting `greedy` through the registry is byte-identical to the
//!   pre-registry balancer (the goldens and `BENCH_fleet.json` pin the same
//!   fact from the outside; this pins it at the trace level).
//! * The non-greedy policies honor the same checkpoint/resume contract as
//!   greedy: a kill/resume mid-run yields a byte-identical final trace.
//! * On `diurnal-fleet` a forecast-driven policy strictly beats greedy —
//!   the "prediction can actually win" claim behind the tournament bench.

use onslicing_fleet::{
    balance_policy_by_name, balance_policy_names, BalancePolicyName, BalancerConfig,
    ElasticFleetConfig, ElasticFleetRunner, FleetCheckpoint, FleetOutcome, BALANCE_POLICIES,
};
use onslicing_scenario::{diurnal_fleet, hotspot_shift};
use serde::{Deserialize, Serialize};

fn config_with(policy: BalancePolicyName) -> ElasticFleetConfig {
    ElasticFleetConfig::new(2)
        .with_seed(0)
        .with_balancer(BalancerConfig {
            policy,
            ..BalancerConfig::default()
        })
}

fn run_diurnal(policy: BalancePolicyName) -> FleetOutcome {
    ElasticFleetRunner::new(diurnal_fleet(), config_with(policy))
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn unknown_balance_policy_is_a_startup_error_naming_the_registered_set() {
    let err = balance_policy_by_name("round-robin")
        .map(|p| p.name())
        .unwrap_err();
    assert!(
        err.contains("unknown balance policy `round-robin`"),
        "{err}"
    );
    for name in balance_policy_names() {
        assert!(err.contains(name), "error must name `{name}`: {err}");
    }
    // The same check guards deserialized configs (fleetd's config.toml path):
    // a well-formed config with a misspelled policy name must fail to parse.
    let mut bad = BalancerConfig::default().serialize_value();
    if let serde::Value::Obj(pairs) = &mut bad {
        for (k, v) in pairs.iter_mut() {
            if k == "policy" {
                *v = serde::Value::Str("round-robin".to_string());
            }
        }
    }
    let err = BalancerConfig::from_value(&bad).unwrap_err();
    assert!(err.0.contains("unknown balance policy"), "{}", err.0);
}

#[test]
fn every_registered_policy_resolves_and_round_trips_by_name() {
    for policy in BALANCE_POLICIES {
        let resolved = balance_policy_by_name(policy.name()).unwrap();
        assert_eq!(resolved.name(), policy.name());
        let name = BalancePolicyName::parse(policy.name()).unwrap();
        assert_eq!(name.as_str(), policy.name());
        assert!(!policy.description().is_empty());
    }
}

#[test]
fn greedy_through_the_registry_is_byte_identical_to_the_default_config() {
    let implicit =
        ElasticFleetRunner::new(hotspot_shift(), ElasticFleetConfig::new(2).with_seed(0))
            .unwrap()
            .run()
            .unwrap();
    let explicit = ElasticFleetRunner::new(
        hotspot_shift(),
        config_with(BalancePolicyName::parse("greedy").unwrap()),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(
        implicit.trace.to_json(),
        explicit.trace.to_json(),
        "selecting greedy by name must not perturb the pre-registry behavior"
    );
}

#[test]
fn tournament_has_a_non_greedy_winner_on_diurnal_fleet() {
    let greedy = run_diurnal(BalancePolicyName::GREEDY).report;
    let predictive = run_diurnal(BalancePolicyName::PREDICTIVE).report;
    assert!(
        predictive.sla_violation_percent <= greedy.sla_violation_percent,
        "predictive must not lose SLA ground to greedy on diurnal-fleet \
         (predictive {} vs greedy {})",
        predictive.sla_violation_percent,
        greedy.sla_violation_percent
    );
    assert!(
        predictive.avg_slot_cost < greedy.avg_slot_cost,
        "predictive must strictly beat greedy on avg slot cost on diurnal-fleet \
         (predictive {} vs greedy {}) — it evacuates the morning-peak cell ahead \
         of the surge instead of reacting to it",
        predictive.avg_slot_cost,
        greedy.avg_slot_cost
    );
}

#[test]
fn non_greedy_policies_survive_checkpoint_resume_byte_identically() {
    for policy in [BalancePolicyName::PREDICTIVE, BalancePolicyName::COST_AWARE] {
        let reference = run_diurnal(policy);
        assert!(
            !reference.report.migrations.is_empty(),
            "{policy}: the diurnal run must migrate for this gate to bite",
            policy = policy.as_str()
        );
        // Kill the fleet mid-run — past the first rebalancing round — and
        // resume from the serialized checkpoint.
        let mut fleet =
            onslicing_fleet::ElasticFleet::new(diurnal_fleet(), config_with(policy)).unwrap();
        let total = fleet.total_slots();
        fleet.advance_to(total / 2).unwrap();
        let frozen = fleet.checkpoint().to_json();
        drop(fleet);
        let mut resumed = FleetCheckpoint::from_json(&frozen)
            .unwrap()
            .restore()
            .unwrap();
        resumed.advance_to(total).unwrap();
        let outcome = resumed.finish(1.0).unwrap();
        assert_eq!(
            reference.trace.to_json(),
            outcome.trace.to_json(),
            "{}: resumed trace diverges from the uninterrupted run",
            policy.as_str()
        );
    }
}
