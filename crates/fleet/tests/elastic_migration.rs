//! Elastic-fleet integration tests: the determinism contract of live
//! migration and the balancer's effect on the fleet SLA.
//!
//! The load-bearing property: an elastic run whose balancer plans nothing
//! — disabled, or enabled with an infinite load-gap threshold (window-
//! stepped exactly like a migrating run) — emits a [`FleetTrace`] that is
//! **byte-identical** to the frozen PR 4 runner's. Migration must be a
//! pure re-homing of state: the machinery itself may not perturb a single
//! bit of telemetry when no slice actually moves.

use onslicing_fleet::{
    BalancerConfig, ElasticFleetConfig, ElasticFleetRunner, FleetConfig, FleetRunner,
};
use onslicing_scenario::{
    hotspot_shift, AdmissionConfig, FleetScenario, Scenario, ScenarioConfig, ScenarioEngine,
    SliceSpec,
};
use onslicing_slices::SliceKind;
use proptest::prelude::*;

fn tiny_base() -> Scenario {
    Scenario::new("tiny-elastic", 8, 16)
        .with_capacity(1.5)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Rdc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// migrate(slice, A→B) is pure state motion: with the balancer forced
    /// to a no-op plan (and with it disabled outright), the elastic runner
    /// reproduces the frozen runner's telemetry byte for byte — for random
    /// seeds and cell counts.
    #[test]
    fn noop_elastic_runs_are_byte_identical_to_the_frozen_runner(
        seed in 0u64..10_000,
        cells in 1usize..4,
    ) {
        let frozen = FleetRunner::new(tiny_base(), FleetConfig::new(cells).with_seed(seed))
            .unwrap()
            .run()
            .unwrap();
        let elastic = |balancer: BalancerConfig| {
            ElasticFleetRunner::new(
                FleetScenario::new(tiny_base(), 1),
                ElasticFleetConfig::new(cells).with_seed(seed).with_balancer(balancer),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let disabled = elastic(BalancerConfig::disabled());
        let forced_noop = elastic(BalancerConfig::forced_noop());
        prop_assert!(disabled.report.migrations.is_empty());
        prop_assert!(forced_noop.report.migrations.is_empty());
        let reference = frozen.trace.to_json();
        prop_assert_eq!(disabled.trace.to_json(), reference.clone());
        // The forced-noop run was window-stepped on the balancer cadence —
        // the windowing itself must not leave a trace.
        prop_assert_eq!(forced_noop.trace.to_json(), reference);
    }
}

#[test]
fn migrated_agents_keep_exact_weights_and_rng_streams() {
    // Two cells of the hotspot-shift fleet, stepped mid-run; slice 3 of
    // the hot cell is extracted and injected into the cold cell. The
    // serialized agent and environment must be byte-identical across the
    // move — weights, Adam moments, rollout buffer, Lagrangian state and
    // both RNG streams — and the slice must keep running in its new home.
    let fleet = hotspot_shift();
    let config = ScenarioConfig::default();
    let mut hot = ScenarioEngine::new(fleet.scenario_for_cell(0), config.for_cell(0)).unwrap();
    let mut cold = ScenarioEngine::new(fleet.scenario_for_cell(1), config.for_cell(1)).unwrap();
    hot.run_until(14, &mut ());
    cold.run_until(14, &mut ());

    let migration = hot.extract_slice(3, 14).unwrap();
    let agent_bytes = serde_json::to_string(&migration.checkpoint.agent).unwrap();
    let env_bytes = serde_json::to_string(&migration.checkpoint.env).unwrap();
    assert!(migration.traffic_restores.is_empty());
    let new_id = cold.inject_slice(migration, 14).unwrap();
    assert_eq!(new_id.0, 4, "the cold cell hands out its own next id");

    let index = cold.orchestrator().index_of(new_id).unwrap();
    assert_eq!(
        serde_json::to_string(&cold.orchestrator().agents()[index]).unwrap(),
        agent_bytes,
        "agent state must survive migration bit-for-bit"
    );
    assert_eq!(
        serde_json::to_string(&cold.orchestrator().env().envs()[index]).unwrap(),
        env_bytes,
        "environment state must survive migration bit-for-bit"
    );

    // The migrated slice lives on: the cold cell runs to completion and
    // closes episodes for it (it arrived mid-episode).
    let report = cold.run_with_observer(&mut ());
    let migrated = report.slices.iter().find(|s| s.id == new_id.0).unwrap();
    assert_eq!(migrated.admitted_at_slot, 14);
    assert!(
        migrated.episodes > 0,
        "the migrated slice must keep closing episodes"
    );
    // And the hot cell accounts the departure like a teardown at slot 14.
    let hot_report = hot.run_with_observer(&mut ());
    assert_eq!(hot_report.slices[3].torn_down_at_slot, Some(14));
}

#[test]
fn hotspot_shift_balancer_strictly_reduces_fleet_sla_violations() {
    // The acceptance criterion: with the traffic hotspot concentrated on
    // cell 0, enabling the balancer must strictly lower the fleet-wide
    // SLA-violation percentage versus frozen sharding — migrations give
    // the hot slices idle-neighbor capacity instead of a squeezed share.
    let run = |balancer: BalancerConfig| {
        ElasticFleetRunner::new(
            hotspot_shift(),
            ElasticFleetConfig::new(2).with_balancer(balancer),
        )
        .unwrap()
        .run()
        .unwrap()
    };
    let frozen = run(BalancerConfig::disabled());
    let balanced = run(BalancerConfig::default());
    assert!(
        !balanced.report.migrations.is_empty(),
        "the hotspot must trigger at least one migration"
    );
    assert!(
        balanced.report.sla_violation_percent < frozen.report.sla_violation_percent,
        "balancer on: {:.3}% violations must be strictly below balancer off: {:.3}%",
        balanced.report.sla_violation_percent,
        frozen.report.sla_violation_percent
    );
    // Migrations drain the hotspot, never feed it.
    for m in &balanced.report.migrations {
        assert_eq!(m.from_cell, 0, "migrations must leave the hot cell");
        assert_ne!(m.to_cell, 0);
    }
    // Every migration shows up in both endpoint cells' telemetry.
    for m in &balanced.report.migrations {
        let source = &balanced.trace.cells[m.from_cell as usize].trace;
        let target = &balanced.trace.cells[m.to_cell as usize].trace;
        assert!(source
            .migrations
            .iter()
            .any(|e| !e.arrived && e.slice == m.from_slice && e.peer_slice == m.to_slice));
        assert!(target
            .migrations
            .iter()
            .any(|e| e.arrived && e.slice == m.to_slice && e.peer_slice == m.from_slice));
    }
    // The two scripted fleet admissions resolved (the surge leaves room on
    // the cold cell, so at least one lands there).
    let report = &balanced.report;
    assert_eq!(
        report.fleet_admissions_granted + report.fleet_admissions_denied,
        2
    );
    assert!(report.fleet_admissions_granted >= 1);
}

#[test]
fn fleet_admissions_are_denied_fleet_wide_when_no_cell_can_host() {
    // Every cell is saturated by construction (the estimated share exceeds
    // any cell's residual), so the fleet-routed admission must be denied
    // fleet-wide rather than forced onto some cell.
    let base = Scenario::new("full-fleet", 8, 16)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs));
    let fleet = FleetScenario::new(base, 1).fleet_admit(8, SliceSpec::new(SliceKind::Rdc));
    let config = ElasticFleetConfig {
        cells: 2,
        base: ScenarioConfig {
            admission: AdmissionConfig {
                estimated_share: 0.95,
                headroom: 0.0,
                ..Default::default()
            },
            ..ScenarioConfig::default()
        },
        balancer: BalancerConfig::disabled(),
    };
    let outcome = ElasticFleetRunner::new(fleet, config)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.report.fleet_admissions_granted, 0);
    assert_eq!(outcome.report.fleet_admissions_denied, 1);
    assert_eq!(outcome.report.peak_slices, 4, "no cell grew");
}

#[test]
fn elastic_runner_rejects_underprovisioned_fleets() {
    // hotspot-shift targets cell 0 and declares min_cells = 2.
    assert!(
        ElasticFleetRunner::new(hotspot_shift(), ElasticFleetConfig::new(1))
            .unwrap_err()
            .contains("at least 2 cells")
    );
    let bad_balancer = ElasticFleetConfig::new(2).with_balancer(BalancerConfig {
        cadence_slots: 0,
        ..BalancerConfig::default()
    });
    assert!(ElasticFleetRunner::new(hotspot_shift(), bad_balancer).is_err());
}
