//! Poisson-point-process arrival emulation within a configuration slot.
//!
//! The paper emulates slice traffic inside each 15-minute configuration
//! interval by generating user-request timestamps from a Poisson point
//! process at the trace's arrival rate (§7.1): inter-arrival times are
//! exponential with mean `1 / rate`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Shared with the trace generator's log-normal noise; kept here so the crate
/// has no dependency beyond `rand`.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A Poisson point process over a fixed-length interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Mean arrival rate in events per second.
    rate: f64,
    /// Interval length in seconds.
    duration: f64,
}

impl PoissonArrivals {
    /// Creates an arrival process with the given rate (events/s) over a slot
    /// of `duration` seconds.
    ///
    /// # Panics
    /// Panics if the rate is negative or the duration is not positive.
    pub fn new(rate: f64, duration: f64) -> Self {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rate must be finite and non-negative"
        );
        assert!(duration > 0.0, "duration must be positive");
        Self { rate, duration }
    }

    /// The configured rate (events per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The slot duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Expected number of arrivals in the slot.
    pub fn expected_count(&self) -> f64 {
        self.rate * self.duration
    }

    /// Samples the arrival timestamps (seconds from the start of the slot),
    /// in increasing order.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        if self.rate == 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.expected_count().ceil() as usize);
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival with mean 1/rate.
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / self.rate;
            if t >= self.duration {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Samples only the number of arrivals in the slot (a Poisson draw).
    ///
    /// For large expected counts (> 50) a Gaussian approximation is used;
    /// this is what the RDC slice (up to 90 000 arrivals per slot) relies on.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lambda = self.expected_count();
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 50.0 {
            let z = standard_normal(rng);
            let v = lambda + lambda.sqrt() * z;
            return v.round().max(0.0) as u64;
        }
        // Knuth's algorithm for small lambda.
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // safety valve; unreachable for lambda <= 50
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_rate_produces_no_arrivals() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p = PoissonArrivals::new(0.0, 900.0);
        assert!(p.sample(&mut rng).is_empty());
        assert_eq!(p.sample_count(&mut rng), 0);
    }

    #[test]
    fn arrivals_are_sorted_and_within_the_slot() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = PoissonArrivals::new(2.0, 100.0);
        let times = p.sample(&mut rng);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..100.0).contains(&t)));
    }

    #[test]
    fn empirical_mean_count_matches_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = PoissonArrivals::new(5.0, 60.0); // expect 300
        let n_trials = 200;
        let total: usize = (0..n_trials).map(|_| p.sample(&mut rng).len()).sum();
        let mean = total as f64 / n_trials as f64;
        assert!(
            (mean - 300.0).abs() < 15.0,
            "empirical mean {mean} should be close to 300"
        );
    }

    #[test]
    fn sample_count_matches_expectation_for_large_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = PoissonArrivals::new(100.0, 900.0); // expect 90 000
        let mean: f64 = (0..100)
            .map(|_| p.sample_count(&mut rng) as f64)
            .sum::<f64>()
            / 100.0;
        assert!((mean - 90_000.0).abs() / 90_000.0 < 0.01);
    }

    #[test]
    fn sample_count_matches_expectation_for_small_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = PoissonArrivals::new(0.01, 300.0); // expect 3
        let mean: f64 = (0..5_000)
            .map(|_| p.sample_count(&mut rng) as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!(
            (mean - 3.0).abs() < 0.15,
            "empirical mean {mean} should be near 3"
        );
    }

    #[test]
    fn standard_normal_has_roughly_unit_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} should be near 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} should be near 1");
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_is_rejected() {
        let _ = PoissonArrivals::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_is_rejected() {
        let _ = PoissonArrivals::new(-1.0, 10.0);
    }
}
