//! Diurnal traffic-trace synthesis.
//!
//! A [`TrafficTrace`] is a sequence of per-slot mean arrival rates
//! (users per second) for one slice. Traces are produced by a
//! [`TraceGenerator`] from a [`DiurnalTraceConfig`] describing the diurnal
//! envelope and noise level, then scaled so the busiest slot hits the
//! configured peak rate — mirroring how the paper rescales the Telecom
//! Italia traces to the testbed's capacity.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SLOTS_PER_DAY;

/// Configuration of the synthetic diurnal traffic envelope for one slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalTraceConfig {
    /// Peak arrival rate in users per second; the busiest slot of the
    /// generated trace equals this value exactly.
    pub peak_rate: f64,
    /// Fraction of the peak that persists at the quietest time of day
    /// (0 = the trace dips to zero at night, 1 = flat traffic).
    pub base_fraction: f64,
    /// Relative strength of the 12-hour harmonic (second diurnal peak,
    /// typically a morning and an evening busy hour). 0 disables it.
    pub second_harmonic: f64,
    /// Hour of day (0–24) at which the main diurnal peak occurs.
    pub peak_hour: f64,
    /// Standard deviation of the multiplicative log-normal noise applied to
    /// every slot (0 disables noise).
    pub noise_std: f64,
    /// Relative weekend attenuation applied when generating traces longer
    /// than one day (0 = weekends identical to weekdays).
    pub weekend_dip: f64,
}

impl DiurnalTraceConfig {
    /// Profile for the mobile-AR slice: 5 users/s peak (paper §7.1),
    /// office-hours centred with a noticeable evening tail.
    pub fn mar_default() -> Self {
        Self {
            peak_rate: 5.0,
            base_fraction: 0.15,
            second_harmonic: 0.35,
            peak_hour: 14.0,
            noise_std: 0.12,
            weekend_dip: 0.25,
        }
    }

    /// Profile for the HD-video-streaming slice: 2 users/s peak, evening
    /// centred (streaming peaks after work hours).
    pub fn hvs_default() -> Self {
        Self {
            peak_rate: 2.0,
            base_fraction: 0.2,
            second_harmonic: 0.2,
            peak_hour: 20.0,
            noise_std: 0.15,
            weekend_dip: -0.15, // slightly *more* streaming on weekends
        }
    }

    /// Profile for the reliable-distant-control (IoT) slice: 100 users/s
    /// peak, nearly flat (machine-type traffic barely follows human rhythms).
    pub fn rdc_default() -> Self {
        Self {
            peak_rate: 100.0,
            base_fraction: 0.7,
            second_harmonic: 0.05,
            peak_hour: 11.0,
            noise_std: 0.05,
            weekend_dip: 0.05,
        }
    }

    /// Returns a copy with a different peak rate (used for the user-scaling
    /// experiment of Fig. 18).
    pub fn with_peak_rate(mut self, peak_rate: f64) -> Self {
        self.peak_rate = peak_rate;
        self
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.peak_rate <= 0.0 {
            return Err(format!(
                "peak_rate must be positive, got {}",
                self.peak_rate
            ));
        }
        if !(0.0..=1.0).contains(&self.base_fraction) {
            return Err(format!(
                "base_fraction must be in [0, 1], got {}",
                self.base_fraction
            ));
        }
        if self.noise_std < 0.0 {
            return Err(format!(
                "noise_std must be non-negative, got {}",
                self.noise_std
            ));
        }
        if !(0.0..24.0).contains(&self.peak_hour) {
            return Err(format!(
                "peak_hour must be in [0, 24), got {}",
                self.peak_hour
            ));
        }
        Ok(())
    }
}

/// A per-slot arrival-rate trace (users per second) for one slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficTrace {
    rates: Vec<f64>,
    slot_seconds: f64,
}

impl TrafficTrace {
    /// Wraps an explicit rate sequence (e.g. loaded from a real dataset).
    ///
    /// # Panics
    /// Panics if any rate is negative or not finite.
    pub fn from_rates(rates: Vec<f64>, slot_seconds: f64) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "arrival rates must be finite and non-negative"
        );
        assert!(slot_seconds > 0.0, "slot duration must be positive");
        Self {
            rates,
            slot_seconds,
        }
    }

    /// Number of slots in the trace.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Duration of one slot in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.slot_seconds
    }

    /// Arrival rate (users/s) at slot `t`; the trace wraps around so that any
    /// slot index is valid (day after day repeats the same envelope, noise
    /// included).
    pub fn rate_at(&self, t: usize) -> f64 {
        assert!(!self.rates.is_empty(), "rate_at on an empty trace");
        self.rates[t % self.rates.len()]
    }

    /// Expected number of arrivals in slot `t` (`rate · slot_seconds`).
    pub fn expected_arrivals_at(&self, t: usize) -> f64 {
        self.rate_at(t) * self.slot_seconds
    }

    /// The maximum rate over the trace.
    pub fn peak_rate(&self) -> f64 {
        self.rates.iter().cloned().fold(0.0, f64::max)
    }

    /// The mean rate over the trace.
    pub fn mean_rate(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }

    /// Immutable access to the raw per-slot rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Returns a copy with every rate multiplied by `scale` (a traffic
    /// regime shift: the diurnal shape is preserved, the volume changes).
    ///
    /// # Panics
    /// Panics if the scale is negative or not finite.
    pub fn scaled(&self, scale: f64) -> Self {
        assert!(
            scale >= 0.0 && scale.is_finite(),
            "traffic scale must be finite and non-negative"
        );
        Self {
            rates: self.rates.iter().map(|r| r * scale).collect(),
            slot_seconds: self.slot_seconds,
        }
    }

    /// Returns a copy rescaled so that its peak equals `new_peak`.
    ///
    /// # Panics
    /// Panics if the trace is empty or all-zero.
    pub fn rescaled_to_peak(&self, new_peak: f64) -> Self {
        let peak = self.peak_rate();
        assert!(peak > 0.0, "cannot rescale an all-zero trace");
        let scale = new_peak / peak;
        Self {
            rates: self.rates.iter().map(|r| r * scale).collect(),
            slot_seconds: self.slot_seconds,
        }
    }
}

/// Generates [`TrafficTrace`]s from a [`DiurnalTraceConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenerator {
    config: DiurnalTraceConfig,
    slot_seconds: f64,
}

impl TraceGenerator {
    /// Creates a generator with the paper's 15-minute slots.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`DiurnalTraceConfig::validate`]).
    pub fn new(config: DiurnalTraceConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid trace configuration: {e}");
        }
        Self {
            config,
            slot_seconds: crate::SLOT_SECONDS,
        }
    }

    /// Overrides the slot duration (useful for tests at a faster timescale).
    pub fn with_slot_seconds(mut self, slot_seconds: f64) -> Self {
        assert!(slot_seconds > 0.0, "slot duration must be positive");
        self.slot_seconds = slot_seconds;
        self
    }

    /// The generator's configuration.
    pub fn config(&self) -> &DiurnalTraceConfig {
        &self.config
    }

    /// Noise-free diurnal envelope value (in `[base_fraction, 1]`) at the
    /// given slot index.
    pub fn envelope(&self, slot: usize) -> f64 {
        let c = &self.config;
        let hour = (slot % SLOTS_PER_DAY) as f64 * 24.0 / SLOTS_PER_DAY as f64;
        let day = slot / SLOTS_PER_DAY;
        let phase = (hour - c.peak_hour) / 24.0 * std::f64::consts::TAU;
        // Main 24-hour component peaking at `peak_hour`, plus a 12-hour
        // harmonic producing a secondary busy period.
        let mut shape =
            0.5 * (1.0 + phase.cos()) + c.second_harmonic * 0.5 * (1.0 + (2.0 * phase).cos());
        shape /= 1.0 + c.second_harmonic;
        let mut v = c.base_fraction + (1.0 - c.base_fraction) * shape;
        // Weekend attenuation (days 5 and 6 of each week).
        if day % 7 >= 5 {
            v *= (1.0 - c.weekend_dip).max(0.0);
        }
        v.clamp(0.0, 2.0)
    }

    /// Generates a trace of `num_slots` slots, applying multiplicative
    /// log-normal noise and rescaling so the busiest slot equals the
    /// configured peak rate.
    pub fn generate<R: Rng + ?Sized>(&self, num_slots: usize, rng: &mut R) -> TrafficTrace {
        assert!(num_slots > 0, "a trace needs at least one slot");
        let c = &self.config;
        let mut rates: Vec<f64> = (0..num_slots)
            .map(|t| {
                let mut v = self.envelope(t);
                if c.noise_std > 0.0 {
                    let z = crate::arrivals::standard_normal(rng);
                    v *= (c.noise_std * z - 0.5 * c.noise_std * c.noise_std).exp();
                }
                v.max(0.0)
            })
            .collect();
        let peak = rates.iter().cloned().fold(0.0, f64::max).max(1e-12);
        let scale = c.peak_rate / peak;
        for r in &mut rates {
            *r *= scale;
        }
        TrafficTrace {
            rates,
            slot_seconds: self.slot_seconds,
        }
    }

    /// Generates the noise-free envelope trace (deterministic), rescaled to
    /// the peak rate. Useful for the model-based baseline, which assumes it
    /// knows the expected traffic.
    pub fn generate_mean(&self, num_slots: usize) -> TrafficTrace {
        assert!(num_slots > 0, "a trace needs at least one slot");
        let mut rates: Vec<f64> = (0..num_slots).map(|t| self.envelope(t)).collect();
        let peak = rates.iter().cloned().fold(0.0, f64::max).max(1e-12);
        let scale = self.config.peak_rate / peak;
        for r in &mut rates {
            *r *= scale;
        }
        TrafficTrace {
            rates,
            slot_seconds: self.slot_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_configs_are_valid() {
        for cfg in [
            DiurnalTraceConfig::mar_default(),
            DiurnalTraceConfig::hvs_default(),
            DiurnalTraceConfig::rdc_default(),
        ] {
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn generated_trace_peaks_at_configured_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for cfg in [
            DiurnalTraceConfig::mar_default(),
            DiurnalTraceConfig::hvs_default(),
            DiurnalTraceConfig::rdc_default(),
        ] {
            let peak = cfg.peak_rate;
            let trace = TraceGenerator::new(cfg).generate(2 * SLOTS_PER_DAY, &mut rng);
            assert!((trace.peak_rate() - peak).abs() < 1e-9);
            assert!(trace.rates().iter().all(|&r| r >= 0.0));
        }
    }

    #[test]
    fn envelope_peaks_near_configured_hour() {
        let gen = TraceGenerator::new(DiurnalTraceConfig::mar_default());
        let trace = gen.generate_mean(SLOTS_PER_DAY);
        let argmax = trace
            .rates()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let hour = argmax as f64 * 24.0 / SLOTS_PER_DAY as f64;
        assert!(
            (hour - 14.0).abs() < 1.5,
            "peak hour {hour} should be near 14:00"
        );
    }

    #[test]
    fn rdc_trace_is_flatter_than_mar_trace() {
        let mar =
            TraceGenerator::new(DiurnalTraceConfig::mar_default()).generate_mean(SLOTS_PER_DAY);
        let rdc =
            TraceGenerator::new(DiurnalTraceConfig::rdc_default()).generate_mean(SLOTS_PER_DAY);
        let ratio = |t: &TrafficTrace| t.mean_rate() / t.peak_rate();
        assert!(
            ratio(&rdc) > ratio(&mar),
            "machine-type traffic should be flatter"
        );
    }

    #[test]
    fn weekend_dip_reduces_weekend_traffic() {
        let gen = TraceGenerator::new(DiurnalTraceConfig::mar_default());
        let trace = gen.generate_mean(7 * SLOTS_PER_DAY);
        let weekday_mean: f64 =
            trace.rates()[..5 * SLOTS_PER_DAY].iter().sum::<f64>() / (5 * SLOTS_PER_DAY) as f64;
        let weekend_mean: f64 =
            trace.rates()[5 * SLOTS_PER_DAY..].iter().sum::<f64>() / (2 * SLOTS_PER_DAY) as f64;
        assert!(weekend_mean < weekday_mean);
    }

    #[test]
    fn trace_wraps_around() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = TraceGenerator::new(DiurnalTraceConfig::hvs_default()).generate(96, &mut rng);
        assert_eq!(trace.rate_at(0), trace.rate_at(96));
        assert_eq!(trace.rate_at(5), trace.rate_at(96 + 5));
    }

    #[test]
    fn expected_arrivals_scales_with_slot_duration() {
        let trace = TrafficTrace::from_rates(vec![2.0, 4.0], 10.0);
        assert_eq!(trace.expected_arrivals_at(0), 20.0);
        assert_eq!(trace.expected_arrivals_at(1), 40.0);
    }

    #[test]
    fn scaled_multiplies_every_rate_and_keeps_the_slot_duration() {
        let trace = TrafficTrace::from_rates(vec![1.0, 2.0, 4.0], 900.0);
        let surged = trace.scaled(1.5);
        assert_eq!(surged.rates(), &[1.5, 3.0, 6.0]);
        assert_eq!(surged.slot_seconds(), 900.0);
        assert_eq!(trace.scaled(0.0).peak_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "traffic scale must be finite")]
    fn negative_traffic_scale_is_rejected() {
        let _ = TrafficTrace::from_rates(vec![1.0], 900.0).scaled(-1.0);
    }

    #[test]
    fn rescaled_to_peak_changes_only_the_scale() {
        let trace = TrafficTrace::from_rates(vec![1.0, 2.0, 4.0], 900.0);
        let scaled = trace.rescaled_to_peak(8.0);
        assert_eq!(scaled.rates(), &[2.0, 4.0, 8.0]);
        assert_eq!(scaled.slot_seconds(), 900.0);
    }

    #[test]
    fn generation_is_reproducible_with_the_same_seed() {
        let gen = TraceGenerator::new(DiurnalTraceConfig::mar_default());
        let a = gen.generate(96, &mut ChaCha8Rng::seed_from_u64(7));
        let b = gen.generate(96, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn mean_trace_is_noise_free_and_deterministic() {
        let gen = TraceGenerator::new(DiurnalTraceConfig::hvs_default());
        assert_eq!(gen.generate_mean(96), gen.generate_mean(96));
    }

    #[test]
    #[should_panic(expected = "invalid trace configuration")]
    fn invalid_config_panics() {
        let mut cfg = DiurnalTraceConfig::mar_default();
        cfg.peak_rate = -1.0;
        let _ = TraceGenerator::new(cfg);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rates_are_rejected() {
        let _ = TrafficTrace::from_rates(vec![1.0, -0.5], 900.0);
    }
}
