//! # onslicing-traffic
//!
//! Synthetic mobile traffic traces and arrival-process emulation for the
//! OnSlicing reproduction.
//!
//! The paper drives its three slices (MAR, HVS, RDC) with the open Telecom
//! Italia dataset: per-base-station Call/SMS/Internet activity over the
//! Province of Trento at ≥10-minute granularity, rescaled so that the peak
//! arrival rates match the testbed capacity (5 users/s for MAR, 2 users/s for
//! HVS, 100 users/s for RDC; §7.1). Within a 15-minute configuration interval
//! the arrivals are emulated as a Poisson point process at the trace's rate.
//!
//! The dataset itself is not redistributable here, so this crate synthesizes
//! traces with the same *statistical shape*: a diurnal envelope (strong 24-hour
//! component, weaker 12-hour harmonic, a weekday/weekend modulation) plus
//! log-normal multiplicative noise, normalized and then rescaled to a target
//! peak rate. The learning problem only depends on the traces being
//! time-varying, diurnal and bursty — which this preserves.
//!
//! ```
//! use onslicing_traffic::{DiurnalTraceConfig, TraceGenerator, PoissonArrivals};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let config = DiurnalTraceConfig::mar_default();
//! let trace = TraceGenerator::new(config).generate(96, &mut rng);
//! assert_eq!(trace.len(), 96);
//! // Emulate one 15-minute slot of user arrivals at the slot's rate.
//! let arrivals = PoissonArrivals::new(trace.rate_at(40), 900.0);
//! let times = arrivals.sample(&mut rng);
//! assert!(times.windows(2).all(|w| w[0] <= w[1]));
//! ```

pub mod arrivals;
pub mod trace;

pub use arrivals::PoissonArrivals;
pub use trace::{DiurnalTraceConfig, TraceGenerator, TrafficTrace};

/// Number of configuration slots in one emulated day at the paper's
/// 15-minute configuration interval (`24 h / 15 min = 96`), which is also the
/// paper's episode length.
pub const SLOTS_PER_DAY: usize = 96;

/// Duration of one configuration slot in seconds (15 minutes).
pub const SLOT_SECONDS: f64 = 900.0;
