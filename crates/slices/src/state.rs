//! The DRL observation (state) vector of an OnSlicing agent (paper §3).
//!
//! The paper defines the state as the combination of the current time slot,
//! the previous slot's slice traffic, average channel condition, radio
//! resource usage, VNF/edge workload, reward and cost, plus the SLA threshold
//! `C_max` and the cumulative cost so far. [`SliceState`] holds these in
//! normalized form and flattens to a fixed-width vector for the policy
//! networks.

use serde::{Deserialize, Serialize};

use crate::kpi::SlotKpi;
use crate::sla::Sla;

/// Dimensionality of the flattened state vector.
pub const STATE_DIM: usize = 9;

/// The observation an OnSlicing agent sees at the start of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceState {
    /// Current slot index within the episode, normalized to `[0, 1)`
    /// (`t / T`).
    pub slot_fraction: f64,
    /// Previous slot's traffic, normalized by the slice's peak rate.
    pub traffic: f64,
    /// Previous slot's average channel quality in `[0, 1]`.
    pub channel_quality: f64,
    /// Previous slot's radio-resource utilization in `[0, 1]`.
    pub radio_usage: f64,
    /// Previous slot's VNF / edge-server workload (≈ `[0, 1.5]`).
    pub workload: f64,
    /// Previous slot's resource usage normalized to `[0, 1]`
    /// (the negated, rescaled reward).
    pub prev_usage: f64,
    /// Previous slot's cost in `[0, 1]`.
    pub prev_cost: f64,
    /// The SLA threshold `C_max`.
    pub cost_threshold: f64,
    /// Cumulative episode cost so far, normalized by the episode budget
    /// `T · C_max` (1.0 means the budget is exactly exhausted).
    pub budget_used: f64,
}

impl SliceState {
    /// The observation at the very beginning of an episode, before any slot
    /// has produced measurements.
    pub fn initial(sla: &Sla, initial_traffic: f64) -> Self {
        Self {
            slot_fraction: 0.0,
            traffic: initial_traffic.clamp(0.0, 2.0),
            channel_quality: 1.0,
            radio_usage: 0.0,
            workload: 0.0,
            prev_usage: 0.0,
            prev_cost: 0.0,
            cost_threshold: sla.cost_threshold,
            budget_used: 0.0,
        }
    }

    /// Builds the next observation from the slot that just finished.
    ///
    /// * `slot` / `horizon` — the index of the *upcoming* slot and the episode
    ///   length `T`.
    /// * `traffic` — the upcoming slot's expected traffic, normalized by the
    ///   slice peak (the agent knows the time of day and last observed load).
    /// * `kpi` — the measurements of the slot that just completed.
    /// * `cumulative_cost` — `Σ c(s_m, a_m)` including the completed slot.
    pub fn from_kpi(
        sla: &Sla,
        slot: usize,
        horizon: usize,
        traffic: f64,
        kpi: &SlotKpi,
        cumulative_cost: f64,
    ) -> Self {
        assert!(horizon > 0, "episode horizon must be positive");
        let budget = sla.episode_cost_budget(horizon).max(1e-9);
        Self {
            slot_fraction: (slot % horizon) as f64 / horizon as f64,
            traffic: traffic.clamp(0.0, 2.0),
            channel_quality: kpi.avg_channel_quality.clamp(0.0, 1.0),
            radio_usage: kpi.radio_utilization.clamp(0.0, 1.0),
            workload: kpi.server_workload.clamp(0.0, 2.0),
            prev_usage: (kpi.resource_usage / 6.0).clamp(0.0, 1.0),
            prev_cost: kpi.cost.clamp(0.0, 1.0),
            cost_threshold: sla.cost_threshold,
            budget_used: (cumulative_cost / budget).clamp(0.0, 5.0),
        }
    }

    /// Flattens the state into the vector consumed by the policy networks.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = vec![0.0; STATE_DIM];
        self.write_row(&mut v);
        v
    }

    /// Writes the observation vector ([`SliceState::to_vec`] layout) into a
    /// caller-provided row without allocating. The fused cell batch uses this
    /// to stack one observation row per slice.
    ///
    /// # Panics
    /// Panics if `out` does not have [`STATE_DIM`] elements.
    pub fn write_row(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            STATE_DIM,
            "state row must have {STATE_DIM} elements"
        );
        out[0] = self.slot_fraction;
        out[1] = self.traffic;
        out[2] = self.channel_quality;
        out[3] = self.radio_usage;
        out[4] = self.workload;
        out[5] = self.prev_usage;
        out[6] = self.prev_cost;
        out[7] = self.cost_threshold;
        out[8] = self.budget_used;
    }

    /// Rebuilds a state from a flattened vector.
    ///
    /// # Panics
    /// Panics if the vector does not have [`STATE_DIM`] elements.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(
            v.len(),
            STATE_DIM,
            "state vector must have {STATE_DIM} elements"
        );
        Self {
            slot_fraction: v[0],
            traffic: v[1],
            channel_quality: v[2],
            radio_usage: v[3],
            workload: v[4],
            prev_usage: v[5],
            prev_cost: v[6],
            cost_threshold: v[7],
            budget_used: v[8],
        }
    }

    /// Whether every component is finite (useful as a guard before feeding a
    /// policy network).
    pub fn is_finite(&self) -> bool {
        self.to_vec().iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::kind::SliceKind;

    #[test]
    fn state_dim_matches_to_vec_length() {
        let sla = Sla::for_kind(SliceKind::Mar);
        let s = SliceState::initial(&sla, 0.5);
        assert_eq!(s.to_vec().len(), STATE_DIM);
    }

    #[test]
    fn initial_state_has_zero_budget_used() {
        let sla = Sla::for_kind(SliceKind::Hvs);
        let s = SliceState::initial(&sla, 0.3);
        assert_eq!(s.budget_used, 0.0);
        assert_eq!(s.prev_cost, 0.0);
        assert_eq!(s.cost_threshold, 0.05);
        assert!(s.is_finite());
    }

    #[test]
    fn from_kpi_normalizes_fields() {
        let sla = Sla::for_kind(SliceKind::Hvs);
        let action = Action::uniform(0.5);
        let kpi = SlotKpi::new(
            &sla, &action, 15.0, 10, 10, 50.0, 1.0, 5.0, 15.0, 0.99, 0.02, 0.7, 0.4, 0.9,
        );
        let s = SliceState::from_kpi(&sla, 48, 96, 0.8, &kpi, 2.4);
        assert!((s.slot_fraction - 0.5).abs() < 1e-12);
        assert!((s.prev_usage - 0.5).abs() < 1e-12);
        assert!((s.prev_cost - 0.5).abs() < 1e-12);
        // budget = 96 * 0.05 = 4.8; 2.4 / 4.8 = 0.5
        assert!((s.budget_used - 0.5).abs() < 1e-12);
        assert!(s.is_finite());
    }

    #[test]
    fn slot_fraction_wraps_at_the_horizon() {
        let sla = Sla::for_kind(SliceKind::Mar);
        let kpi = SlotKpi::idle(&Action::zeros());
        let s = SliceState::from_kpi(&sla, 96, 96, 0.1, &kpi, 0.0);
        assert_eq!(s.slot_fraction, 0.0);
    }

    #[test]
    fn round_trip_through_vector() {
        let sla = Sla::for_kind(SliceKind::Rdc);
        let kpi = SlotKpi::idle(&Action::uniform(0.2));
        let s = SliceState::from_kpi(&sla, 10, 96, 0.4, &kpi, 0.1);
        let v = s.to_vec();
        assert_eq!(SliceState::from_vec(&v), s);
    }

    #[test]
    fn budget_used_is_clamped_but_can_exceed_one() {
        let sla = Sla::for_kind(SliceKind::Mar);
        let kpi = SlotKpi::idle(&Action::zeros());
        let s = SliceState::from_kpi(&sla, 5, 96, 0.1, &kpi, 100.0);
        assert!(s.budget_used > 1.0);
        assert!(s.budget_used <= 5.0);
    }

    #[test]
    #[should_panic(expected = "state vector must have")]
    fn from_vec_rejects_wrong_length() {
        let _ = SliceState::from_vec(&[0.0; 3]);
    }
}
