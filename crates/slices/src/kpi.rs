//! Per-slot key performance indicators reported by the simulated network.
//!
//! A [`SlotKpi`] is everything the slice tenant's application reports back to
//! the OnSlicing agent at the end of a configuration interval, together with
//! the network-side statistics the agent uses to build its next observation
//! (channel quality, radio usage, server workload). The paper's mobile
//! applications report these metrics periodically (§7.1, footnote 3).

use serde::{Deserialize, Serialize};

use crate::action::Action;
use crate::sla::Sla;

/// All measurements collected for one slice during one configuration slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotKpi {
    /// Number of user requests that arrived during the slot.
    pub offered_requests: u64,
    /// Number of user requests served within the slot.
    pub served_requests: u64,
    /// Average end-to-end round-trip latency of served requests, in ms.
    pub avg_latency_ms: f64,
    /// Achieved uplink throughput in Mbps (slice aggregate).
    pub ul_throughput_mbps: f64,
    /// Achieved downlink throughput in Mbps (slice aggregate).
    pub dl_throughput_mbps: f64,
    /// Delivered video frame rate (only meaningful for the HVS slice).
    pub delivered_fps: f64,
    /// Radio delivery reliability in `[0, 1]` (only meaningful for RDC).
    pub reliability: f64,
    /// Probability that a transmitted transport block needed retransmission.
    pub retransmission_prob: f64,
    /// Average channel quality of the slice's users, normalized to `[0, 1]`
    /// (CQI 15 = 1.0).
    pub avg_channel_quality: f64,
    /// Fraction of the slice's allocated PRBs actually used.
    pub radio_utilization: f64,
    /// Normalized workload of the slice's VNFs and edge server in `[0, ...]`
    /// (1.0 = fully loaded).
    pub server_workload: f64,
    /// Raw performance in the slice's natural unit (ms, FPS or reliability).
    pub raw_performance: f64,
    /// Normalized performance score `p_t / P` (larger is better).
    pub performance_score: f64,
    /// Per-slot cost `c(s_t, a_t)` from Eq. 10.
    pub cost: f64,
    /// Total virtual resource usage of the executed action (Eq. 9, in `[0, 6]`).
    pub resource_usage: f64,
}

impl SlotKpi {
    /// Builds a KPI record, deriving `performance_score`, `cost` and
    /// `resource_usage` from the SLA, the raw performance and the executed
    /// action.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sla: &Sla,
        executed_action: &Action,
        raw_performance: f64,
        offered_requests: u64,
        served_requests: u64,
        avg_latency_ms: f64,
        ul_throughput_mbps: f64,
        dl_throughput_mbps: f64,
        delivered_fps: f64,
        reliability: f64,
        retransmission_prob: f64,
        avg_channel_quality: f64,
        radio_utilization: f64,
        server_workload: f64,
    ) -> Self {
        let performance_score = sla.performance_score(raw_performance);
        let cost = Sla::cost_from_score(performance_score);
        Self {
            offered_requests,
            served_requests,
            avg_latency_ms,
            ul_throughput_mbps,
            dl_throughput_mbps,
            delivered_fps,
            reliability,
            retransmission_prob,
            avg_channel_quality,
            radio_utilization,
            server_workload,
            raw_performance,
            performance_score,
            cost,
            resource_usage: executed_action.resource_usage(),
        }
    }

    /// An "idle slot" KPI: no traffic arrived, nothing was served, no cost
    /// is incurred and the usage is that of the executed action.
    pub fn idle(executed_action: &Action) -> Self {
        Self {
            offered_requests: 0,
            served_requests: 0,
            avg_latency_ms: 0.0,
            ul_throughput_mbps: 0.0,
            dl_throughput_mbps: 0.0,
            delivered_fps: 0.0,
            reliability: 1.0,
            retransmission_prob: 0.0,
            avg_channel_quality: 1.0,
            radio_utilization: 0.0,
            server_workload: 0.0,
            raw_performance: 0.0,
            performance_score: 1.0,
            cost: 0.0,
            resource_usage: executed_action.resource_usage(),
        }
    }

    /// The reward of Eq. 9 (negative resource usage).
    pub fn reward(&self) -> f64 {
        -self.resource_usage
    }

    /// Fraction of offered requests that were served (1.0 when nothing was
    /// offered).
    pub fn service_ratio(&self) -> f64 {
        if self.offered_requests == 0 {
            1.0
        } else {
            self.served_requests as f64 / self.offered_requests as f64
        }
    }

    /// Average resource usage as a percentage (0–100), the unit reported in
    /// the paper's tables.
    pub fn resource_usage_percent(&self) -> f64 {
        self.resource_usage / 6.0 * 100.0
    }

    /// Sanity-checks the record (all values finite, probabilities in range).
    pub fn validate(&self) -> Result<(), String> {
        let finite = [
            self.avg_latency_ms,
            self.ul_throughput_mbps,
            self.dl_throughput_mbps,
            self.delivered_fps,
            self.reliability,
            self.retransmission_prob,
            self.avg_channel_quality,
            self.radio_utilization,
            self.server_workload,
            self.raw_performance,
            self.performance_score,
            self.cost,
            self.resource_usage,
        ];
        if finite.iter().any(|v| !v.is_finite()) {
            return Err("non-finite KPI value".to_string());
        }
        if !(0.0..=1.0).contains(&self.reliability) {
            return Err(format!("reliability {} out of [0, 1]", self.reliability));
        }
        if !(0.0..=1.0).contains(&self.retransmission_prob) {
            return Err(format!(
                "retransmission prob {} out of [0, 1]",
                self.retransmission_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.cost) {
            return Err(format!("cost {} out of [0, 1]", self.cost));
        }
        if self.served_requests > self.offered_requests {
            return Err("served more requests than were offered".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::SliceKind;

    fn sample_kpi() -> SlotKpi {
        let sla = Sla::for_kind(SliceKind::Hvs);
        let action = Action::uniform(0.3);
        SlotKpi::new(
            &sla, &action, 24.0, 100, 95, 80.0, 2.0, 12.0, 24.0, 0.999, 0.01, 0.8, 0.6, 0.4,
        )
    }

    #[test]
    fn new_derives_score_cost_and_usage() {
        let kpi = sample_kpi();
        assert!((kpi.performance_score - 0.8).abs() < 1e-12);
        assert!((kpi.cost - 0.2).abs() < 1e-12);
        assert!((kpi.resource_usage - 6.0 * 0.3).abs() < 1e-12);
        assert!((kpi.reward() + 1.8).abs() < 1e-12);
        assert!(kpi.validate().is_ok());
    }

    #[test]
    fn idle_slot_has_no_cost() {
        let kpi = SlotKpi::idle(&Action::uniform(0.1));
        assert_eq!(kpi.cost, 0.0);
        assert_eq!(kpi.offered_requests, 0);
        assert_eq!(kpi.service_ratio(), 1.0);
        assert!(kpi.validate().is_ok());
    }

    #[test]
    fn service_ratio_divides_served_by_offered() {
        let kpi = sample_kpi();
        assert!((kpi.service_ratio() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn usage_percent_is_mean_of_counted_dimensions() {
        let kpi = sample_kpi();
        assert!((kpi.resource_usage_percent() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_inconsistent_records() {
        let mut kpi = sample_kpi();
        kpi.served_requests = kpi.offered_requests + 1;
        assert!(kpi.validate().is_err());

        let mut kpi = sample_kpi();
        kpi.reliability = 1.2;
        assert!(kpi.validate().is_err());

        let mut kpi = sample_kpi();
        kpi.avg_latency_ms = f64::NAN;
        assert!(kpi.validate().is_err());
    }
}
