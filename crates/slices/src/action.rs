//! The ten-dimensional resource-orchestration action space (paper §3).
//!
//! Every dimension is a normalized share in `[0, 1]`, matching the Sigmoid
//! actor output in the paper's agent implementation. The environment (the
//! domain managers and the network simulator) interprets each share against
//! the corresponding physical capacity: e.g. `ul_bandwidth = 0.3` reserves
//! 30 % of the cell's uplink PRBs, `ul_mcs_offset = 0.6` maps to an MCS
//! offset of `round(0.6 · 10) = 6`, and `ul_scheduler` selects one of the
//! implemented MAC schedulers.
//!
//! The reward (Eq. 9) counts only the six dimensions that consume shareable
//! infrastructure resources; the MCS offsets and scheduler choices influence
//! resource usage only indirectly and are excluded, exactly as in the paper.

use serde::{Deserialize, Serialize};

/// Number of action dimensions.
pub const ACTION_DIM: usize = 10;

/// Identifies one of the ten action dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionDim {
    /// Uplink radio bandwidth share (`U_u`).
    UlBandwidth,
    /// Uplink MCS offset, normalized over `0..=10` (`U_m`).
    UlMcsOffset,
    /// Uplink scheduling algorithm selector (`U_a`).
    UlScheduler,
    /// Downlink radio bandwidth share (`U_d`).
    DlBandwidth,
    /// Downlink MCS offset, normalized over `0..=10` (`U_s`).
    DlMcsOffset,
    /// Downlink scheduling algorithm selector (`U_g`).
    DlScheduler,
    /// Transport-network bandwidth share (`U_b`).
    TnBandwidth,
    /// Reserved transport path share (`U_l`).
    TnPath,
    /// CPU share for the co-located SPGW-U and edge server (`U_c`).
    Cpu,
    /// RAM share for the co-located SPGW-U and edge server (`U_r`).
    Ram,
}

impl ActionDim {
    /// All dimensions in storage order.
    pub const ALL: [ActionDim; ACTION_DIM] = [
        ActionDim::UlBandwidth,
        ActionDim::UlMcsOffset,
        ActionDim::UlScheduler,
        ActionDim::DlBandwidth,
        ActionDim::DlMcsOffset,
        ActionDim::DlScheduler,
        ActionDim::TnBandwidth,
        ActionDim::TnPath,
        ActionDim::Cpu,
        ActionDim::Ram,
    ];

    /// The paper's symbol for this dimension (`U_u`, `U_m`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            ActionDim::UlBandwidth => "Uu",
            ActionDim::UlMcsOffset => "Um",
            ActionDim::UlScheduler => "Ua",
            ActionDim::DlBandwidth => "Ud",
            ActionDim::DlMcsOffset => "Us",
            ActionDim::DlScheduler => "Ug",
            ActionDim::TnBandwidth => "Ub",
            ActionDim::TnPath => "Ul",
            ActionDim::Cpu => "Uc",
            ActionDim::Ram => "Ur",
        }
    }

    /// Index of this dimension in the flat action vector.
    pub fn index(self) -> usize {
        ActionDim::ALL
            .iter()
            .position(|d| *d == self)
            .expect("dimension is in ALL")
    }

    /// Whether this dimension contributes to the resource-usage reward
    /// (Eq. 9). MCS offsets and scheduler selectors do not.
    pub fn counts_toward_usage(self) -> bool {
        !matches!(
            self,
            ActionDim::UlMcsOffset
                | ActionDim::UlScheduler
                | ActionDim::DlMcsOffset
                | ActionDim::DlScheduler
        )
    }

    /// The shared infrastructure resource this dimension draws from, if any.
    pub fn resource(self) -> Option<ResourceKind> {
        match self {
            ActionDim::UlBandwidth => Some(ResourceKind::UplinkRadio),
            ActionDim::DlBandwidth => Some(ResourceKind::DownlinkRadio),
            ActionDim::TnBandwidth => Some(ResourceKind::TransportBandwidth),
            ActionDim::TnPath => Some(ResourceKind::TransportPath),
            ActionDim::Cpu => Some(ResourceKind::EdgeCpu),
            ActionDim::Ram => Some(ResourceKind::EdgeRam),
            _ => None,
        }
    }
}

/// A shared, capacity-constrained infrastructure resource (Eq. 12).
///
/// Each resource lives in exactly one technical domain and is managed by the
/// corresponding domain manager; the per-slice shares of a resource must sum
/// to at most the (normalized) capacity `L_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Uplink PRBs in the RAN (managed by the RDM).
    UplinkRadio,
    /// Downlink RBGs in the RAN (managed by the RDM).
    DownlinkRadio,
    /// Transport-network bandwidth, i.e. OpenFlow meter budget (TDM).
    TransportBandwidth,
    /// Reserved transport paths (TDM).
    TransportPath,
    /// CPU of the co-located SPGW-U / edge server (CDM + EDM).
    EdgeCpu,
    /// RAM of the co-located SPGW-U / edge server (CDM + EDM).
    EdgeRam,
}

impl ResourceKind {
    /// All shared resources in a fixed order.
    pub const ALL: [ResourceKind; 6] = [
        ResourceKind::UplinkRadio,
        ResourceKind::DownlinkRadio,
        ResourceKind::TransportBandwidth,
        ResourceKind::TransportPath,
        ResourceKind::EdgeCpu,
        ResourceKind::EdgeRam,
    ];

    /// Index of this resource in [`ResourceKind::ALL`].
    pub fn index(self) -> usize {
        ResourceKind::ALL
            .iter()
            .position(|r| *r == self)
            .expect("resource is in ALL")
    }

    /// The action dimension through which a slice requests this resource.
    pub fn action_dim(self) -> ActionDim {
        match self {
            ResourceKind::UplinkRadio => ActionDim::UlBandwidth,
            ResourceKind::DownlinkRadio => ActionDim::DlBandwidth,
            ResourceKind::TransportBandwidth => ActionDim::TnBandwidth,
            ResourceKind::TransportPath => ActionDim::TnPath,
            ResourceKind::EdgeCpu => ActionDim::Cpu,
            ResourceKind::EdgeRam => ActionDim::Ram,
        }
    }

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::UplinkRadio => "ul-radio",
            ResourceKind::DownlinkRadio => "dl-radio",
            ResourceKind::TransportBandwidth => "tn-bandwidth",
            ResourceKind::TransportPath => "tn-path",
            ResourceKind::EdgeCpu => "edge-cpu",
            ResourceKind::EdgeRam => "edge-ram",
        }
    }
}

/// MAC scheduling algorithms selectable per slice and direction (§6, RDM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Round-robin: equal turns for all slice users.
    RoundRobin,
    /// Proportional fair: balances throughput and fairness using channel state.
    ProportionalFair,
    /// Max-CQI: always serves the best-channel user (maximizes cell throughput).
    MaxCqi,
}

impl SchedulerKind {
    /// Decodes the normalized scheduler selector of an action dimension.
    pub fn from_normalized(v: f64) -> Self {
        let v = v.clamp(0.0, 1.0);
        if v < 1.0 / 3.0 {
            SchedulerKind::RoundRobin
        } else if v < 2.0 / 3.0 {
            SchedulerKind::ProportionalFair
        } else {
            SchedulerKind::MaxCqi
        }
    }

    /// The canonical normalized value that decodes back to this scheduler.
    pub fn to_normalized(self) -> f64 {
        match self {
            SchedulerKind::RoundRobin => 1.0 / 6.0,
            SchedulerKind::ProportionalFair => 0.5,
            SchedulerKind::MaxCqi => 5.0 / 6.0,
        }
    }
}

/// A complete resource-orchestration action for one slice at one slot.
///
/// All fields are normalized shares in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// Uplink radio bandwidth share (`U_u`).
    pub ul_bandwidth: f64,
    /// Uplink MCS offset, normalized over `0..=10` (`U_m`).
    pub ul_mcs_offset: f64,
    /// Uplink scheduler selector (`U_a`).
    pub ul_scheduler: f64,
    /// Downlink radio bandwidth share (`U_d`).
    pub dl_bandwidth: f64,
    /// Downlink MCS offset, normalized over `0..=10` (`U_s`).
    pub dl_mcs_offset: f64,
    /// Downlink scheduler selector (`U_g`).
    pub dl_scheduler: f64,
    /// Transport bandwidth share (`U_b`).
    pub tn_bandwidth: f64,
    /// Reserved transport path share (`U_l`).
    pub tn_path: f64,
    /// CPU share for SPGW-U + edge server (`U_c`).
    pub cpu: f64,
    /// RAM share for SPGW-U + edge server (`U_r`).
    pub ram: f64,
}

impl Action {
    /// Maximum MCS offset the RDM accepts (the paper sweeps 0–10 in Fig. 6).
    pub const MAX_MCS_OFFSET: u32 = 10;

    /// An all-zero action (no resources requested).
    pub fn zeros() -> Self {
        Self::uniform(0.0)
    }

    /// An action with every dimension set to `v` (clamped to `[0, 1]`).
    pub fn uniform(v: f64) -> Self {
        let v = v.clamp(0.0, 1.0);
        Self {
            ul_bandwidth: v,
            ul_mcs_offset: v,
            ul_scheduler: v,
            dl_bandwidth: v,
            dl_mcs_offset: v,
            dl_scheduler: v,
            tn_bandwidth: v,
            tn_path: v,
            cpu: v,
            ram: v,
        }
    }

    /// Builds an action from a flat vector in [`ActionDim::ALL`] order,
    /// clamping every element to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the vector does not have [`ACTION_DIM`] elements.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(
            v.len(),
            ACTION_DIM,
            "action vector must have {ACTION_DIM} elements"
        );
        Self {
            ul_bandwidth: v[0].clamp(0.0, 1.0),
            ul_mcs_offset: v[1].clamp(0.0, 1.0),
            ul_scheduler: v[2].clamp(0.0, 1.0),
            dl_bandwidth: v[3].clamp(0.0, 1.0),
            dl_mcs_offset: v[4].clamp(0.0, 1.0),
            dl_scheduler: v[5].clamp(0.0, 1.0),
            tn_bandwidth: v[6].clamp(0.0, 1.0),
            tn_path: v[7].clamp(0.0, 1.0),
            cpu: v[8].clamp(0.0, 1.0),
            ram: v[9].clamp(0.0, 1.0),
        }
    }

    /// Flattens the action into a vector in [`ActionDim::ALL`] order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.ul_bandwidth,
            self.ul_mcs_offset,
            self.ul_scheduler,
            self.dl_bandwidth,
            self.dl_mcs_offset,
            self.dl_scheduler,
            self.tn_bandwidth,
            self.tn_path,
            self.cpu,
            self.ram,
        ]
    }

    /// Reads one dimension.
    pub fn get(&self, dim: ActionDim) -> f64 {
        match dim {
            ActionDim::UlBandwidth => self.ul_bandwidth,
            ActionDim::UlMcsOffset => self.ul_mcs_offset,
            ActionDim::UlScheduler => self.ul_scheduler,
            ActionDim::DlBandwidth => self.dl_bandwidth,
            ActionDim::DlMcsOffset => self.dl_mcs_offset,
            ActionDim::DlScheduler => self.dl_scheduler,
            ActionDim::TnBandwidth => self.tn_bandwidth,
            ActionDim::TnPath => self.tn_path,
            ActionDim::Cpu => self.cpu,
            ActionDim::Ram => self.ram,
        }
    }

    /// Writes one dimension (clamped to `[0, 1]`).
    pub fn set(&mut self, dim: ActionDim, value: f64) {
        let value = value.clamp(0.0, 1.0);
        match dim {
            ActionDim::UlBandwidth => self.ul_bandwidth = value,
            ActionDim::UlMcsOffset => self.ul_mcs_offset = value,
            ActionDim::UlScheduler => self.ul_scheduler = value,
            ActionDim::DlBandwidth => self.dl_bandwidth = value,
            ActionDim::DlMcsOffset => self.dl_mcs_offset = value,
            ActionDim::DlScheduler => self.dl_scheduler = value,
            ActionDim::TnBandwidth => self.tn_bandwidth = value,
            ActionDim::TnPath => self.tn_path = value,
            ActionDim::Cpu => self.cpu = value,
            ActionDim::Ram => self.ram = value,
        }
    }

    /// Clamps every dimension to `[0, 1]` (useful after arithmetic).
    pub fn clamped(&self) -> Self {
        Action::from_vec(&self.to_vec())
    }

    /// Total virtual resource usage, i.e. the negated reward of Eq. 9:
    /// `U_u + U_d + U_b + U_l + U_c + U_r`. The result is in `[0, 6]`.
    pub fn resource_usage(&self) -> f64 {
        self.ul_bandwidth
            + self.dl_bandwidth
            + self.tn_bandwidth
            + self.tn_path
            + self.cpu
            + self.ram
    }

    /// Average per-dimension resource usage as a percentage (0–100), the unit
    /// the paper's tables and figures report.
    pub fn resource_usage_percent(&self) -> f64 {
        self.resource_usage() / 6.0 * 100.0
    }

    /// The reward of Eq. 9 (the negative resource usage).
    pub fn reward(&self) -> f64 {
        -self.resource_usage()
    }

    /// Squared l2 distance to another action over all ten dimensions (the
    /// first term of the action-modification objective, Eq. 11/13).
    pub fn squared_distance(&self, other: &Action) -> f64 {
        self.to_vec()
            .iter()
            .zip(other.to_vec().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// The share requested from the given shared resource.
    pub fn resource_share(&self, resource: ResourceKind) -> f64 {
        self.get(resource.action_dim())
    }

    /// Decoded uplink MCS offset (0–10).
    pub fn ul_mcs_offset_steps(&self) -> u32 {
        (self.ul_mcs_offset.clamp(0.0, 1.0) * Self::MAX_MCS_OFFSET as f64).round() as u32
    }

    /// Decoded downlink MCS offset (0–10).
    pub fn dl_mcs_offset_steps(&self) -> u32 {
        (self.dl_mcs_offset.clamp(0.0, 1.0) * Self::MAX_MCS_OFFSET as f64).round() as u32
    }

    /// Decoded uplink scheduler.
    pub fn ul_scheduler_kind(&self) -> SchedulerKind {
        SchedulerKind::from_normalized(self.ul_scheduler)
    }

    /// Decoded downlink scheduler.
    pub fn dl_scheduler_kind(&self) -> SchedulerKind {
        SchedulerKind::from_normalized(self.dl_scheduler)
    }

    /// Element-wise linear interpolation `(1 - t) · self + t · other`,
    /// clamped to the action box.
    pub fn lerp(&self, other: &Action, t: f64) -> Action {
        let a = self.to_vec();
        let b = other.to_vec();
        let v: Vec<f64> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (1.0 - t) * x + t * y)
            .collect();
        Action::from_vec(&v)
    }
}

impl Default for Action {
    fn default() -> Self {
        Action::uniform(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_dim_constants_are_consistent() {
        assert_eq!(ActionDim::ALL.len(), ACTION_DIM);
        for (i, d) in ActionDim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn usage_counts_exactly_six_dimensions() {
        let counted = ActionDim::ALL
            .iter()
            .filter(|d| d.counts_toward_usage())
            .count();
        assert_eq!(counted, 6);
        // and they are exactly the dimensions mapped to shared resources
        for d in ActionDim::ALL {
            assert_eq!(d.counts_toward_usage(), d.resource().is_some());
        }
    }

    #[test]
    fn resource_kind_round_trips_through_action_dim() {
        for r in ResourceKind::ALL {
            assert_eq!(r.action_dim().resource(), Some(r));
        }
    }

    #[test]
    fn to_vec_from_vec_round_trip() {
        let a = Action {
            ul_bandwidth: 0.1,
            ul_mcs_offset: 0.2,
            ul_scheduler: 0.3,
            dl_bandwidth: 0.4,
            dl_mcs_offset: 0.5,
            dl_scheduler: 0.6,
            tn_bandwidth: 0.7,
            tn_path: 0.8,
            cpu: 0.9,
            ram: 1.0,
        };
        assert_eq!(Action::from_vec(&a.to_vec()), a);
    }

    #[test]
    fn from_vec_clamps_out_of_range_values() {
        let v = vec![-1.0, 2.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let a = Action::from_vec(&v);
        assert_eq!(a.ul_bandwidth, 0.0);
        assert_eq!(a.ul_mcs_offset, 1.0);
    }

    #[test]
    fn resource_usage_matches_eq9() {
        let mut a = Action::zeros();
        a.ul_bandwidth = 0.2;
        a.dl_bandwidth = 0.3;
        a.tn_bandwidth = 0.1;
        a.tn_path = 0.1;
        a.cpu = 0.2;
        a.ram = 0.1;
        // MCS offsets / schedulers must not change usage
        a.ul_mcs_offset = 0.9;
        a.dl_scheduler = 0.9;
        assert!((a.resource_usage() - 1.0).abs() < 1e-12);
        assert!((a.reward() + 1.0).abs() < 1e-12);
        assert!((a.resource_usage_percent() - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn get_and_set_address_the_right_dimension() {
        let mut a = Action::zeros();
        a.set(ActionDim::Cpu, 0.7);
        assert_eq!(a.cpu, 0.7);
        assert_eq!(a.get(ActionDim::Cpu), 0.7);
        a.set(ActionDim::UlMcsOffset, 5.0); // clamped
        assert_eq!(a.ul_mcs_offset, 1.0);
    }

    #[test]
    fn mcs_offset_decoding() {
        let mut a = Action::zeros();
        a.ul_mcs_offset = 0.6;
        a.dl_mcs_offset = 0.04;
        assert_eq!(a.ul_mcs_offset_steps(), 6);
        assert_eq!(a.dl_mcs_offset_steps(), 0);
    }

    #[test]
    fn scheduler_decoding_covers_all_kinds() {
        assert_eq!(
            SchedulerKind::from_normalized(0.1),
            SchedulerKind::RoundRobin
        );
        assert_eq!(
            SchedulerKind::from_normalized(0.5),
            SchedulerKind::ProportionalFair
        );
        assert_eq!(SchedulerKind::from_normalized(0.9), SchedulerKind::MaxCqi);
        for k in [
            SchedulerKind::RoundRobin,
            SchedulerKind::ProportionalFair,
            SchedulerKind::MaxCqi,
        ] {
            assert_eq!(SchedulerKind::from_normalized(k.to_normalized()), k);
        }
    }

    #[test]
    fn squared_distance_is_zero_to_self_and_symmetric() {
        let a = Action::uniform(0.3);
        let b = Action::uniform(0.6);
        assert_eq!(a.squared_distance(&a), 0.0);
        assert!((a.squared_distance(&b) - b.squared_distance(&a)).abs() < 1e-12);
        assert!((a.squared_distance(&b) - 10.0 * 0.09).abs() < 1e-9);
    }

    #[test]
    fn lerp_interpolates_between_endpoints() {
        let a = Action::uniform(0.0);
        let b = Action::uniform(1.0);
        let mid = a.lerp(&b, 0.25);
        assert!((mid.cpu - 0.25).abs() < 1e-12);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    #[should_panic(expected = "action vector must have")]
    fn from_vec_rejects_wrong_length() {
        let _ = Action::from_vec(&[0.0; 5]);
    }
}
