//! The three slice types evaluated in the paper (§7.1).

use serde::{DeError, Deserialize, Serialize, Value};

/// The application class hosted by a slice.
///
/// The paper evaluates three slices, each hosting one mobile application with
/// a distinct dominant resource demand and performance metric:
///
/// * **MAR** — mobile augmented reality: 540p frames are uploaded to an edge
///   server for feature extraction and matching; delay-sensitive (500 ms
///   average round-trip latency).
/// * **HVS** — HD video streaming: a server streams 1080p video downlink;
///   bandwidth-hungry (30 FPS average).
/// * **RDC** — reliable distant control: IoT devices exchange 1-kbit control
///   messages; reliability-sensitive (99.999 % radio delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SliceKind {
    /// Mobile augmented reality (delay-sensitive).
    Mar,
    /// HD video streaming (bandwidth-hungry).
    Hvs,
    /// Reliable distant control (reliability-sensitive).
    Rdc,
}

impl SliceKind {
    /// All slice kinds in the order the paper lists them.
    pub const ALL: [SliceKind; 3] = [SliceKind::Mar, SliceKind::Hvs, SliceKind::Rdc];

    /// Short human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SliceKind::Mar => "MAR",
            SliceKind::Hvs => "HVS",
            SliceKind::Rdc => "RDC",
        }
    }

    /// The unit of the slice's raw performance metric.
    pub fn performance_unit(self) -> &'static str {
        match self {
            SliceKind::Mar => "ms (round-trip latency)",
            SliceKind::Hvs => "FPS",
            SliceKind::Rdc => "delivery reliability",
        }
    }

    /// Peak traffic rate used by the paper's testbed, in users per second
    /// (5 for MAR, 2 for HVS, 100 for RDC; §7.1).
    pub fn default_peak_users_per_second(self) -> f64 {
        match self {
            SliceKind::Mar => 5.0,
            SliceKind::Hvs => 2.0,
            SliceKind::Rdc => 100.0,
        }
    }

    /// Whether a *larger* raw performance value is better (true for FPS and
    /// reliability, false for latency).
    pub fn higher_is_better(self) -> bool {
        !matches!(self, SliceKind::Mar)
    }

    /// Lowercase name used in scenario files and CLI arguments.
    pub fn lowercase_name(self) -> &'static str {
        match self {
            SliceKind::Mar => "mar",
            SliceKind::Hvs => "hvs",
            SliceKind::Rdc => "rdc",
        }
    }
}

impl std::fmt::Display for SliceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SliceKind {
    type Err = String;

    /// Parses a slice kind case-insensitively (`mar`, `MAR`, `Mar`, ...), so
    /// scenario JSON files and CLI arguments can name slice kinds in whatever
    /// case reads best.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mar" => Ok(SliceKind::Mar),
            "hvs" => Ok(SliceKind::Hvs),
            "rdc" => Ok(SliceKind::Rdc),
            other => Err(format!(
                "unknown slice kind `{other}` (expected one of: mar, hvs, rdc)"
            )),
        }
    }
}

// Serialized as the lowercase alias (`"mar"`), accepted back in any case —
// hand-written instead of derived so that scenario files stay readable and
// historical `"Mar"`-style payloads still parse.
impl Serialize for SliceKind {
    fn serialize_value(&self) -> Value {
        Value::Str(self.lowercase_name().to_string())
    }
}

impl Deserialize for SliceKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::msg("expected a string for SliceKind"))?;
        s.parse().map_err(DeError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_kind_once() {
        assert_eq!(SliceKind::ALL.len(), 3);
        assert!(SliceKind::ALL.contains(&SliceKind::Mar));
        assert!(SliceKind::ALL.contains(&SliceKind::Hvs));
        assert!(SliceKind::ALL.contains(&SliceKind::Rdc));
    }

    #[test]
    fn names_are_the_paper_abbreviations() {
        assert_eq!(SliceKind::Mar.name(), "MAR");
        assert_eq!(SliceKind::Hvs.name(), "HVS");
        assert_eq!(SliceKind::Rdc.name(), "RDC");
        assert_eq!(format!("{}", SliceKind::Mar), "MAR");
    }

    #[test]
    fn peak_rates_match_the_paper() {
        assert_eq!(SliceKind::Mar.default_peak_users_per_second(), 5.0);
        assert_eq!(SliceKind::Hvs.default_peak_users_per_second(), 2.0);
        assert_eq!(SliceKind::Rdc.default_peak_users_per_second(), 100.0);
    }

    #[test]
    fn only_latency_is_lower_is_better() {
        assert!(!SliceKind::Mar.higher_is_better());
        assert!(SliceKind::Hvs.higher_is_better());
        assert!(SliceKind::Rdc.higher_is_better());
    }

    #[test]
    fn from_str_round_trips_display_and_lowercase_names() {
        for kind in SliceKind::ALL {
            assert_eq!(kind.name().parse::<SliceKind>().unwrap(), kind);
            assert_eq!(kind.lowercase_name().parse::<SliceKind>().unwrap(), kind);
            assert_eq!(kind.to_string().parse::<SliceKind>().unwrap(), kind);
        }
        assert_eq!("Mar".parse::<SliceKind>().unwrap(), SliceKind::Mar);
        assert!("edge".parse::<SliceKind>().is_err());
    }

    #[test]
    fn serde_uses_the_lowercase_alias_and_accepts_any_case() {
        for kind in SliceKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.lowercase_name()));
            let back: SliceKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        // Historical payloads used the variant name verbatim.
        let legacy: SliceKind = serde_json::from_str("\"Mar\"").unwrap();
        assert_eq!(legacy, SliceKind::Mar);
        assert!(serde_json::from_str::<SliceKind>("\"urllc\"").is_err());
    }
}
