//! The three slice types evaluated in the paper (§7.1).

use serde::{Deserialize, Serialize};

/// The application class hosted by a slice.
///
/// The paper evaluates three slices, each hosting one mobile application with
/// a distinct dominant resource demand and performance metric:
///
/// * **MAR** — mobile augmented reality: 540p frames are uploaded to an edge
///   server for feature extraction and matching; delay-sensitive (500 ms
///   average round-trip latency).
/// * **HVS** — HD video streaming: a server streams 1080p video downlink;
///   bandwidth-hungry (30 FPS average).
/// * **RDC** — reliable distant control: IoT devices exchange 1-kbit control
///   messages; reliability-sensitive (99.999 % radio delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliceKind {
    /// Mobile augmented reality (delay-sensitive).
    Mar,
    /// HD video streaming (bandwidth-hungry).
    Hvs,
    /// Reliable distant control (reliability-sensitive).
    Rdc,
}

impl SliceKind {
    /// All slice kinds in the order the paper lists them.
    pub const ALL: [SliceKind; 3] = [SliceKind::Mar, SliceKind::Hvs, SliceKind::Rdc];

    /// Short human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SliceKind::Mar => "MAR",
            SliceKind::Hvs => "HVS",
            SliceKind::Rdc => "RDC",
        }
    }

    /// The unit of the slice's raw performance metric.
    pub fn performance_unit(self) -> &'static str {
        match self {
            SliceKind::Mar => "ms (round-trip latency)",
            SliceKind::Hvs => "FPS",
            SliceKind::Rdc => "delivery reliability",
        }
    }

    /// Peak traffic rate used by the paper's testbed, in users per second
    /// (5 for MAR, 2 for HVS, 100 for RDC; §7.1).
    pub fn default_peak_users_per_second(self) -> f64 {
        match self {
            SliceKind::Mar => 5.0,
            SliceKind::Hvs => 2.0,
            SliceKind::Rdc => 100.0,
        }
    }

    /// Whether a *larger* raw performance value is better (true for FPS and
    /// reliability, false for latency).
    pub fn higher_is_better(self) -> bool {
        !matches!(self, SliceKind::Mar)
    }
}

impl std::fmt::Display for SliceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_kind_once() {
        assert_eq!(SliceKind::ALL.len(), 3);
        assert!(SliceKind::ALL.contains(&SliceKind::Mar));
        assert!(SliceKind::ALL.contains(&SliceKind::Hvs));
        assert!(SliceKind::ALL.contains(&SliceKind::Rdc));
    }

    #[test]
    fn names_are_the_paper_abbreviations() {
        assert_eq!(SliceKind::Mar.name(), "MAR");
        assert_eq!(SliceKind::Hvs.name(), "HVS");
        assert_eq!(SliceKind::Rdc.name(), "RDC");
        assert_eq!(format!("{}", SliceKind::Mar), "MAR");
    }

    #[test]
    fn peak_rates_match_the_paper() {
        assert_eq!(SliceKind::Mar.default_peak_users_per_second(), 5.0);
        assert_eq!(SliceKind::Hvs.default_peak_users_per_second(), 2.0);
        assert_eq!(SliceKind::Rdc.default_peak_users_per_second(), 100.0);
    }

    #[test]
    fn only_latency_is_lower_is_better() {
        assert!(!SliceKind::Mar.higher_is_better());
        assert!(SliceKind::Hvs.higher_is_better());
        assert!(SliceKind::Rdc.higher_is_better());
    }
}
