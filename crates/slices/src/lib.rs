//! # onslicing-slices
//!
//! Slice definitions for the OnSlicing reproduction: the three paper slices
//! (mobile AR, HD video streaming, reliable distant control), their service
//! level agreements, the ten-dimensional resource-orchestration action space,
//! the cost function of Eq. 10, per-slot KPIs and the DRL observation vector.
//!
//! This crate is the shared vocabulary of the workspace: the network
//! simulator consumes [`Action`]s and produces [`SlotKpi`]s, the domain
//! managers reason about [`ResourceKind`]s, and the agents observe
//! [`SliceState`]s.
//!
//! ```
//! use onslicing_slices::{Action, SliceKind, Sla};
//!
//! let sla = Sla::for_kind(SliceKind::Hvs);
//! // A video-streaming slot that delivered 20 of the required 30 FPS has the
//! // cost the paper uses as its running example (≈ 0.33).
//! let cost = sla.cost_from_performance(20.0);
//! assert!((cost - 1.0 / 3.0).abs() < 1e-9);
//!
//! let action = Action::uniform(0.25);
//! assert!((action.resource_usage() - 1.5).abs() < 1e-12); // 6 counted dims × 0.25
//! ```

pub mod action;
pub mod kind;
pub mod kpi;
pub mod sla;
pub mod state;

pub use action::{Action, ActionDim, ResourceKind, SchedulerKind, ACTION_DIM};
pub use kind::SliceKind;
pub use kpi::SlotKpi;
pub use sla::Sla;
pub use state::{SliceState, STATE_DIM};
