//! Service level agreements and the cost function of Eq. 10.
//!
//! A slice's SLA names its raw performance requirement (`P` in the paper) and
//! the statistical threshold `C_max` on the time-averaged cost (Eq. 2). The
//! per-slot cost is
//!
//! ```text
//! c(s_t, a_t) = 1 − clip(p_t / P, 0, 1)                 (Eq. 10)
//! ```
//!
//! where `p_t` is the slot's achieved performance *expressed so that larger
//! is better*. For the latency-sensitive MAR slice the achieved performance
//! is therefore `target_latency / achieved_latency`, and for the
//! reliability-sensitive RDC slice it is the ratio of achieved to required
//! "nines" (`ln(1 − r)` ratios), which keeps the score smooth even though the
//! raw reliabilities are all close to 1.

use serde::{Deserialize, Serialize};

use crate::kind::SliceKind;

/// The service level agreement of one slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    /// Which application class this SLA belongs to.
    pub kind: SliceKind,
    /// The raw performance requirement `P`: 500 (ms) for MAR, 30 (FPS) for
    /// HVS, 0.99999 (reliability) for RDC.
    pub performance_target: f64,
    /// The SLA threshold `C_max` on the episode-averaged cost (the paper
    /// uses 5 %, i.e. a 95 % probability of SLA satisfaction).
    pub cost_threshold: f64,
}

impl Sla {
    /// The paper's default SLA threshold `C_max = 5 %`.
    pub const DEFAULT_COST_THRESHOLD: f64 = 0.05;

    /// The paper's SLA for the given slice kind (§7.1).
    pub fn for_kind(kind: SliceKind) -> Self {
        let performance_target = match kind {
            SliceKind::Mar => 500.0,   // ms round-trip latency
            SliceKind::Hvs => 30.0,    // FPS
            SliceKind::Rdc => 0.99999, // radio delivery reliability
        };
        Self {
            kind,
            performance_target,
            cost_threshold: Self::DEFAULT_COST_THRESHOLD,
        }
    }

    /// Returns a copy with a different cost threshold (used for the
    /// conservativeness sweeps discussed in §9).
    pub fn with_cost_threshold(mut self, cost_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cost_threshold),
            "cost threshold must be in [0, 1]"
        );
        self.cost_threshold = cost_threshold;
        self
    }

    /// Normalized performance score `p_t / P` (larger is better, ≥ 0, may
    /// exceed 1 when the slice over-performs).
    ///
    /// `raw_performance` is in the slice's natural unit: milliseconds of
    /// round-trip latency for MAR, delivered FPS for HVS, delivery
    /// reliability in `[0, 1)` for RDC.
    pub fn performance_score(&self, raw_performance: f64) -> f64 {
        match self.kind {
            SliceKind::Mar => {
                // Lower latency is better; meeting the target exactly scores 1.
                if raw_performance <= 0.0 {
                    // Zero/negative latency means "nothing was served";
                    // treat it as a total miss rather than infinite goodness.
                    0.0
                } else {
                    self.performance_target / raw_performance
                }
            }
            SliceKind::Hvs => (raw_performance / self.performance_target).max(0.0),
            SliceKind::Rdc => {
                // Compare "nines": ln(1 - achieved) / ln(1 - target).
                let achieved = raw_performance.clamp(0.0, 1.0 - 1e-12);
                let target = self.performance_target.clamp(0.0, 1.0 - 1e-12);
                let achieved_nines = -(1.0 - achieved).ln();
                let target_nines = -(1.0 - target).ln();
                (achieved_nines / target_nines).max(0.0)
            }
        }
    }

    /// Per-slot cost (Eq. 10) from a raw performance value.
    pub fn cost_from_performance(&self, raw_performance: f64) -> f64 {
        Self::cost_from_score(self.performance_score(raw_performance))
    }

    /// Per-slot cost (Eq. 10) from an already-normalized performance score.
    pub fn cost_from_score(score: f64) -> f64 {
        1.0 - score.clamp(0.0, 1.0)
    }

    /// Whether an episode with the given average cost violates this SLA
    /// (the paper's violation metric: average cost exceeding `C_max`).
    pub fn violates(&self, average_cost: f64) -> bool {
        average_cost > self.cost_threshold + 1e-12
    }

    /// The episode cost budget `T · C_max` used by the proactive baseline
    /// switching rule (Eq. 8).
    pub fn episode_cost_budget(&self, horizon: usize) -> f64 {
        horizon as f64 * self.cost_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_targets_match_the_paper() {
        assert_eq!(Sla::for_kind(SliceKind::Mar).performance_target, 500.0);
        assert_eq!(Sla::for_kind(SliceKind::Hvs).performance_target, 30.0);
        assert_eq!(Sla::for_kind(SliceKind::Rdc).performance_target, 0.99999);
        for k in SliceKind::ALL {
            assert_eq!(Sla::for_kind(k).cost_threshold, 0.05);
        }
    }

    #[test]
    fn hvs_cost_matches_the_papers_running_example() {
        // "a video streaming slice needs an FPS P = 30, then a cost 0.33 can
        // be observed if p_t = 20" (§3).
        let sla = Sla::for_kind(SliceKind::Hvs);
        assert!((sla.cost_from_performance(20.0) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(sla.cost_from_performance(30.0), 0.0);
        assert_eq!(sla.cost_from_performance(45.0), 0.0); // over-performance is not rewarded
        assert_eq!(sla.cost_from_performance(0.0), 1.0);
    }

    #[test]
    fn mar_cost_decreases_with_latency() {
        let sla = Sla::for_kind(SliceKind::Mar);
        assert_eq!(sla.cost_from_performance(400.0), 0.0); // better than target
        assert_eq!(sla.cost_from_performance(500.0), 0.0); // exactly the target
        let at_1000 = sla.cost_from_performance(1000.0);
        assert!((at_1000 - 0.5).abs() < 1e-9);
        let at_2000 = sla.cost_from_performance(2000.0);
        assert!(at_2000 > at_1000);
        assert_eq!(sla.cost_from_performance(0.0), 1.0); // nothing served
    }

    #[test]
    fn rdc_cost_uses_nines_ratio() {
        let sla = Sla::for_kind(SliceKind::Rdc);
        // Meeting or exceeding the target is free.
        assert_eq!(sla.cost_from_performance(0.99999), 0.0);
        assert_eq!(sla.cost_from_performance(0.9999999), 0.0);
        // 3 nines out of the required 5 costs ~2/5.
        let c = sla.cost_from_performance(0.999);
        assert!((c - 0.4).abs() < 0.02, "cost {c} should be near 0.4");
        // Total loss costs 1.
        assert!((sla.cost_from_performance(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_is_always_within_unit_interval() {
        for k in SliceKind::ALL {
            let sla = Sla::for_kind(k);
            for &p in &[0.0, 0.001, 0.5, 1.0, 10.0, 100.0, 1000.0, 1e6] {
                let c = sla.cost_from_performance(p);
                assert!(
                    (0.0..=1.0).contains(&c),
                    "{k}: cost {c} out of range for p={p}"
                );
            }
        }
    }

    #[test]
    fn violation_uses_the_threshold() {
        let sla = Sla::for_kind(SliceKind::Mar);
        assert!(!sla.violates(0.0));
        assert!(!sla.violates(0.05));
        assert!(sla.violates(0.051));
    }

    #[test]
    fn episode_budget_is_horizon_times_threshold() {
        let sla = Sla::for_kind(SliceKind::Hvs);
        assert!((sla.episode_cost_budget(96) - 4.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cost threshold must be in [0, 1]")]
    fn invalid_threshold_is_rejected() {
        let _ = Sla::for_kind(SliceKind::Mar).with_cost_threshold(1.5);
    }
}
