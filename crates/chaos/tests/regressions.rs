//! Minimized counterexamples promoted from chaos-fuzz runs.
//!
//! Each JSON file under `regressions/` is a shrunk [`ChaosCase`] that used to
//! violate a fleet invariant before its fix landed. The cases run through the
//! full harness ([`check_case_with_scratch`]), so a reintroduced bug fails the
//! exact invariant that originally caught it.

use onslicing_chaos::{check_case_with_scratch, ChaosCase};

fn run_regression(json: &str) {
    let case = ChaosCase::from_json(json).expect("regression case parses and validates");
    if let Err(violation) = check_case_with_scratch(&case) {
        panic!(
            "regression `{}` violated an invariant again: {violation}",
            case.scenario.name
        );
    }
}

/// A cell event may reference a slice id that only a fleet-routed admission
/// assigns. `ElasticFleet::new` used to construct cell engines with zero
/// admission slack, rejecting at startup a fleet scenario that
/// `FleetScenario::validate` had accepted.
#[test]
fn cell_event_may_reference_fleet_admitted_slice_id() {
    run_regression(include_str!("../regressions/fleet_admitted_id_ref.json"));
}

/// A fleet that has reached its scenario end must deny live admissions: the
/// granted slice would never execute a slot, and its zero-length episode would
/// pollute final aggregation. `ElasticFleet::admit` used to grant anyway.
#[test]
fn completed_fleet_denies_live_admissions() {
    run_regression(include_str!("../regressions/admit_after_scenario_end.json"));
}

/// With the balancer disabled, slot 0 and the scenario end are the only sync
/// points — and the end pseudo-sync does no fleet work. The construction-time
/// sync cursor used to treat the slot-0 point as already processed, so a
/// fleet admission scripted at slot 0 was never adjudicated at all.
#[test]
fn slot0_fleet_admission_is_adjudicated() {
    run_regression(include_str!("../regressions/slot0_admission_dropped.json"));
}

/// A fleet admission scripted at slot 0 creates sync point 0, and 0 is a
/// multiple of every cadence — the balancer used to run an unscheduled round
/// there and, with a zero load gap, migrate a slice before any slot executed.
#[test]
fn slot0_fleet_admission_triggers_no_balancer_round() {
    run_regression(include_str!(
        "../regressions/slot0_admission_balancer_round.json"
    ));
}
