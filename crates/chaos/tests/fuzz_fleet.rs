//! The bounded-budget fuzz suite CI runs: every generated case must
//! survive the full invariant battery. `PROPTEST_CASES` bounds the budget
//! (CI pins it), `PROPTEST_SEED` perturbs the deterministic name-derived
//! generator seed to explore fresh input regions.

use onslicing_chaos::{bounded_cases, chaos_case, check_case_with_scratch, shrink_case, ChaosCase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(bounded_cases(10))]

    #[test]
    fn generated_fleet_cases_uphold_every_invariant(case in chaos_case()) {
        if let Err(violation) = check_case_with_scratch(&case) {
            let minimized = shrink_case(&case, &|c| check_case_with_scratch(c).is_err());
            panic!(
                "fleet invariant violated: {violation}\n\n\
                 minimized counterexample (commit under crates/chaos/regressions/):\n{}",
                minimized.to_json()
            );
        }
    }
}

proptest! {
    // Generator-only properties are cheap; give them the full default
    // budget (still `PROPTEST_CASES`-overridable).

    #[test]
    fn generated_cases_validate_and_round_trip(case in chaos_case()) {
        prop_assert!(case.validate().is_ok(), "generator produced an invalid case");
        let back = ChaosCase::from_json(&case.to_json()).expect("case JSON parses back");
        prop_assert_eq!(back, case);
    }
}
