//! Generation of random-but-valid fleet chaos cases.
//!
//! A [`ChaosCase`] bundles everything one adversarial trial needs: a
//! [`FleetScenario`] (admissions, teardowns, traffic shifts and bursts,
//! capacity faults, SLA renegotiations, cell-targeted events and
//! fleet-routed admissions), the fleet tuning knobs, and a [`DrivePlan`]
//! describing how the stepwise run slices the scenario into windows, where
//! it checkpoints/kills/resumes the fleet, and whether the admission-law
//! probe runs at window boundaries.
//!
//! Cases are **valid by construction**: raw slice ids, cell targets and
//! slots are drawn unconstrained and then folded into each cell's
//! assignable-id bound, the cell count and the slot range, and duplicate
//! same-slot teardowns are dropped — so every generated case passes
//! [`FleetScenario::validate`]. Numeric knobs are drawn from small discrete
//! sets, keeping committed counterexample JSON short and round-trip exact.

use proptest::prelude::*;

use onslicing_domains::DomainKind;
use onslicing_fleet::{
    balance_policy_names, BalancePolicyName, BalancerConfig, ElasticFleetConfig,
};
use onslicing_scenario::{
    admission_policy_names, AdmissionPolicyName, FleetEvent, FleetScenario, Scenario,
    ScenarioEvent, SliceSpec, TimedFleetEvent,
};
use onslicing_slices::SliceKind;
use onslicing_traffic::DiurnalTraceConfig;
use serde::{Deserialize, Serialize};

/// One window of the stepwise drive plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowOp {
    /// Slots to advance in this window (clamped at the scenario end).
    pub advance: usize,
    /// Whether to checkpoint to disk, drop the in-memory fleet and resume
    /// from the file at the end of this window (the chaos kill).
    pub checkpoint: bool,
}

/// How the stepwise run drives the fleet (pure data, so a replayed case is
/// deterministic without any harness-side RNG).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrivePlan {
    /// Window sequence; after the last window the fleet runs to the end.
    pub windows: Vec<WindowOp>,
    /// Whether the reservation-aware admission-law probe runs at every
    /// window boundary (on a throwaway restored copy of the fleet).
    pub probe_admissions: bool,
}

/// One complete adversarial trial: scenario, fleet tuning, drive plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCase {
    /// The generated fleet scenario (valid by construction).
    pub scenario: FleetScenario,
    /// Cell count the fleet runs at (= `scenario.min_cells`).
    pub cells: usize,
    /// Fleet master seed.
    pub seed: u64,
    /// Admission controller estimated per-slice share.
    pub estimated_share: f64,
    /// Registered admission policy the cells run (typo-proof: the name is
    /// re-interned through the registry on deserialization).
    pub admission_policy: AdmissionPolicyName,
    /// Admission controller headroom fraction.
    pub headroom: f64,
    /// Offline pretraining episodes per admitted slice.
    pub pretrain_episodes: usize,
    /// Whether the fleet balancer is on.
    pub balancer_enabled: bool,
    /// Registered balance policy the balancer plans with.
    pub balance_policy: BalancePolicyName,
    /// Balancer cadence in slots.
    pub balancer_cadence: usize,
    /// Balancer minimum load gap before it migrates.
    pub min_load_gap: f64,
    /// How the stepwise/chaos run drives the fleet.
    pub plan: DrivePlan,
}

impl ChaosCase {
    /// The elastic fleet configuration this case runs under.
    pub fn fleet_config(&self) -> ElasticFleetConfig {
        let mut config = ElasticFleetConfig::new(self.cells).with_seed(self.seed);
        config.base.pretrain_episodes = self.pretrain_episodes;
        config.base.admission.estimated_share = self.estimated_share;
        config.base.admission.headroom = self.headroom;
        config.base.admission.policy = self.admission_policy;
        config.balancer = BalancerConfig {
            enabled: self.balancer_enabled,
            policy: self.balance_policy,
            cadence_slots: self.balancer_cadence,
            min_load_gap: self.min_load_gap,
            ..BalancerConfig::default()
        };
        config
    }

    /// Validates the whole case: scenario, tuning, plan.
    pub fn validate(&self) -> Result<(), String> {
        self.scenario.validate()?;
        if self.cells < self.scenario.min_cells {
            return Err(format!(
                "case runs {} cells but the scenario needs at least {}",
                self.cells, self.scenario.min_cells
            ));
        }
        self.fleet_config().base.admission.validate()?;
        self.fleet_config().balancer.validate()?;
        for (i, w) in self.plan.windows.iter().enumerate() {
            if w.advance == 0 {
                return Err(format!("plan window {i} advances zero slots"));
            }
        }
        Ok(())
    }

    /// Serializes the case to pretty JSON (the format committed regression
    /// counterexamples are stored in).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("chaos case serialization cannot fail")
    }

    /// Parses and validates a case from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let case: ChaosCase = serde_json::from_str(text).map_err(|e| e.to_string())?;
        case.validate()?;
        Ok(case)
    }
}

fn slice_spec() -> impl Strategy<Value = SliceSpec> {
    (
        prop::sample::select(vec![SliceKind::Mar, SliceKind::Hvs, SliceKind::Rdc]),
        prop::sample::select(vec![None, Some(2.0), Some(8.0)]),
        prop::sample::select(vec![None, Some(0.05), Some(0.5)]),
    )
        .prop_map(|(kind, peak_rate, cost_threshold)| SliceSpec {
            kind,
            peak_rate,
            cost_threshold,
        })
}

/// A scenario event with *raw* (unbounded) slice references; `fix_events`
/// folds them into the per-cell assignable-id bound.
fn raw_scenario_event() -> impl Strategy<Value = ScenarioEvent> {
    prop_oneof![
        slice_spec().prop_map(|slice| ScenarioEvent::AdmitSlice { slice }),
        (0u32..64).prop_map(|slice| ScenarioEvent::TeardownSlice { slice }),
        ((0u32..64), prop::sample::select(vec![0.25, 0.5, 2.0, 4.0]))
            .prop_map(|(slice, scale)| ScenarioEvent::SetTrafficScale { slice, scale }),
        (
            (0u32..64),
            prop::sample::select(vec![1.5, 3.0]),
            (1usize..=6)
        )
            .prop_map(
                |(slice, scale, duration_slots)| ScenarioEvent::TrafficBurst {
                    slice,
                    scale,
                    duration_slots,
                }
            ),
        (
            prop::sample::select(DomainKind::ALL.to_vec()),
            prop::sample::select(vec![0.25, 0.5, 0.9]),
            (1usize..=6),
        )
            .prop_map(|(domain, capacity_scale, duration_slots)| {
                ScenarioEvent::DomainFault {
                    domain,
                    capacity_scale,
                    duration_slots,
                }
            }),
        ((0u32..64), prop::sample::select(vec![0.02, 0.1, 0.6])).prop_map(
            |(slice, cost_threshold)| ScenarioEvent::RenegotiateSla {
                slice,
                cost_threshold,
            }
        ),
        ((0u32..64), prop::sample::select(vec![1.0, 4.0, 40.0])).prop_map(|(slice, peak)| {
            ScenarioEvent::SetTraceProfile {
                slice,
                profile: DiurnalTraceConfig::hvs_default().with_peak_rate(peak),
            }
        }),
    ]
}

fn raw_fleet_event() -> impl Strategy<Value = TimedFleetEvent> {
    (
        (0usize..64),
        prop_oneof![
            ((0u32..8), raw_scenario_event())
                .prop_map(|(cell, event)| FleetEvent::CellEvent { cell, event }),
            slice_spec().prop_map(|slice| FleetEvent::FleetAdmit { slice }),
        ],
    )
        .prop_map(|(at_slot, event)| TimedFleetEvent { at_slot, event })
}

/// Folds raw slots, cell targets and slice references into the valid
/// domain, and drops duplicate same-cell same-slot teardowns — exactly the
/// holes [`FleetScenario::validate`] rejects.
fn fix_events(
    cells: usize,
    total_slots: usize,
    initial_slices: usize,
    events: Vec<TimedFleetEvent>,
) -> Vec<TimedFleetEvent> {
    let fleet_admits = events
        .iter()
        .filter(|t| matches!(t.event, FleetEvent::FleetAdmit { .. }))
        .count();
    let mut admits_per_cell = vec![0usize; cells];
    for t in &events {
        if let FleetEvent::CellEvent { cell, event } = &t.event {
            if matches!(event, ScenarioEvent::AdmitSlice { .. }) {
                admits_per_cell[*cell as usize % cells] += 1;
            }
        }
    }
    let mut seen_teardowns: Vec<(u32, usize, u32)> = Vec::new();
    let mut out = Vec::with_capacity(events.len());
    for mut t in events {
        t.at_slot %= total_slots;
        if let FleetEvent::CellEvent { cell, event } = &mut t.event {
            *cell %= cells as u32;
            // Each cell's materialized scenario can assign its initial ids,
            // its own scripted admissions' ids, and (worst case) every
            // fleet-routed admission's id.
            let bound = (initial_slices + admits_per_cell[*cell as usize] + fleet_admits) as u32;
            match event {
                ScenarioEvent::TeardownSlice { slice }
                | ScenarioEvent::SetTrafficScale { slice, .. }
                | ScenarioEvent::SetTraceProfile { slice, .. }
                | ScenarioEvent::TrafficBurst { slice, .. }
                | ScenarioEvent::RenegotiateSla { slice, .. } => *slice %= bound,
                ScenarioEvent::AdmitSlice { .. } | ScenarioEvent::DomainFault { .. } => {}
            }
            if let ScenarioEvent::TeardownSlice { slice } = event {
                let key = (*cell, t.at_slot, *slice);
                if seen_teardowns.contains(&key) {
                    continue;
                }
                seen_teardowns.push(key);
            }
        }
        out.push(t);
    }
    out
}

/// The full chaos-case strategy: bounded sizes (1–3 cells, 1–3 initial
/// slices, ≤ 24 slots, ≤ 6 fleet events) keep a single trial affordable in
/// debug CI while still covering every event kind and fleet seam.
pub fn chaos_case() -> impl Strategy<Value = ChaosCase> {
    let sizes = (
        (1usize..=3),
        (1usize..=3),
        prop::sample::select(vec![4usize, 6, 8]),
        prop::sample::select(vec![8usize, 12, 16, 24]),
        prop::sample::select(vec![1.0, 1.5, 2.0]),
    );
    sizes.prop_flat_map(|(cells, n_init, horizon, total_slots, capacity)| {
        let knobs = (
            (0u64..=0xffff),
            prop::sample::select(vec![0.1, 0.15, 0.25, 0.4]),
            prop::sample::select(vec![0.0, 0.1, 0.25]),
            (0usize..=1),
            prop::bool::ANY,
            prop::sample::select(vec![4usize, 6, 12]),
            prop::sample::select(vec![0.0, 0.25, 1.0]),
            // Every registered policy pair is fair game: a case must hold
            // the whole invariant battery whichever policies it drew.
            prop::sample::select(admission_policy_names()),
            prop::sample::select(balance_policy_names()),
        );
        (
            prop::collection::vec(slice_spec(), n_init),
            prop::collection::vec(raw_fleet_event(), 0..7),
            knobs,
            drive_plan(),
        )
            .prop_map(
                move |(
                    initial,
                    events,
                    (
                        seed,
                        estimated_share,
                        headroom,
                        pretrain_episodes,
                        balancer_enabled,
                        balancer_cadence,
                        min_load_gap,
                        admission_policy,
                        balance_policy,
                    ),
                    plan,
                )| {
                    let mut base = Scenario::new("chaos-fuzz", horizon, total_slots)
                        .with_capacity(capacity)
                        .describe("generated by crates/chaos");
                    for spec in initial {
                        base = base.slice(spec);
                    }
                    let mut scenario = FleetScenario::new(base, cells);
                    scenario.events = fix_events(cells, total_slots, n_init, events);
                    ChaosCase {
                        scenario,
                        cells,
                        seed,
                        estimated_share,
                        admission_policy: AdmissionPolicyName::parse(admission_policy)
                            .expect("registry names parse"),
                        headroom,
                        pretrain_episodes,
                        balancer_enabled,
                        balance_policy: BalancePolicyName::parse(balance_policy)
                            .expect("registry names parse"),
                        balancer_cadence,
                        min_load_gap,
                        plan,
                    }
                },
            )
    })
}

fn drive_plan() -> impl Strategy<Value = DrivePlan> {
    (
        prop::collection::vec(
            ((1usize..=9), prop::bool::ANY).prop_map(|(advance, checkpoint)| WindowOp {
                advance,
                checkpoint,
            }),
            0..5,
        ),
        prop::bool::ANY,
    )
        .prop_map(|(windows, probe_admissions)| DrivePlan {
            windows,
            probe_admissions,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{generate_case, test_rng};

    #[test]
    fn generated_cases_always_pass_fleet_validation() {
        let strategy = chaos_case();
        let mut rng = test_rng("chaos::gen::validity");
        for i in 0..200 {
            let case = generate_case(&strategy, &mut rng);
            case.validate().unwrap_or_else(|e| {
                panic!("generated case {i} is invalid: {e}\n{}", case.to_json())
            });
        }
    }

    #[test]
    fn cases_round_trip_through_json_exactly() {
        let strategy = chaos_case();
        let mut rng = test_rng("chaos::gen::roundtrip");
        for _ in 0..50 {
            let case = generate_case(&strategy, &mut rng);
            let back = ChaosCase::from_json(&case.to_json()).expect("round trip parses");
            assert_eq!(back, case);
        }
    }

    #[test]
    fn generator_covers_every_event_kind_and_chaos_feature() {
        let strategy = chaos_case();
        let mut rng = test_rng("chaos::gen::coverage");
        let (mut admit, mut teardown, mut scale, mut profile, mut burst, mut fault, mut sla) =
            (false, false, false, false, false, false, false);
        let (mut fleet_admit, mut checkpointed, mut probed, mut multi_cell) =
            (false, false, false, false);
        for _ in 0..300 {
            let case = generate_case(&strategy, &mut rng);
            multi_cell |= case.cells > 1;
            checkpointed |= case.plan.windows.iter().any(|w| w.checkpoint);
            probed |= case.plan.probe_admissions;
            for t in &case.scenario.events {
                match &t.event {
                    FleetEvent::FleetAdmit { .. } => fleet_admit = true,
                    FleetEvent::CellEvent { event, .. } => match event {
                        ScenarioEvent::AdmitSlice { .. } => admit = true,
                        ScenarioEvent::TeardownSlice { .. } => teardown = true,
                        ScenarioEvent::SetTrafficScale { .. } => scale = true,
                        ScenarioEvent::SetTraceProfile { .. } => profile = true,
                        ScenarioEvent::TrafficBurst { .. } => burst = true,
                        ScenarioEvent::DomainFault { .. } => fault = true,
                        ScenarioEvent::RenegotiateSla { .. } => sla = true,
                    },
                }
            }
        }
        assert!(
            admit && teardown && scale && profile && burst && fault && sla,
            "some scenario event kind never generated: admit={admit} teardown={teardown} \
             scale={scale} profile={profile} burst={burst} fault={fault} sla={sla}"
        );
        assert!(
            fleet_admit && checkpointed && probed && multi_cell,
            "some fleet feature never generated: fleet_admit={fleet_admit} \
             checkpointed={checkpointed} probed={probed} multi_cell={multi_cell}"
        );
    }
}
