//! Domain-specific counterexample minimization.
//!
//! The vendored proptest shim has no generic shrinking, so the fuzz loop
//! shrinks failing [`ChaosCase`]s itself: greedy descent over a fixed
//! candidate ladder — drop a fleet event, shorten the scenario, drop an
//! initial slice, remove a cell, simplify the drive plan, switch tuning
//! back to its mildest setting — accepting any candidate that still
//! validates and still fails, until a fixpoint (or the evaluation budget
//! runs out). The result is the case to commit under
//! `crates/chaos/regressions/`.

use onslicing_scenario::FleetEvent;

use crate::gen::ChaosCase;

/// Candidate evaluations before the shrinker gives up and returns the best
/// case found so far (each evaluation replays the full invariant battery).
const SHRINK_BUDGET: usize = 300;

/// Greedily minimizes `case` while `still_fails` holds. `still_fails`
/// should wrap the same check that surfaced the counterexample, e.g.
/// `|c| check_case_with_scratch(c).is_err()`.
pub fn shrink_case(case: &ChaosCase, still_fails: &dyn Fn(&ChaosCase) -> bool) -> ChaosCase {
    let mut best = case.clone();
    let mut budget = SHRINK_BUDGET;
    'descent: loop {
        for candidate in candidates(&best) {
            if budget == 0 {
                return best;
            }
            if candidate.validate().is_err() {
                continue;
            }
            budget -= 1;
            if still_fails(&candidate) {
                best = candidate;
                continue 'descent;
            }
        }
        return best;
    }
}

/// The candidate ladder, most-impactful reductions first.
fn candidates(case: &ChaosCase) -> Vec<ChaosCase> {
    let mut out = Vec::new();
    for i in 0..case.scenario.events.len() {
        let mut c = case.clone();
        c.scenario.events.remove(i);
        out.push(c);
    }
    let total = case.scenario.base.total_slots;
    for shorter in [total / 2, total - 1] {
        if shorter > 0 && shorter < total {
            let mut c = case.clone();
            c.scenario.base.total_slots = shorter;
            out.push(c);
        }
    }
    if case.scenario.base.initial_slices.len() > 1 {
        let mut c = case.clone();
        c.scenario.base.initial_slices.pop();
        out.push(c);
    }
    if case.cells > 1 {
        let mut c = case.clone();
        c.cells -= 1;
        c.scenario.min_cells = c.cells;
        for t in &mut c.scenario.events {
            if let FleetEvent::CellEvent { cell, .. } = &mut t.event {
                *cell %= c.cells as u32;
            }
        }
        out.push(c);
    }
    for i in 0..case.plan.windows.len() {
        let mut c = case.clone();
        c.plan.windows.remove(i);
        out.push(c);
    }
    if case.plan.windows.iter().any(|w| w.checkpoint) {
        let mut c = case.clone();
        for w in &mut c.plan.windows {
            w.checkpoint = false;
        }
        out.push(c);
    }
    if case.plan.probe_admissions {
        let mut c = case.clone();
        c.plan.probe_admissions = false;
        out.push(c);
    }
    if case.pretrain_episodes > 0 {
        let mut c = case.clone();
        c.pretrain_episodes = 0;
        out.push(c);
    }
    if case.balancer_enabled {
        let mut c = case.clone();
        c.balancer_enabled = false;
        out.push(c);
    }
    if case.headroom != 0.0 {
        let mut c = case.clone();
        c.headroom = 0.0;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::chaos_case;
    use proptest::{generate_case, test_rng};

    #[test]
    fn shrinking_converges_and_preserves_the_failure_predicate() {
        let strategy = chaos_case();
        let mut rng = test_rng("chaos::shrink::converges");
        // A synthetic predicate: "fails" while the scenario still has any
        // fleet event. The shrinker must reach an event-free case (the
        // minimal failing input under this predicate is no event at all...
        // which does NOT fail, so the minimum keeps >= 1 event).
        for _ in 0..20 {
            let case = generate_case(&strategy, &mut rng);
            if case.scenario.events.is_empty() {
                continue;
            }
            let minimized = shrink_case(&case, &|c| !c.scenario.events.is_empty());
            assert_eq!(
                minimized.scenario.events.len(),
                1,
                "shrinker should reduce to a single fleet event"
            );
            assert!(
                minimized.validate().is_ok(),
                "minimized case must stay valid"
            );
            assert!(
                minimized.plan.windows.is_empty() && !minimized.plan.probe_admissions,
                "plan reductions are independent of the predicate and must all apply"
            );
        }
    }
}
