//! The invariant battery every generated [`ChaosCase`] must survive.
//!
//! One [`check_case`] call asserts, over the case's scenario and drive
//! plan, the repo's machine-checked laws:
//!
//! 1. **Reference run** — the one-shot [`ElasticFleetRunner`] completes and
//!    produces a finite [`FleetReport`] and finite telemetry everywhere.
//! 2. **Balancer cadence** — every recorded migration sits on a scheduled
//!    cadence boundary (`slot = k · cadence_slots`, `k ≥ 1`); a disabled
//!    balancer migrates nothing.
//! 3. **Window equivalence** — driving [`ElasticFleet::advance_to`]
//!    through the plan's window sequence yields a final fleet trace
//!    byte-identical to the one-shot runner's.
//! 4. **Chaos resume** — at plan-chosen boundaries the fleet is
//!    checkpointed to disk, dropped, and resumed from the file (with a
//!    torn-write `.tmp` artifact planted next to it); the resumed run's
//!    final trace still byte-equals the uninterrupted reference, and the
//!    checkpoint GC sweeps the torn artifact.
//! 5. **Admission law** — at window boundaries, back-to-back live
//!    admissions are granted *exactly* as long as every resource's residual
//!    capacity covers the estimated share plus headroom plus every earlier
//!    same-boundary grant's reservation — predicted here by independent
//!    arithmetic over [`DomainSet`] residuals, never by asking the
//!    controller; and a fleet at its scenario end admits nothing.
//! 6. **Admission conservation** — every scripted fleet admission is
//!    adjudicated (granted or denied fleet-wide); none is silently
//!    dropped, wherever in the timeline it sits (slot 0 included).
//!
//! Violations come back as `Err(description)` so the fuzz loop can shrink
//! the case and print a minimized counterexample instead of panicking
//! mid-battery.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use onslicing_fleet::{ElasticFleet, ElasticFleetRunner, FleetCheckpoint, FleetOutcome};
use onslicing_replay::{checkpoint_file_name, gc_checkpoint_dir, list_checkpoint_slots};
use onslicing_scenario::ScenarioEngine;
use onslicing_scenario::SliceSpec;
use onslicing_slices::{ResourceKind, SliceKind};

use crate::gen::ChaosCase;

/// Upper bound on predicted/observed back-to-back admissions before the
/// harness declares the controller diverged (a controller that never denies
/// is itself a counterexample).
const ADMISSION_PROBE_CAP: usize = 10_000;

/// Runs the full invariant battery for one case inside a private scratch
/// directory under the system temp dir (created and removed here).
pub fn check_case_with_scratch(case: &ChaosCase) -> Result<(), String> {
    static NEXT_SCRATCH: AtomicUsize = AtomicUsize::new(0);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "onslicing-chaos-{}-{}",
        std::process::id(),
        NEXT_SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create scratch dir {}: {e}", dir.display()))?;
    let result = check_case(case, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Runs the full invariant battery for one case, checkpointing into
/// `scratch` (which must exist). `Err` describes the first violated
/// invariant.
pub fn check_case(case: &ChaosCase, scratch: &Path) -> Result<(), String> {
    case.validate()
        .map_err(|e| format!("generator soundness: produced an invalid case: {e}"))?;
    let runner = ElasticFleetRunner::new(case.scenario.clone(), case.fleet_config())
        .map_err(|e| format!("reference runner rejected a validated case: {e}"))?;
    let reference = runner
        .run()
        .map_err(|e| format!("reference run failed: {e}"))?;
    check_finite(&reference)?;
    check_balancer_cadence(case, &reference)?;
    check_admission_conservation(case, &reference)?;
    let stepwise = run_stepwise(case, scratch)?;
    let reference_trace = reference.trace.to_json();
    let stepwise_trace = stepwise.trace.to_json();
    if stepwise_trace != reference_trace {
        return Err(format!(
            "window equivalence: stepwise/chaos trace diverges from the one-shot reference \
             (windows {:?}, first difference at byte {})",
            case.plan.windows,
            first_difference(&reference_trace, &stepwise_trace)
        ));
    }
    Ok(())
}

fn first_difference(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

/// Invariant 1 (finiteness): the aggregate report and every per-slot,
/// per-episode and per-summary metric of every cell trace is finite.
fn check_finite(outcome: &FleetOutcome) -> Result<(), String> {
    if outcome.report.has_non_finite() {
        return Err("finite metrics: fleet report contains a non-finite aggregate".to_string());
    }
    for cell in &outcome.cells {
        let broken = |name: &str, slot: usize, v: f64| {
            format!(
                "finite metrics: cell {} slot {slot}: {name} = {v} is not finite",
                cell.cell
            )
        };
        for slot in &cell.trace.slots {
            for s in &slot.slices {
                for (name, v) in [
                    ("cost", s.cost),
                    ("reward", s.reward),
                    ("usage_percent", s.usage_percent),
                    ("performance_score", s.performance_score),
                    ("lambda", s.lambda),
                ] {
                    if !v.is_finite() {
                        return Err(broken(name, slot.slot, v));
                    }
                }
            }
        }
        for e in &cell.trace.episodes {
            for (name, v) in [
                ("avg_cost", e.avg_cost),
                ("avg_usage_percent", e.avg_usage_percent),
            ] {
                if !v.is_finite() {
                    return Err(broken(name, e.slot, v));
                }
            }
        }
        for s in &cell.trace.summaries {
            for (name, v) in [
                ("mean_reward", s.mean_reward),
                ("cost_p50", s.cost_p50),
                ("cost_p90", s.cost_p90),
                ("cost_p99", s.cost_p99),
                ("usage_p50", s.usage_p50),
                ("usage_p90", s.usage_p90),
                ("usage_p99", s.usage_p99),
                ("final_lambda", s.final_lambda),
            ] {
                if !v.is_finite() {
                    return Err(format!(
                        "finite metrics: cell {} summary of slice {}: {name} = {v} is not finite",
                        cell.cell, s.id
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Invariant 2 (balancer cadence): migrations happen only at scheduled
/// cadence boundaries, and never with the balancer disabled.
fn check_balancer_cadence(case: &ChaosCase, outcome: &FleetOutcome) -> Result<(), String> {
    for m in &outcome.report.migrations {
        if !case.balancer_enabled {
            return Err(format!(
                "balancer cadence: balancer is disabled but slice {} migrated \
                 from cell {} to cell {} at slot {}",
                m.from_slice, m.from_cell, m.to_cell, m.slot
            ));
        }
        let cadence = case.balancer_cadence;
        if m.slot == 0 || !m.slot.is_multiple_of(cadence) {
            return Err(format!(
                "balancer cadence: migration of slice {} (cell {} -> cell {}) happened at \
                 slot {}, which is not a scheduled cadence boundary (cadence {cadence} \
                 schedules slots {cadence}, {}, ...)",
                m.from_slice,
                m.from_cell,
                m.to_cell,
                m.slot,
                2 * cadence
            ));
        }
    }
    Ok(())
}

/// Invariant 6 (admission conservation): every scripted fleet admission is
/// adjudicated — granted or denied fleet-wide — never silently dropped.
/// This is the only invariant that can see a dropped admission: both the
/// one-shot runner and the stepwise fleet share `ElasticFleet`, so a drop
/// common to both still produces byte-identical traces.
fn check_admission_conservation(case: &ChaosCase, outcome: &FleetOutcome) -> Result<(), String> {
    let scripted = case.scenario.fleet_admissions().len();
    let adjudicated =
        outcome.report.fleet_admissions_granted + outcome.report.fleet_admissions_denied;
    if adjudicated != scripted {
        return Err(format!(
            "admission conservation: the scenario scripts {scripted} fleet admissions but the \
             run adjudicated {adjudicated} (granted {} + denied {})",
            outcome.report.fleet_admissions_granted, outcome.report.fleet_admissions_denied
        ));
    }
    Ok(())
}

/// Drives the plan's window sequence with chaos kills and admission probes,
/// then finishes the fleet (invariants 3–5).
fn run_stepwise(case: &ChaosCase, scratch: &Path) -> Result<FleetOutcome, String> {
    let mut fleet = ElasticFleet::new(case.scenario.clone(), case.fleet_config())
        .map_err(|e| format!("stepwise fleet construction failed: {e}"))?;
    let total = fleet.total_slots();
    for (i, w) in case.plan.windows.iter().enumerate() {
        let target = (fleet.slot() + w.advance).min(total);
        fleet
            .advance_to(target)
            .map_err(|e| format!("window {i}: advance_to({target}) failed: {e}"))?;
        if case.plan.probe_admissions {
            check_admission_law(case, &fleet).map_err(|e| format!("window {i}: {e}"))?;
        }
        if w.checkpoint {
            fleet = kill_and_resume(fleet, scratch).map_err(|e| format!("window {i}: {e}"))?;
        }
    }
    fleet
        .advance_to(total)
        .map_err(|e| format!("final advance_to({total}) failed: {e}"))?;
    if case.plan.probe_admissions {
        check_admission_law(case, &fleet).map_err(|e| format!("at scenario end: {e}"))?;
    }
    fleet
        .finish(1.0)
        .map_err(|e| format!("stepwise finish failed: {e}"))
}

/// Invariant 4 (chaos resume): checkpoint to disk, drop the fleet, plant a
/// torn-write `.tmp` artifact, resume from the latest listed checkpoint and
/// GC the directory. The caller's trace comparison then proves the resumed
/// run is byte-identical.
fn kill_and_resume(fleet: ElasticFleet, dir: &Path) -> Result<ElasticFleet, String> {
    let slot = fleet.slot();
    let path = dir.join(checkpoint_file_name(slot));
    fleet
        .checkpoint()
        .save(&path)
        .map_err(|e| format!("chaos resume: checkpoint save failed: {e}"))?;
    drop(fleet);
    // A torn write: a crashed writer's partial temp file for the *next*
    // checkpoint. Listing and resume must ignore it.
    let torn = dir.join(format!("{}.tmp", checkpoint_file_name(slot + 1)));
    std::fs::write(&torn, "{\"format_version\":1,\"scenario_na")
        .map_err(|e| format!("chaos resume: cannot plant torn artifact: {e}"))?;
    let slots = list_checkpoint_slots(dir)
        .map_err(|e| format!("chaos resume: cannot list checkpoints: {e}"))?;
    let latest = *slots
        .last()
        .ok_or("chaos resume: no checkpoint listed after a successful save")?;
    if latest != slot {
        return Err(format!(
            "chaos resume: latest listed checkpoint is slot {latest}, expected {slot} — \
             a torn .tmp artifact leaked into the listing"
        ));
    }
    let resumed = FleetCheckpoint::load(dir.join(checkpoint_file_name(latest)))
        .map_err(|e| format!("chaos resume: reload failed: {e}"))?
        .restore()
        .map_err(|e| format!("chaos resume: restore failed: {e}"))?;
    if resumed.slot() != slot {
        return Err(format!(
            "chaos resume: resumed fleet sits at slot {} but the checkpoint was taken at {slot}",
            resumed.slot()
        ));
    }
    gc_checkpoint_dir(dir, 1).map_err(|e| format!("chaos resume: checkpoint GC failed: {e}"))?;
    if torn.exists() {
        return Err("chaos resume: checkpoint GC left the torn .tmp artifact behind".to_string());
    }
    Ok(resumed)
}

/// Invariant 5 (admission law): on a throwaway restored copy of the fleet,
/// admit back-to-back until denial and compare the grant count against the
/// independently predicted residual-capacity budget.
fn check_admission_law(case: &ChaosCase, fleet: &ElasticFleet) -> Result<(), String> {
    let mut probe = fleet
        .checkpoint()
        .restore()
        .map_err(|e| format!("admission law: probe restore failed: {e}"))?;
    let spec = SliceSpec::new(SliceKind::Mar);
    if probe.is_complete() {
        if let Some((cell, slice)) = probe.admit(&spec) {
            return Err(format!(
                "admission law: fleet already at its scenario end (slot {}) still granted \
                 an admission (cell {cell}, slice {slice}) — a finished fleet must deny",
                probe.slot()
            ));
        }
        return Ok(());
    }
    let mut predicted = 0usize;
    for cell in probe.cells() {
        predicted += predicted_cell_grants(case, &cell.engine)?;
    }
    let mut granted = 0usize;
    while probe.admit(&spec).is_some() {
        granted += 1;
        if granted > ADMISSION_PROBE_CAP {
            return Err(format!(
                "admission law: fleet granted more than {ADMISSION_PROBE_CAP} back-to-back \
                 admissions at slot {} without a denial",
                probe.slot()
            ));
        }
    }
    if granted != predicted {
        return Err(format!(
            "admission law: at slot {} the fleet granted {granted} back-to-back admissions, \
             but residual capacity after same-boundary reservations supports exactly {predicted}",
            probe.slot()
        ));
    }
    Ok(())
}

/// How many more admissions one cell's residual capacity supports,
/// replicating the controller's arithmetic over [`DomainSet`] residuals —
/// the same floating-point expression, evaluated independently:
/// grant `k` requires, for every resource `r`,
/// `residual(r) >= share + headroom · capacity(r) + (pending + k) · share`.
fn predicted_cell_grants(case: &ChaosCase, engine: &ScenarioEngine) -> Result<usize, String> {
    let domains = engine.orchestrator().domains();
    let share = case.estimated_share;
    let pending = engine.pending_admissions();
    let mut k = 0usize;
    loop {
        let reserved = (pending + k) as f64 * share;
        let fits = ResourceKind::ALL.iter().all(|&r| {
            let required = share + case.headroom * domains.capacity_of(r) + reserved;
            domains.residual_capacity(r) >= required
        });
        if !fits {
            return Ok(k);
        }
        k += 1;
        if k > ADMISSION_PROBE_CAP {
            return Err(
                "admission law: predicted residual-capacity budget diverges (no resource \
                 ever saturates)"
                    .to_string(),
            );
        }
    }
}
