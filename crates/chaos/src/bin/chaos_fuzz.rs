//! Standalone fuzz driver for longer sweeps than the in-tree property
//! tests, and the trace emitter behind CI's cross-process thread-count
//! determinism drill.
//!
//! ```text
//! chaos_fuzz [--cases N] [--seed S]            # run the invariant battery
//! chaos_fuzz --cases N --seed S --trace-out F  # write reference traces only
//! ```
//!
//! Battery mode generates `N` cases from the seeded generator, runs every
//! invariant over each, and on failure prints the violation plus the
//! shrunk, committable counterexample JSON; exit status 1 if anything
//! failed. Trace mode skips the battery and concatenates each case's
//! one-shot reference fleet trace into `F` — CI runs it twice under
//! different `RAYON_NUM_THREADS` and byte-compares the files (the rayon
//! shim pins its pool size per process, so thread-count determinism is
//! checkable only across processes).

use std::process::ExitCode;

use onslicing_chaos::{chaos_case, check_case_with_scratch, shrink_case};
use onslicing_fleet::ElasticFleetRunner;
use proptest::generate_case;
use rand::{SeedableRng, Xoshiro256PlusPlus};

struct Args {
    cases: u32,
    seed: u64,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 32,
        seed: 0,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown flag {other} (see crate docs)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("chaos_fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = chaos_case();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(args.seed);
    let mut failures = 0u32;
    let mut traces = String::new();
    for i in 0..args.cases {
        let case = generate_case(&strategy, &mut rng);
        if args.trace_out.is_some() {
            let outcome = ElasticFleetRunner::new(case.scenario.clone(), case.fleet_config())
                .and_then(|runner| runner.run());
            match outcome {
                Ok(outcome) => {
                    traces.push_str(&outcome.trace.to_json());
                    traces.push('\n');
                }
                Err(e) => {
                    eprintln!("case {i}: reference run failed: {e}");
                    failures += 1;
                }
            }
            continue;
        }
        match check_case_with_scratch(&case) {
            Ok(()) => {}
            Err(violation) => {
                failures += 1;
                eprintln!("case {i} (seed {}): {violation}", args.seed);
                eprintln!("shrinking counterexample...");
                let minimized = shrink_case(&case, &|c| check_case_with_scratch(c).is_err());
                eprintln!(
                    "minimized counterexample (commit under crates/chaos/regressions/):\n{}",
                    minimized.to_json()
                );
            }
        }
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, &traces) {
            eprintln!("chaos_fuzz: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} reference traces ({} bytes) to {path}",
            args.cases,
            traces.len()
        );
    } else {
        println!(
            "{} cases checked, {failures} failed (seed {})",
            args.cases, args.seed
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
