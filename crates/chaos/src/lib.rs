//! Adversarial fleet-scenario fuzzing and chaos-recovery harness.
//!
//! PR 5's over-admission sweep showed the fleet admission/migration state
//! machine hides bugs behind hand-curated scenarios. This crate replaces
//! that thin coverage with a generative adversary:
//!
//! - [`gen`] draws random-but-valid [`gen::ChaosCase`]s — whole
//!   [`onslicing_scenario::FleetScenario`]s (every event kind, cell-targeted
//!   and fleet-routed), fleet tuning, and a stepwise drive plan with chaos
//!   kill points;
//! - [`harness`] runs the invariant battery over each case: finite metrics,
//!   balancer-cadence discipline, stepwise-window/one-shot byte equality,
//!   checkpoint → kill → resume byte equality (with torn-write artifacts),
//!   and the reservation-aware admission law checked against independent
//!   residual-capacity arithmetic;
//! - [`shrink`] minimizes any counterexample to the case JSON committed
//!   under `crates/chaos/regressions/`.
//!
//! Entry points: the property tests in `tests/fuzz_fleet.rs` (budget set by
//! `PROPTEST_CASES`, seed perturbed by `PROPTEST_SEED`), the committed
//! regressions in `tests/regressions.rs`, and the `chaos_fuzz` binary for
//! longer sweeps and the cross-process thread-count determinism drill.

pub mod gen;
pub mod harness;
pub mod shrink;

pub use gen::{chaos_case, ChaosCase, DrivePlan, WindowOp};
pub use harness::{check_case, check_case_with_scratch};
pub use shrink::shrink_case;

use proptest::ProptestConfig;

/// A [`ProptestConfig`] with `default_cases` cases unless `PROPTEST_CASES`
/// overrides it — unlike [`ProptestConfig::default`], the fallback is the
/// caller's (the invariant battery is far too heavy for the shim's default
/// of 64).
pub fn bounded_cases(default_cases: u32) -> ProptestConfig {
    let cases = std::env::var(proptest::CASES_ENV)
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|c| *c > 0)
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}
