//! # onslicing-domains
//!
//! Domain managers for the OnSlicing reproduction: the radio (RDM), transport
//! (TDM), core (CDM) and edge (EDM) domain managers that virtualize the
//! infrastructure, enforce per-resource capacity constraints, and run the
//! *parameter coordinator* of the distributed coordination mechanism
//! (paper §4, Eq. 14).
//!
//! On the real testbed the domain managers are REST services wrapping
//! FlexRAN, OpenDayLight, OpenAir-CN and Docker. Here they manage the
//! normalized resource shares that the network simulator interprets, and they
//! expose the same three capabilities the paper relies on:
//!
//! 1. **slice lifecycle** — create/adjust/delete a slice's virtual resources
//!    at sub-second (here: per-call) granularity;
//! 2. **capacity accounting** — detect over-requests `Σ_i â_i,k > L_k` and
//!    either *project* all requests down (the baseline's method) or
//! 3. **parameter coordination** — update the dual variables `β_k` by
//!    sub-gradient ascent (Eq. 14) and hand them back to the agents' action
//!    modifiers, warm-starting from the previous slot to keep the number of
//!    agent↔manager interactions low (Table 3 / Fig. 19).
//!
//! ```
//! use onslicing_domains::{DomainSet, SliceId};
//! use onslicing_slices::Action;
//!
//! let mut domains = DomainSet::testbed_default();
//! let a = SliceId(0);
//! let b = SliceId(1);
//! domains.create_slice(a).unwrap();
//! domains.create_slice(b).unwrap();
//!
//! // Two slices each asking for 70 % of every resource over-request the
//! // infrastructure; one coordination round raises the betas.
//! let requests = vec![(a, Action::uniform(0.7)), (b, Action::uniform(0.7))];
//! assert!(!domains.is_feasible(requests.iter().map(|(_, act)| act)));
//! domains.update_coordination(requests.iter().map(|(_, act)| act));
//! assert!(domains.betas().iter().any(|&b| b > 0.0));
//! ```

pub mod coordinator;
pub mod manager;
pub mod messages;
pub mod set;

pub use coordinator::ParameterCoordinator;
pub use manager::{DomainKind, DomainManager};
pub use messages::{CapacityOverride, CoordinationUpdate, ResourceRequest, SliceConfigCommand};
pub use set::DomainSet;

use serde::{Deserialize, Serialize};

/// Identifier of a slice within the orchestration system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SliceId(pub u32);

impl std::fmt::Display for SliceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice-{}", self.0)
    }
}
