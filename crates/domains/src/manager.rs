//! Domain managers: RDM, TDM, CDM and EDM.
//!
//! Each manager owns the resources of one technical domain, keeps the
//! per-slice allocations it has enforced, and runs one
//! [`ParameterCoordinator`] per resource. The four concrete managers differ
//! only in which resources they own (and in what they wrap on the real
//! testbed — FlexRAN, OpenDayLight, OpenAir-CN, Docker); their orchestration
//! behaviour is identical, which is why a single [`DomainManager`] type
//! parameterized by [`DomainKind`] models all of them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use onslicing_slices::{Action, ResourceKind};

use crate::coordinator::ParameterCoordinator;
use crate::messages::{CoordinationUpdate, SliceConfigCommand};
use crate::SliceId;

/// The four technical domains of the end-to-end slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    /// Radio domain manager (FlexRAN / OAI eNB+gNB on the testbed).
    Radio,
    /// Transport domain manager (OpenDayLight + OpenFlow meters).
    Transport,
    /// Core domain manager (OpenAir-CN CUPS user plane).
    Core,
    /// Edge domain manager (Docker runtime updates).
    Edge,
}

impl DomainKind {
    /// All domains in the paper's order.
    pub const ALL: [DomainKind; 4] = [
        DomainKind::Radio,
        DomainKind::Transport,
        DomainKind::Core,
        DomainKind::Edge,
    ];

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::Radio => "RDM",
            DomainKind::Transport => "TDM",
            DomainKind::Core => "CDM",
            DomainKind::Edge => "EDM",
        }
    }

    /// The shared resources this domain owns.
    ///
    /// CPU and RAM are owned by the edge domain manager: the paper co-locates
    /// each slice's SPGW-U with its edge server, so the CDM's user-plane
    /// compute is drawn from the same allocation (§6).
    pub fn resources(self) -> &'static [ResourceKind] {
        match self {
            DomainKind::Radio => &[ResourceKind::UplinkRadio, ResourceKind::DownlinkRadio],
            DomainKind::Transport => &[
                ResourceKind::TransportBandwidth,
                ResourceKind::TransportPath,
            ],
            DomainKind::Core => &[],
            DomainKind::Edge => &[ResourceKind::EdgeCpu, ResourceKind::EdgeRam],
        }
    }
}

/// A domain manager: slice registry, enforced allocations and one parameter
/// coordinator per owned resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainManager {
    kind: DomainKind,
    coordinators: Vec<ParameterCoordinator>,
    /// The most recently enforced allocation per slice.
    allocations: BTreeMap<SliceId, Action>,
    /// Count of enforcement operations (used to reason about virtualization
    /// overhead in tests and benches).
    enforcement_count: u64,
    /// Fault-free capacity of every owned resource; the coordinators carry
    /// `nominal_capacity · capacity_scale`.
    nominal_capacity: f64,
    /// Current fault multiplier on the nominal capacity (1.0 = healthy).
    capacity_scale: f64,
}

impl DomainManager {
    /// Creates a manager for the given domain with unit capacity and the
    /// default coordination step size on every owned resource.
    pub fn new(kind: DomainKind) -> Self {
        Self::with_parameters(kind, 1.0, 0.5)
    }

    /// Creates a manager with explicit capacity `L_max` and coordination step
    /// size `ε` for every owned resource.
    pub fn with_parameters(kind: DomainKind, capacity: f64, step_size: f64) -> Self {
        let coordinators = kind
            .resources()
            .iter()
            .map(|r| ParameterCoordinator::new(*r, capacity, step_size))
            .collect();
        Self {
            kind,
            coordinators,
            allocations: BTreeMap::new(),
            enforcement_count: 0,
            nominal_capacity: capacity,
            capacity_scale: 1.0,
        }
    }

    /// Which domain this manager controls.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// The resources this manager owns.
    pub fn resources(&self) -> &'static [ResourceKind] {
        self.kind.resources()
    }

    /// Number of slices currently registered.
    pub fn num_slices(&self) -> usize {
        self.allocations.len()
    }

    /// Number of enforcement operations performed so far.
    pub fn enforcement_count(&self) -> u64 {
        self.enforcement_count
    }

    /// The last enforced allocation of a slice, if any.
    pub fn allocation_of(&self, slice: SliceId) -> Option<&Action> {
        self.allocations.get(&slice)
    }

    /// Whether a slice is registered with this manager.
    pub fn has_slice(&self, slice: SliceId) -> bool {
        self.allocations.contains_key(&slice)
    }

    /// The fault-free capacity every owned resource was configured with.
    pub fn nominal_capacity(&self) -> f64 {
        self.nominal_capacity
    }

    /// The current fault multiplier on the nominal capacity (1.0 = healthy).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// The *effective* (possibly degraded) capacity of one resource, or
    /// `None` when this manager does not own it.
    pub fn capacity_of(&self, resource: ResourceKind) -> Option<f64> {
        self.coordinators
            .iter()
            .find(|c| c.resource == resource)
            .map(|c| c.capacity)
    }

    /// Applies a fault (or recovery) to every resource this manager owns:
    /// the effective capacity becomes `nominal · scale`. `scale = 1.0`
    /// restores the healthy infrastructure; `scale < 1.0` models degradation
    /// (a failing transport link, a throttled edge host, radio interference).
    ///
    /// # Panics
    /// Panics if the scale is not positive and finite.
    pub fn set_capacity_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "capacity scale must be positive and finite"
        );
        self.capacity_scale = scale;
        for c in &mut self.coordinators {
            c.set_capacity(self.nominal_capacity * scale);
        }
    }

    /// Applies a slice lifecycle command.
    ///
    /// Returns an error when creating an existing slice or
    /// adjusting/deleting an unknown one.
    pub fn apply(&mut self, command: SliceConfigCommand) -> Result<(), String> {
        match command {
            SliceConfigCommand::Create(id) => {
                if self.allocations.contains_key(&id) {
                    return Err(format!("{id} already exists in {}", self.kind.name()));
                }
                self.allocations.insert(id, Action::zeros());
                Ok(())
            }
            SliceConfigCommand::Delete(id) => {
                if self.allocations.remove(&id).is_none() {
                    return Err(format!("{id} is not registered in {}", self.kind.name()));
                }
                Ok(())
            }
            SliceConfigCommand::Adjust(id, action) => {
                let entry = self
                    .allocations
                    .get_mut(&id)
                    .ok_or_else(|| format!("{id} is not registered in {}", self.kind.name()))?;
                *entry = action;
                self.enforcement_count += 1;
                Ok(())
            }
        }
    }

    /// Sum of the currently enforced shares of one owned resource.
    pub fn total_enforced_share(&self, resource: ResourceKind) -> f64 {
        self.allocations
            .values()
            .map(|a| a.resource_share(resource))
            .sum()
    }

    /// Whether a set of requested actions fits every resource this manager
    /// owns.
    pub fn is_feasible<'a, I>(&self, requests: I) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
        I::IntoIter: Clone,
    {
        let iter = requests.into_iter();
        self.coordinators.iter().all(|c| {
            let shares: Vec<f64> = iter.clone().map(|a| a.resource_share(c.resource)).collect();
            c.is_feasible(&shares)
        })
    }

    /// Allocation-free [`DomainManager::is_feasible`] over a slice of
    /// actions: shares are summed straight off the slice, so the hot
    /// coordination loop materializes nothing.
    pub fn is_feasible_slice(&self, actions: &[Action]) -> bool {
        self.coordinators.iter().all(|c| {
            let total: f64 = actions.iter().map(|a| a.resource_share(c.resource)).sum();
            c.is_feasible_total(total)
        })
    }

    /// Allocation-free coordination round: performs exactly the `β_k`
    /// updates of [`DomainManager::update_coordination`] without building
    /// the per-resource share vectors or the report.
    pub fn update_coordination_in_place(&mut self, actions: &[Action]) {
        for c in &mut self.coordinators {
            let total: f64 = actions.iter().map(|a| a.resource_share(c.resource)).sum();
            c.update_total(total);
        }
    }

    /// Visits every owned resource's current `β_k` without allocating.
    pub fn for_each_beta(&self, mut f: impl FnMut(ResourceKind, f64)) {
        for c in &self.coordinators {
            f(c.resource, c.beta());
        }
    }

    /// One coordination round: updates every owned resource's `β_k` from the
    /// requested actions (Eq. 14) and reports the refreshed values.
    pub fn update_coordination<'a, I>(&mut self, slot: usize, requests: I) -> CoordinationUpdate
    where
        I: IntoIterator<Item = &'a Action>,
        I::IntoIter: Clone,
    {
        let iter = requests.into_iter();
        let mut betas = Vec::with_capacity(self.coordinators.len());
        let mut feasible = true;
        for c in &mut self.coordinators {
            let shares: Vec<f64> = iter.clone().map(|a| a.resource_share(c.resource)).collect();
            feasible &= c.is_feasible(&shares);
            betas.push((c.resource, c.update(&shares)));
        }
        CoordinationUpdate {
            slot,
            betas,
            feasible,
        }
    }

    /// The current dual variables of this manager's resources.
    pub fn betas(&self) -> Vec<(ResourceKind, f64)> {
        self.coordinators
            .iter()
            .map(|c| (c.resource, c.beta()))
            .collect()
    }

    /// Overwrites the dual variable of one owned resource (warm start or
    /// fixed-β experiments). Silently ignores resources the manager does not
    /// own.
    pub fn set_beta(&mut self, resource: ResourceKind, beta: f64) {
        for c in &mut self.coordinators {
            if c.resource == resource {
                c.set_beta(beta);
            }
        }
    }

    /// Resets every coordinator's `β_k` to zero (cold start).
    pub fn reset_betas(&mut self) {
        for c in &mut self.coordinators {
            c.set_beta(0.0);
        }
    }

    /// Projects the requested actions so that every owned resource fits its
    /// capacity, scaling each resource independently — the baseline /
    /// OnRL over-request handling the paper compares against.
    pub fn project<'a, I>(&self, requests: I) -> Vec<Action>
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut actions: Vec<Action> = requests.into_iter().copied().collect();
        for c in &self.coordinators {
            let shares: Vec<f64> = actions
                .iter()
                .map(|a| a.resource_share(c.resource))
                .collect();
            let projected = c.project(&shares);
            for (a, p) in actions.iter_mut().zip(projected) {
                a.set(c.resource.action_dim(), p);
            }
        }
        actions
    }

    /// Allocation-free [`DomainManager::project`]: scales the actions in
    /// place, resource by resource. Bit-identical to the allocating variant —
    /// actions that already fit a resource are left untouched rather than
    /// multiplied by `1.0`.
    pub fn project_in_place(&self, actions: &mut [Action]) {
        for c in &self.coordinators {
            let total: f64 = actions.iter().map(|a| a.resource_share(c.resource)).sum();
            let scale = c.project_scale(total);
            if scale < 1.0 {
                for a in actions.iter_mut() {
                    let share = a.resource_share(c.resource);
                    a.set(c.resource.action_dim(), share * scale);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_own_disjoint_resources_covering_all_six() {
        let mut seen = Vec::new();
        for d in DomainKind::ALL {
            for r in d.resources() {
                assert!(!seen.contains(r), "{r:?} owned by two domains");
                seen.push(*r);
            }
        }
        assert_eq!(seen.len(), ResourceKind::ALL.len());
    }

    #[test]
    fn slice_lifecycle_is_enforced() {
        let mut rdm = DomainManager::new(DomainKind::Radio);
        let id = SliceId(1);
        assert!(rdm.apply(SliceConfigCommand::Create(id)).is_ok());
        assert!(rdm.apply(SliceConfigCommand::Create(id)).is_err());
        assert!(rdm
            .apply(SliceConfigCommand::Adjust(id, Action::uniform(0.4)))
            .is_ok());
        assert_eq!(rdm.allocation_of(id).unwrap().ul_bandwidth, 0.4);
        assert_eq!(rdm.enforcement_count(), 1);
        assert!(rdm.apply(SliceConfigCommand::Delete(id)).is_ok());
        assert!(rdm.apply(SliceConfigCommand::Delete(id)).is_err());
        assert!(rdm
            .apply(SliceConfigCommand::Adjust(id, Action::zeros()))
            .is_err());
    }

    #[test]
    fn total_enforced_share_sums_over_slices() {
        let mut edm = DomainManager::new(DomainKind::Edge);
        for i in 0..3 {
            edm.apply(SliceConfigCommand::Create(SliceId(i))).unwrap();
            edm.apply(SliceConfigCommand::Adjust(SliceId(i), Action::uniform(0.2)))
                .unwrap();
        }
        assert!((edm.total_enforced_share(ResourceKind::EdgeCpu) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn feasibility_and_coordination_follow_the_owned_resources() {
        let mut rdm = DomainManager::new(DomainKind::Radio);
        let fits = [Action::uniform(0.4), Action::uniform(0.4)];
        let too_much = [Action::uniform(0.7), Action::uniform(0.7)];
        assert!(rdm.is_feasible(fits.iter()));
        assert!(!rdm.is_feasible(too_much.iter()));

        let upd = rdm.update_coordination(0, too_much.iter());
        assert!(!upd.feasible);
        assert!(upd.beta_for(ResourceKind::UplinkRadio) > 0.0);
        // Radio manager knows nothing about edge CPU.
        assert_eq!(upd.beta_for(ResourceKind::EdgeCpu), 0.0);
    }

    #[test]
    fn betas_warm_start_and_reset() {
        let mut tdm = DomainManager::new(DomainKind::Transport);
        tdm.set_beta(ResourceKind::TransportBandwidth, 0.4);
        assert_eq!(
            tdm.betas()
                .iter()
                .find(|(r, _)| *r == ResourceKind::TransportBandwidth)
                .unwrap()
                .1,
            0.4
        );
        tdm.reset_betas();
        assert!(tdm.betas().iter().all(|(_, b)| *b == 0.0));
        // Setting a beta for a resource the TDM does not own is a no-op.
        tdm.set_beta(ResourceKind::EdgeCpu, 0.9);
        assert!(tdm.betas().iter().all(|(_, b)| *b == 0.0));
    }

    #[test]
    fn projection_only_touches_owned_resources() {
        let rdm = DomainManager::new(DomainKind::Radio);
        let requests = [Action::uniform(0.8), Action::uniform(0.8)];
        let projected = rdm.project(requests.iter());
        // Radio shares scaled to fit...
        let total_ul: f64 = projected.iter().map(|a| a.ul_bandwidth).sum();
        assert!((total_ul - 1.0).abs() < 1e-9);
        // ...but the CPU shares are untouched (not owned by the RDM).
        assert!(projected.iter().all(|a| (a.cpu - 0.8).abs() < 1e-12));
    }

    #[test]
    fn capacity_scale_degrades_and_restores_every_owned_resource() {
        let mut tdm = DomainManager::new(DomainKind::Transport);
        assert_eq!(tdm.capacity_scale(), 1.0);
        assert_eq!(tdm.capacity_of(ResourceKind::TransportBandwidth), Some(1.0));
        assert_eq!(tdm.capacity_of(ResourceKind::EdgeCpu), None);

        let healthy = [Action::uniform(0.4), Action::uniform(0.4)];
        assert!(tdm.is_feasible(healthy.iter()));
        tdm.set_capacity_scale(0.5);
        assert!(!tdm.is_feasible(healthy.iter()));
        assert_eq!(tdm.capacity_of(ResourceKind::TransportPath), Some(0.5));
        // The degraded capacity also feeds the dual update.
        let upd = tdm.update_coordination(0, healthy.iter());
        assert!(upd.beta_for(ResourceKind::TransportBandwidth) > 0.0);
        // Recovery restores the nominal capacity.
        tdm.set_capacity_scale(1.0);
        assert_eq!(tdm.capacity_of(ResourceKind::TransportPath), Some(1.0));
        assert!(tdm.is_feasible(healthy.iter()));
    }

    #[test]
    #[should_panic(expected = "capacity scale must be positive")]
    fn zero_capacity_scale_is_rejected() {
        DomainManager::new(DomainKind::Radio).set_capacity_scale(0.0);
    }

    #[test]
    fn core_domain_owns_no_shared_resources() {
        let mut cdm = DomainManager::new(DomainKind::Core);
        assert!(cdm.resources().is_empty());
        let requests = vec![Action::uniform(0.9); 5];
        assert!(cdm.is_feasible(requests.iter()));
        let upd = cdm.update_coordination(0, requests.iter());
        assert!(upd.feasible);
        assert!(upd.betas.is_empty());
    }
}
