//! Message types exchanged between OnSlicing agents and domain managers.
//!
//! On the testbed the agents and managers talk over a unified REST API (§6).
//! These structs are the payloads of that interface: a resource request from
//! an agent, the coordination update a manager answers with, and the slice
//! lifecycle commands the orchestrator issues. Keeping them as plain
//! serializable data means the same types could be put on the wire unchanged.

use serde::{Deserialize, Serialize};

use onslicing_slices::{Action, ResourceKind};

use crate::manager::DomainKind;
use crate::SliceId;

/// A slice agent's resource request for the upcoming slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// The requesting slice.
    pub slice: SliceId,
    /// The slot index the request applies to.
    pub slot: usize,
    /// The (possibly already modified) orchestration action.
    pub action: Action,
}

impl ResourceRequest {
    /// The share this request asks of the given resource.
    pub fn share_of(&self, resource: ResourceKind) -> f64 {
        self.action.resource_share(resource)
    }
}

/// A domain manager's answer to a coordination round: the refreshed dual
/// variables for the resources it owns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinationUpdate {
    /// The slot index the update applies to.
    pub slot: usize,
    /// `(resource, β_k)` pairs for every resource the manager owns.
    pub betas: Vec<(ResourceKind, f64)>,
    /// Whether all resources of this manager are currently feasible.
    pub feasible: bool,
}

impl CoordinationUpdate {
    /// Looks up the dual variable of one resource (0 when the manager does
    /// not own it).
    pub fn beta_for(&self, resource: ResourceKind) -> f64 {
        self.betas
            .iter()
            .find(|(r, _)| *r == resource)
            .map(|(_, b)| *b)
            .unwrap_or(0.0)
    }
}

/// A fault-injection / recovery notification for one domain: the effective
/// capacity of every resource the domain owns becomes `nominal · scale`
/// (`scale = 1.0` heals the domain). Emitted by scenario engines and
/// consumed via [`crate::DomainSet::apply_capacity_override`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityOverride {
    /// The faulted (or healed) domain.
    pub domain: DomainKind,
    /// Multiplier on the domain's nominal capacity; must be positive.
    pub scale: f64,
}

/// Slice lifecycle commands issued by the orchestrator to a domain manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SliceConfigCommand {
    /// Instantiate the virtual resources of a new slice.
    Create(SliceId),
    /// Remove a slice and release its resources.
    Delete(SliceId),
    /// Replace a slice's current allocation with the embedded action.
    Adjust(SliceId, Action),
}

impl SliceConfigCommand {
    /// The slice the command addresses.
    pub fn slice(&self) -> SliceId {
        match self {
            SliceConfigCommand::Create(s)
            | SliceConfigCommand::Delete(s)
            | SliceConfigCommand::Adjust(s, _) => *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_request_reads_the_right_share() {
        let req = ResourceRequest {
            slice: SliceId(3),
            slot: 7,
            action: Action::uniform(0.25),
        };
        assert_eq!(req.share_of(ResourceKind::EdgeCpu), 0.25);
        assert_eq!(req.slice, SliceId(3));
    }

    #[test]
    fn coordination_update_lookup_defaults_to_zero() {
        let upd = CoordinationUpdate {
            slot: 1,
            betas: vec![(ResourceKind::UplinkRadio, 0.3)],
            feasible: false,
        };
        assert_eq!(upd.beta_for(ResourceKind::UplinkRadio), 0.3);
        assert_eq!(upd.beta_for(ResourceKind::EdgeRam), 0.0);
    }

    #[test]
    fn commands_report_their_slice() {
        assert_eq!(SliceConfigCommand::Create(SliceId(1)).slice(), SliceId(1));
        assert_eq!(SliceConfigCommand::Delete(SliceId(2)).slice(), SliceId(2));
        assert_eq!(
            SliceConfigCommand::Adjust(SliceId(3), Action::zeros()).slice(),
            SliceId(3)
        );
    }

    #[test]
    fn messages_serialize_round_trip() {
        let req = ResourceRequest {
            slice: SliceId(9),
            slot: 42,
            action: Action::uniform(0.5),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ResourceRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }
}
