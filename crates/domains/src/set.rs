//! The complete set of domain managers of one infrastructure.
//!
//! [`DomainSet`] bundles the RDM, TDM, CDM and EDM, routes slice lifecycle
//! commands to all of them, and aggregates their coordinators into the
//! per-resource `β` vector the agents' action modifiers consume. It also
//! exposes the *projection* alternative so the baselines can share the same
//! infrastructure object.

use serde::{Deserialize, Serialize};

use onslicing_slices::{Action, ResourceKind};

use crate::manager::{DomainKind, DomainManager};
use crate::messages::SliceConfigCommand;
use crate::SliceId;

/// The four domain managers of one end-to-end infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSet {
    managers: Vec<DomainManager>,
    capacity: f64,
}

impl DomainSet {
    /// The testbed default: unit capacity per resource, coordination step
    /// size 1.0 (fast dual convergence at the per-slot timescale).
    pub fn testbed_default() -> Self {
        Self::with_parameters(1.0, 1.0)
    }

    /// Builds a domain set with explicit per-resource capacity and
    /// coordination step size.
    pub fn with_parameters(capacity: f64, step_size: f64) -> Self {
        let managers = DomainKind::ALL
            .iter()
            .map(|k| DomainManager::with_parameters(*k, capacity, step_size))
            .collect();
        Self { managers, capacity }
    }

    /// Immutable access to the individual managers.
    pub fn managers(&self) -> &[DomainManager] {
        &self.managers
    }

    /// The manager of one domain.
    pub fn manager(&self, kind: DomainKind) -> &DomainManager {
        self.managers
            .iter()
            .find(|m| m.kind() == kind)
            .expect("all domains exist")
    }

    /// Mutable access to the manager of one domain.
    pub fn manager_mut(&mut self, kind: DomainKind) -> &mut DomainManager {
        self.managers
            .iter_mut()
            .find(|m| m.kind() == kind)
            .expect("all domains exist")
    }

    /// Applies a fault (or recovery) to one domain: every resource that
    /// domain owns gets its effective capacity scaled to `nominal · scale`.
    /// `scale = 1.0` heals the domain.
    pub fn set_domain_capacity_scale(&mut self, kind: DomainKind, scale: f64) {
        self.manager_mut(kind).set_capacity_scale(scale);
    }

    /// Applies a [`CapacityOverride`] message (fault injection / recovery).
    pub fn apply_capacity_override(&mut self, o: &crate::messages::CapacityOverride) {
        self.set_domain_capacity_scale(o.domain, o.scale);
    }

    /// Heals every domain back to its nominal capacity.
    pub fn clear_capacity_overrides(&mut self) {
        for m in &mut self.managers {
            m.set_capacity_scale(1.0);
        }
    }

    /// The *effective* (possibly fault-degraded) capacity of one resource.
    /// Resources no manager owns report the set-wide nominal capacity.
    pub fn capacity_of(&self, resource: ResourceKind) -> f64 {
        self.managers
            .iter()
            .find_map(|m| m.capacity_of(resource))
            .unwrap_or(self.capacity)
    }

    /// Residual capacity of one resource after the currently *enforced*
    /// allocations: what an admission controller may still hand out.
    pub fn residual_capacity(&self, resource: ResourceKind) -> f64 {
        let enforced: f64 = self
            .managers
            .iter()
            .find(|m| m.resources().contains(&resource))
            .map(|m| m.total_enforced_share(resource))
            .unwrap_or(0.0);
        self.capacity_of(resource) - enforced
    }

    /// Whether a slice is registered (in every domain; registration is
    /// all-or-nothing through [`DomainSet::create_slice`]).
    pub fn has_slice(&self, id: SliceId) -> bool {
        self.managers.iter().all(|m| m.has_slice(id))
    }

    /// Registers a slice in every domain.
    pub fn create_slice(&mut self, id: SliceId) -> Result<(), String> {
        for m in &mut self.managers {
            m.apply(SliceConfigCommand::Create(id))?;
        }
        Ok(())
    }

    /// Removes a slice from every domain.
    pub fn delete_slice(&mut self, id: SliceId) -> Result<(), String> {
        for m in &mut self.managers {
            m.apply(SliceConfigCommand::Delete(id))?;
        }
        Ok(())
    }

    /// Enforces a slice's action in every domain (the per-slot configuration
    /// push).
    pub fn enforce(&mut self, id: SliceId, action: Action) -> Result<(), String> {
        for m in &mut self.managers {
            m.apply(SliceConfigCommand::Adjust(id, action))?;
        }
        Ok(())
    }

    /// Whether the given requested actions fit every resource of every
    /// domain.
    pub fn is_feasible<'a, I>(&self, requests: I) -> bool
    where
        I: IntoIterator<Item = &'a Action>,
        I::IntoIter: Clone,
    {
        let actions: Vec<&Action> = requests.into_iter().collect();
        self.managers
            .iter()
            .all(|m| m.is_feasible(actions.iter().copied()))
    }

    /// One coordination round across all domains: every manager updates its
    /// owned `β_k` (Eq. 14). Returns the full per-resource `β` vector in
    /// [`ResourceKind::ALL`] order.
    pub fn update_coordination<'a, I>(&mut self, requests: I) -> [f64; 6]
    where
        I: IntoIterator<Item = &'a Action>,
        I::IntoIter: Clone,
    {
        let actions: Vec<&Action> = requests.into_iter().collect();
        for m in &mut self.managers {
            let _ = m.update_coordination(0, actions.iter().copied());
        }
        self.betas()
    }

    /// The current `β` vector in [`ResourceKind::ALL`] order.
    pub fn betas(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        for m in &self.managers {
            m.for_each_beta(|resource, beta| out[resource.index()] = beta);
        }
        out
    }

    /// Allocation-free [`DomainSet::is_feasible`] over a slice of actions.
    pub fn is_feasible_slice(&self, actions: &[Action]) -> bool {
        self.managers.iter().all(|m| m.is_feasible_slice(actions))
    }

    /// Allocation-free [`DomainSet::update_coordination`] over a slice of
    /// actions: the same dual-ascent round, with the refreshed `β` vector
    /// returned on the stack and nothing materialized along the way.
    pub fn update_coordination_slice(&mut self, actions: &[Action]) -> [f64; 6] {
        for m in &mut self.managers {
            m.update_coordination_in_place(actions);
        }
        self.betas()
    }

    /// Allocation-free [`DomainSet::project`]: scales the actions in place,
    /// resource by resource, in the same manager order (bit-identical to the
    /// allocating variant).
    pub fn project_in_place(&self, actions: &mut [Action]) {
        for m in &self.managers {
            m.project_in_place(actions);
        }
    }

    /// Overwrites the `β` of one resource in whichever manager owns it.
    pub fn set_beta(&mut self, resource: ResourceKind, beta: f64) {
        for m in &mut self.managers {
            m.set_beta(resource, beta);
        }
    }

    /// Sets every resource's `β` to the same value (the fixed-β sweep of
    /// Fig. 14).
    pub fn set_all_betas(&mut self, beta: f64) {
        for r in ResourceKind::ALL {
            self.set_beta(r, beta);
        }
    }

    /// Resets every coordinator (cold start at the beginning of an episode
    /// when warm starting is disabled).
    pub fn reset_betas(&mut self) {
        for m in &mut self.managers {
            m.reset_betas();
        }
    }

    /// Scales the requested actions down, resource by resource, so that every
    /// capacity is respected — the baseline's *projection* method.
    pub fn project<'a, I>(&self, requests: I) -> Vec<Action>
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let mut actions: Vec<Action> = requests.into_iter().copied().collect();
        for m in &self.managers {
            actions = m.project(actions.iter());
        }
        actions
    }

    /// The per-resource excess demand (`Σ â − L`, positive entries mean
    /// over-request) in [`ResourceKind::ALL`] order, against the *effective*
    /// (possibly fault-degraded) capacities.
    pub fn excess<'a, I>(&self, requests: I) -> [f64; 6]
    where
        I: IntoIterator<Item = &'a Action>,
    {
        let actions: Vec<&Action> = requests.into_iter().collect();
        let mut out = [0.0; 6];
        for (i, r) in ResourceKind::ALL.iter().enumerate() {
            let total: f64 = actions.iter().map(|a| a.resource_share(*r)).sum();
            out[i] = total - self.capacity_of(*r);
        }
        out
    }

    /// The nominal (fault-free) capacity shared by every resource.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_lifecycle_spans_all_domains() {
        let mut set = DomainSet::testbed_default();
        let id = SliceId(0);
        set.create_slice(id).unwrap();
        assert!(set.create_slice(id).is_err());
        set.enforce(id, Action::uniform(0.3)).unwrap();
        for m in set.managers() {
            assert_eq!(m.num_slices(), 1);
            assert_eq!(m.allocation_of(id).unwrap().cpu, 0.3);
        }
        set.delete_slice(id).unwrap();
        assert!(set.delete_slice(id).is_err());
    }

    #[test]
    fn feasibility_covers_every_resource() {
        let set = DomainSet::testbed_default();
        let ok = vec![
            Action::uniform(0.3),
            Action::uniform(0.3),
            Action::uniform(0.3),
        ];
        assert!(set.is_feasible(ok.iter()));
        let mut bad = ok.clone();
        bad[0].ram = 0.9; // 0.9 + 0.3 + 0.3 > 1
        assert!(!set.is_feasible(bad.iter()));
    }

    #[test]
    fn coordination_raises_betas_only_for_overloaded_resources() {
        let mut set = DomainSet::testbed_default();
        let mut a = Action::zeros();
        a.cpu = 0.8;
        let mut b = Action::zeros();
        b.cpu = 0.6;
        let betas = set.update_coordination([&a, &b]);
        assert!(betas[ResourceKind::EdgeCpu.index()] > 0.0);
        assert_eq!(betas[ResourceKind::UplinkRadio.index()], 0.0);
        assert_eq!(betas[ResourceKind::TransportPath.index()], 0.0);
    }

    #[test]
    fn set_all_betas_and_reset() {
        let mut set = DomainSet::testbed_default();
        set.set_all_betas(0.25);
        assert!(set.betas().iter().all(|&b| (b - 0.25).abs() < 1e-12));
        set.reset_betas();
        assert!(set.betas().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn projection_makes_any_request_set_feasible() {
        let set = DomainSet::testbed_default();
        let requests = [
            Action::uniform(0.9),
            Action::uniform(0.8),
            Action::uniform(0.7),
        ];
        let projected = set.project(requests.iter());
        assert!(set.is_feasible(projected.iter()));
        // Projection preserves relative ordering.
        assert!(projected[0].cpu > projected[2].cpu);
    }

    #[test]
    fn excess_reports_per_resource_overload() {
        let set = DomainSet::testbed_default();
        let requests = [Action::uniform(0.6), Action::uniform(0.6)];
        let excess = set.excess(requests.iter());
        for e in excess {
            assert!((e - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn domain_fault_shrinks_capacity_residual_and_feasibility() {
        let mut set = DomainSet::testbed_default();
        set.create_slice(SliceId(0)).unwrap();
        set.enforce(SliceId(0), Action::uniform(0.3)).unwrap();
        assert!((set.residual_capacity(ResourceKind::TransportBandwidth) - 0.7).abs() < 1e-12);

        let requests = [Action::uniform(0.4), Action::uniform(0.4)];
        assert!(set.is_feasible(requests.iter()));
        set.set_domain_capacity_scale(DomainKind::Transport, 0.5);
        assert_eq!(set.capacity_of(ResourceKind::TransportPath), 0.5);
        // Untouched domains keep their nominal capacity.
        assert_eq!(set.capacity_of(ResourceKind::EdgeCpu), 1.0);
        assert!(!set.is_feasible(requests.iter()));
        // `excess` prices the degraded transport, not the healthy radio.
        let excess = set.excess(requests.iter());
        assert!((excess[ResourceKind::TransportBandwidth.index()] - 0.3).abs() < 1e-12);
        assert!((excess[ResourceKind::UplinkRadio.index()] + 0.2).abs() < 1e-12);
        // Projection respects the degraded capacity too.
        let projected = set.project(requests.iter());
        assert!(set.is_feasible(projected.iter()));
        // Healing restores everything.
        set.clear_capacity_overrides();
        assert!(set.is_feasible(requests.iter()));
        assert!((set.residual_capacity(ResourceKind::TransportBandwidth) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn has_slice_tracks_the_lifecycle() {
        let mut set = DomainSet::testbed_default();
        assert!(!set.has_slice(SliceId(4)));
        set.create_slice(SliceId(4)).unwrap();
        assert!(set.has_slice(SliceId(4)));
        set.delete_slice(SliceId(4)).unwrap();
        assert!(!set.has_slice(SliceId(4)));
    }

    #[test]
    fn repeated_coordination_converges_requests_downward_with_a_modifier() {
        // Emulate the agent-side reaction: each round, every slice scales its
        // request down proportionally to the total beta price. The loop must
        // terminate with a feasible allocation in a handful of rounds.
        let mut set = DomainSet::testbed_default();
        let mut requests = vec![Action::uniform(0.8), Action::uniform(0.8)];
        let mut rounds = 0;
        while !set.is_feasible(requests.iter()) && rounds < 20 {
            let betas = set.update_coordination(requests.iter());
            let price: f64 = betas.iter().sum();
            for a in &mut requests {
                let scale = (1.0 - 0.1 * price).clamp(0.5, 1.0);
                *a = Action::from_vec(&a.to_vec().iter().map(|v| v * scale).collect::<Vec<_>>());
            }
            rounds += 1;
        }
        assert!(
            set.is_feasible(requests.iter()),
            "coordination failed to converge"
        );
        assert!(rounds <= 10, "too many interactions: {rounds}");
    }
}
