//! The parameter coordinator (paper §4, Eq. 14).
//!
//! Each domain manager runs one coordinator per resource it owns. The
//! coordinator maintains the dual variable `β_k` that prices the resource:
//! when the slices' (modified) requests over-subscribe the capacity, `β_k`
//! rises by sub-gradient ascent, which pushes the agents' action modifiers to
//! request less; when the resource is under-subscribed, `β_k` decays back
//! toward zero. Warm-starting `β_k` from the previous slot is what keeps the
//! number of agent↔manager interactions per slot low (≈ 1.8 in Table 3).

use serde::{Deserialize, Serialize};

use onslicing_slices::ResourceKind;

/// The coordinator of one shared resource inside one domain manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterCoordinator {
    /// The resource this coordinator prices.
    pub resource: ResourceKind,
    /// Normalized capacity `L_max` of the resource (1.0 = the whole
    /// infrastructure resource).
    pub capacity: f64,
    /// Sub-gradient step size `ε`.
    pub step_size: f64,
    /// Current dual variable `β_k ≥ 0`.
    beta: f64,
}

impl ParameterCoordinator {
    /// Creates a coordinator with `β = 0`.
    ///
    /// # Panics
    /// Panics if the capacity or step size is not positive.
    pub fn new(resource: ResourceKind, capacity: f64, step_size: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(step_size > 0.0, "step size must be positive");
        Self {
            resource,
            capacity,
            step_size,
            beta: 0.0,
        }
    }

    /// The current coordinating parameter `β_k`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Overwrites `β_k` (used to warm-start from the previous slot or to
    /// evaluate fixed-β sweeps like Fig. 14).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta.max(0.0);
    }

    /// Overwrites the capacity `L_max` (fault injection / recovery: a
    /// degraded link or an overloaded edge host shrinks the resource the
    /// coordinator prices).
    ///
    /// # Panics
    /// Panics if the new capacity is not positive and finite.
    pub fn set_capacity(&mut self, capacity: f64) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive and finite"
        );
        self.capacity = capacity;
    }

    /// Excess demand `Σ_i â_i,k − L_max` for a set of requested shares
    /// (positive when the resource is over-requested).
    pub fn excess(&self, requested_shares: &[f64]) -> f64 {
        self.excess_of_total(requested_shares.iter().sum::<f64>())
    }

    /// [`ParameterCoordinator::excess`] for an already-summed demand total.
    /// The allocation-free coordination path sums shares straight off the
    /// action slice and feeds the total here.
    pub fn excess_of_total(&self, total: f64) -> f64 {
        total - self.capacity
    }

    /// Whether the requests fit within the capacity.
    ///
    /// A 0.1 % over-allocation tolerance is accepted: the dual-ascent
    /// coordination converges geometrically, so insisting on exact
    /// feasibility would waste interactions on a vanishing sliver.
    pub fn is_feasible(&self, requested_shares: &[f64]) -> bool {
        self.is_feasible_total(requested_shares.iter().sum::<f64>())
    }

    /// [`ParameterCoordinator::is_feasible`] for an already-summed total.
    pub fn is_feasible_total(&self, total: f64) -> bool {
        self.excess_of_total(total) <= 1e-3
    }

    /// One sub-gradient update of Eq. 14:
    /// `β_k ← [β_k + ε (Σ_i â_i,k − L_max)]⁺`. Returns the new value.
    pub fn update(&mut self, requested_shares: &[f64]) -> f64 {
        self.update_total(requested_shares.iter().sum::<f64>())
    }

    /// [`ParameterCoordinator::update`] for an already-summed total.
    pub fn update_total(&mut self, total: f64) -> f64 {
        let excess = self.excess_of_total(total);
        self.beta = (self.beta + self.step_size * excess).max(0.0);
        self.beta
    }

    /// Scales the requested shares down proportionally so they fit the
    /// capacity — the *projection* method used by the baseline and by OnRL
    /// (and shown in Table 3 to cause SLA violations). Requests that already
    /// fit are returned unchanged.
    pub fn project(&self, requested_shares: &[f64]) -> Vec<f64> {
        let total: f64 = requested_shares.iter().sum();
        let scale = self.project_scale(total);
        if scale >= 1.0 {
            return requested_shares.to_vec();
        }
        requested_shares.iter().map(|s| s * scale).collect()
    }

    /// The proportional scale-down factor projection would apply to requests
    /// summing to `total` (`1.0` when they already fit). Lets callers project
    /// an action slice in place without materializing per-resource share
    /// vectors.
    pub fn project_scale(&self, total: f64) -> f64 {
        if total <= self.capacity || total <= 0.0 {
            1.0
        } else {
            self.capacity / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> ParameterCoordinator {
        ParameterCoordinator::new(ResourceKind::UplinkRadio, 1.0, 0.5)
    }

    #[test]
    fn beta_starts_at_zero_and_stays_nonnegative() {
        let mut c = coord();
        assert_eq!(c.beta(), 0.0);
        // Under-subscription cannot push beta below zero.
        c.update(&[0.1, 0.2]);
        assert_eq!(c.beta(), 0.0);
    }

    #[test]
    fn over_request_raises_beta_by_eps_times_excess() {
        let mut c = coord();
        let new_beta = c.update(&[0.8, 0.6]); // excess 0.4
        assert!((new_beta - 0.2).abs() < 1e-12);
        // A second identical round keeps raising it.
        let again = c.update(&[0.8, 0.6]);
        assert!((again - 0.4).abs() < 1e-12);
    }

    #[test]
    fn beta_decays_once_requests_become_feasible() {
        let mut c = coord();
        c.update(&[0.9, 0.9]); // beta = 0.4
        c.update(&[0.3, 0.3]); // excess -0.4 -> beta 0.2
        assert!((c.beta() - 0.2).abs() < 1e-12);
        c.update(&[0.1, 0.1]);
        assert!(c.beta() < 0.2);
    }

    #[test]
    fn feasibility_check_matches_excess_sign() {
        let c = coord();
        assert!(c.is_feasible(&[0.5, 0.5]));
        assert!(!c.is_feasible(&[0.51, 0.5]));
        assert!((c.excess(&[0.7, 0.5]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn projection_scales_down_only_when_infeasible() {
        let c = coord();
        let fit = c.project(&[0.2, 0.3]);
        assert_eq!(fit, vec![0.2, 0.3]);
        let squeezed = c.project(&[1.0, 1.0]);
        assert!((squeezed.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((squeezed[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_beta_clamps_negative_values() {
        let mut c = coord();
        c.set_beta(-3.0);
        assert_eq!(c.beta(), 0.0);
        c.set_beta(0.7);
        assert_eq!(c.beta(), 0.7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ParameterCoordinator::new(ResourceKind::EdgeCpu, 0.0, 0.1);
    }
}
