//! The built-in scenario catalogue.
//!
//! Seven named scenarios covering the workload axes the ROADMAP asks for:
//! steady state, flash crowds, slice churn, infrastructure faults, a
//! week-long diurnal rhythm with an SLA renegotiation, a many-slice
//! stress deployment that exercises the rayon fan-out, and the fleet-soak
//! per-cell workload of the multi-cell fleet runner. All are CI-scale
//! (seconds in release mode); they are *shapes*, so scaling them up is a
//! matter of raising `horizon`/`total_slots`.

use onslicing_domains::DomainKind;
use onslicing_slices::SliceKind;
use onslicing_traffic::DiurnalTraceConfig;

use crate::spec::{Scenario, ScenarioEvent, SliceSpec};

/// Names of the built-in scenarios, in catalogue order.
pub const BUILTIN_NAMES: [&str; 7] = [
    "steady",
    "flash-crowd",
    "slice-churn",
    "tn-degradation",
    "diurnal-week",
    "stress-many-slices",
    "fleet-soak",
];

fn paper_trio(scenario: Scenario) -> Scenario {
    scenario
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs))
        .slice(SliceSpec::new(SliceKind::Rdc))
}

/// The paper's static setting: three slices, no events — the control run
/// every other scenario is compared against.
pub fn steady() -> Scenario {
    paper_trio(Scenario::new("steady", 16, 48))
        .describe("Three slices (MAR/HVS/RDC), stationary traffic, no events")
}

/// A flash crowd hits the MAR slice while a fourth slice asks to join.
pub fn flash_crowd() -> Scenario {
    paper_trio(Scenario::new("flash-crowd", 16, 64))
        .describe("MAR traffic doubles for one episode; a fourth slice joins mid-surge")
        .with_capacity(1.5)
        .at(
            16,
            ScenarioEvent::TrafficBurst {
                slice: 0,
                scale: 2.0,
                duration_slots: 16,
            },
        )
        .at(
            24,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Mar).with_peak_rate(3.0),
            },
        )
        .at(48, ScenarioEvent::TeardownSlice { slice: 3 })
}

/// Continuous admission and teardown: tenants come and go.
pub fn slice_churn() -> Scenario {
    Scenario::new("slice-churn", 12, 84)
        .describe("Tenants join and leave every few episodes; ids 2..4 are assigned in event order")
        .with_capacity(1.5)
        .slice(SliceSpec::new(SliceKind::Mar))
        .slice(SliceSpec::new(SliceKind::Hvs))
        .at(
            12,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Rdc),
            },
        )
        .at(
            24,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Mar).with_peak_rate(2.0),
            },
        )
        .at(36, ScenarioEvent::TeardownSlice { slice: 1 })
        .at(48, ScenarioEvent::TeardownSlice { slice: 2 })
        .at(
            60,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Hvs),
            },
        )
}

/// Transport-network degradation, then a shorter radio fault: the domain
/// managers price the shrunken capacities and the agents must shrink with
/// them.
pub fn tn_degradation() -> Scenario {
    paper_trio(Scenario::new("tn-degradation", 16, 64))
        .describe("Transport capacity halves for one episode, then the radio degrades briefly")
        .at(
            16,
            ScenarioEvent::DomainFault {
                domain: DomainKind::Transport,
                capacity_scale: 0.5,
                duration_slots: 16,
            },
        )
        .at(
            48,
            ScenarioEvent::DomainFault {
                domain: DomainKind::Radio,
                capacity_scale: 0.7,
                duration_slots: 8,
            },
        )
}

/// A compressed week: weekday/weekend traffic regimes plus a mid-week SLA
/// renegotiation on the video slice.
pub fn diurnal_week() -> Scenario {
    let mut scenario = paper_trio(Scenario::new("diurnal-week", 24, 168)).describe(
        "Seven compressed days: weekday volumes, a weekend dip, an SLA renegotiation on HVS",
    );
    // Days 0-4 ramp the human-driven slices up through the week, days 5-6
    // are the weekend dip; the IoT slice (RDC) stays flat throughout.
    for (day, scale) in [(1, 1.1), (2, 1.2), (3, 1.25), (4, 1.3), (5, 0.7), (6, 0.6)] {
        let at = day * 24;
        scenario = scenario
            .at(at, ScenarioEvent::SetTrafficScale { slice: 0, scale })
            .at(at, ScenarioEvent::SetTrafficScale { slice: 1, scale });
    }
    scenario
        .at(
            72,
            ScenarioEvent::RenegotiateSla {
                slice: 1,
                cost_threshold: 0.08,
            },
        )
        // Mid-week the streaming tenant's mix changes: more viewers, later
        // evening peak (takes effect from the next episode).
        .at(
            96,
            ScenarioEvent::SetTraceProfile {
                slice: 1,
                profile: DiurnalTraceConfig {
                    peak_rate: 3.0,
                    peak_hour: 21.5,
                    ..DiurnalTraceConfig::hvs_default()
                },
            },
        )
}

/// A many-slice deployment (12 ≫ the paper's 3) on a proportionally larger
/// infrastructure — the scenario that exercises the per-slice rayon fan-out.
pub fn stress_many_slices() -> Scenario {
    let mut scenario = Scenario::new("stress-many-slices", 8, 24)
        .describe("12 cloned slices on a 4x infrastructure; exercises the parallel fan-out")
        .with_capacity(4.0);
    for i in 0..12 {
        scenario = scenario.slice(SliceSpec::new(SliceKind::ALL[i % 3]));
    }
    scenario
}

/// The per-cell workload of the fleet runner: a 12-slice deployment that
/// additionally exercises every event class mid-run — an admission (the
/// 13th slice), a flash burst, a transport fault and a teardown — so a
/// fleet of `N` cells soaks lifecycle churn at `N × 12+` slice scale.
pub fn fleet_soak() -> Scenario {
    let mut scenario = Scenario::new("fleet-soak", 8, 24)
        .describe("12 slices per cell plus mid-run admission, burst, transport fault and teardown")
        .with_capacity(4.5);
    for i in 0..12 {
        scenario = scenario.slice(SliceSpec::new(SliceKind::ALL[i % 3]));
    }
    scenario
        .at(
            8,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::Mar).with_peak_rate(2.0),
            },
        )
        .at(
            10,
            ScenarioEvent::TrafficBurst {
                slice: 0,
                scale: 1.8,
                duration_slots: 6,
            },
        )
        .at(
            12,
            ScenarioEvent::DomainFault {
                domain: DomainKind::Transport,
                capacity_scale: 0.7,
                duration_slots: 6,
            },
        )
        .at(20, ScenarioEvent::TeardownSlice { slice: 5 })
}

/// Every built-in scenario, in [`BUILTIN_NAMES`] order.
pub fn all() -> Vec<Scenario> {
    vec![
        steady(),
        flash_crowd(),
        slice_churn(),
        tn_degradation(),
        diurnal_week(),
        stress_many_slices(),
        fleet_soak(),
    ]
}

/// Looks a built-in scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// Resolves a CLI scenario argument: a built-in name, or a path to a
/// scenario JSON file (validated on load). Shared by the `replay_check`
/// and `fleet_runner` binaries so the resolution rules cannot drift apart.
pub fn by_name_or_file(arg: &str) -> Result<Scenario, String> {
    if let Some(scenario) = by_name(arg) {
        return Ok(scenario);
    }
    if std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg)
            .map_err(|e| format!("cannot read scenario file `{arg}`: {e}"))?;
        return Scenario::from_json(&text);
    }
    Err(format!(
        "`{arg}` is neither a built-in scenario nor an existing file \
         (built-ins: {})",
        BUILTIN_NAMES.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_valid_and_named_consistently() {
        let scenarios = all();
        assert_eq!(scenarios.len(), BUILTIN_NAMES.len());
        for (scenario, name) in scenarios.iter().zip(BUILTIN_NAMES) {
            assert_eq!(scenario.name, name);
            scenario.validate().unwrap();
            assert!(!scenario.description.is_empty());
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for name in BUILTIN_NAMES {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn every_builtin_round_trips_through_json() {
        for scenario in all() {
            let back = Scenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn stress_scenario_goes_well_beyond_three_slices() {
        let s = stress_many_slices();
        assert!(s.initial_slices.len() >= 12);
        assert!(s.capacity >= 4.0);
    }

    #[test]
    fn fleet_soak_mixes_scale_with_lifecycle_churn() {
        let s = fleet_soak();
        assert_eq!(s.initial_slices.len(), 12);
        // One admission mid-run, capacity-gated per cell by the admission
        // controller: cells peak at 12-13 slices depending on their seed,
        // and the committed 8-cell fleet curve peaks at 101 concurrent
        // slices — past the 100-slice fleet target.
        let admissions = s
            .events
            .iter()
            .filter(|t| matches!(t.event, ScenarioEvent::AdmitSlice { .. }))
            .count();
        assert_eq!(admissions, 1);
        assert!(s
            .events
            .iter()
            .any(|t| matches!(t.event, ScenarioEvent::DomainFault { .. })));
        assert!(s
            .events
            .iter()
            .any(|t| matches!(t.event, ScenarioEvent::TeardownSlice { .. })));
    }
}
