//! # onslicing-scenario
//!
//! An event-driven scenario engine over the OnSlicing reproduction: scripts
//! a timeline of slice admissions and teardowns, traffic regime shifts and
//! bursts, domain capacity faults and SLA renegotiations, executes it
//! against a live multi-slice deployment and reports per-scenario metrics
//! (SLA violation rate, coordination rounds, throughput, wall clock).
//!
//! The paper evaluates one fixed setting — three slices alive from t = 0 —
//! but OnSlicing is an *online* system; this crate turns the reproduction
//! into a workload generator for the non-stationary conditions the system
//! is actually for.
//!
//! * [`spec`] — the serializable scenario format ([`Scenario`],
//!   [`ScenarioEvent`], [`SliceSpec`]) with JSON round-tripping;
//! * [`admission`] — the residual-capacity admission controller consulted
//!   before any mid-run slice instantiation;
//! * [`engine`] — the slot-by-slot executor ([`ScenarioEngine`]) and the
//!   [`ScenarioReport`] metrics;
//! * [`builtin`] — the seven named built-in scenarios (`steady`,
//!   `flash-crowd`, `slice-churn`, `tn-degradation`, `diurnal-week`,
//!   `stress-many-slices`, `fleet-soak`).
//!
//! ```no_run
//! use onslicing_scenario::{builtin, run_scenario, ScenarioConfig};
//!
//! let report = run_scenario(builtin::steady(), ScenarioConfig::default()).unwrap();
//! println!(
//!     "{}: {:.1}% violations, {:.2} rounds/slot, {:.0} slice-slots/s",
//!     report.scenario,
//!     report.sla_violation_percent,
//!     report.avg_coordination_rounds,
//!     report.slice_slots_per_second
//! );
//! ```

pub mod admission;
pub mod builtin;
pub mod engine;
pub mod fleet;
pub mod spec;

pub use admission::{
    admission_policy_by_name, admission_policy_names, AdmissionConfig, AdmissionController,
    AdmissionDenied, AdmissionPolicy, AdmissionPolicyName, ADMISSION_POLICIES,
};
pub use engine::{
    derive_cell_seed, run_scenario, EpisodeEndEvent, LiveEventOutcome, ScenarioConfig,
    ScenarioEngine, ScenarioReport, SliceMigration, SliceReport, SlotObserver, SlotSample,
    TrafficRestore,
};
pub use fleet::{
    all_fleet_builtins, cell_outage, diurnal_fleet, fleet_by_name, hotspot_shift, FleetEvent,
    FleetScenario, TimedFleetEvent, FLEET_BUILTIN_NAMES,
};
pub use spec::{Scenario, ScenarioEvent, SliceSpec, TimedEvent};
