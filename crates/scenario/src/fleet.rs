//! Fleet-level scenario format: a per-cell base scenario plus a timeline
//! of **fleet events** — cell-targeted scenario events (the knob that lets
//! a script concentrate load on one cell) and fleet-routed admissions (new
//! slices whose placement is decided by the fleet admission controller at
//! run time, not by the script).
//!
//! A [`FleetScenario`] deliberately stays plain data, like [`Scenario`]:
//! JSON round-trippable, validated before execution, and materialized into
//! ordinary per-cell scenarios by [`FleetScenario::scenario_for_cell`] —
//! cell-targeted events are spliced into the target cell's own timeline,
//! so their slot semantics are exactly those of a single-cell run. Only
//! [`FleetEvent::FleetAdmit`] needs the fleet layer at run time.
//!
//! The two built-ins are the elastic-fleet counterparts of `flash-crowd`
//! and `tn-degradation`: [`hotspot_shift`] concentrates a traffic regime
//! shift on cell 0 (the balancer should drain it), and [`cell_outage`]
//! degrades cell 0's transport capacity (the balancer should evacuate it).

use serde::{Deserialize, Serialize};

use onslicing_domains::DomainKind;
use onslicing_slices::SliceKind;
use onslicing_traffic::DiurnalTraceConfig;

use crate::spec::{Scenario, ScenarioEvent, SliceSpec};

/// Names of the built-in fleet scenarios, in catalogue order.
pub const FLEET_BUILTIN_NAMES: [&str; 3] = ["hotspot-shift", "cell-outage", "diurnal-fleet"];

/// One scripted occurrence in a fleet timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// An ordinary scenario event targeted at exactly one cell; it is
    /// spliced into that cell's timeline and fires with single-cell slot
    /// semantics. Slice ids inside the event are the **target cell's** ids.
    CellEvent {
        /// The cell the event fires in (0-based).
        cell: u32,
        /// What happens there.
        event: ScenarioEvent,
    },
    /// A fleet-routed admission: the fleet admission controller places the
    /// slice on the least-loaded cell that passes the per-cell residual
    /// capacity check (reserving earlier same-boundary grants' shares), or
    /// denies it fleet-wide when no cell can host it.
    FleetAdmit {
        /// Blueprint of the slice asking to join.
        slice: SliceSpec,
    },
}

/// A fleet event bound to the slot it fires at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedFleetEvent {
    /// The slot (0-based, global scenario time) the event fires at.
    pub at_slot: usize,
    /// What happens.
    pub event: FleetEvent,
}

/// A complete fleet scenario: the per-cell base deployment plus the fleet
/// timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Fleet scenario name (used in reports, traces and file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Smallest cell count the script makes sense at; every cell-targeted
    /// event must address a cell below this floor, so any fleet with at
    /// least `min_cells` cells can run the scenario.
    pub min_cells: usize,
    /// The scenario every cell starts from (same shape, per-cell seeds).
    pub base: Scenario,
    /// The fleet timeline (sorted by the runner before execution).
    pub events: Vec<TimedFleetEvent>,
}

impl FleetScenario {
    /// Starts a fleet scenario around a per-cell base deployment.
    pub fn new(base: Scenario, min_cells: usize) -> Self {
        Self {
            name: base.name.clone(),
            description: String::new(),
            min_cells,
            base,
            events: Vec::new(),
        }
    }

    /// Sets the human description.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Schedules a cell-targeted event.
    pub fn at_cell(mut self, slot: usize, cell: u32, event: ScenarioEvent) -> Self {
        self.events.push(TimedFleetEvent {
            at_slot: slot,
            event: FleetEvent::CellEvent { cell, event },
        });
        self
    }

    /// Schedules a fleet-routed admission.
    pub fn fleet_admit(mut self, slot: usize, slice: SliceSpec) -> Self {
        self.events.push(TimedFleetEvent {
            at_slot: slot,
            event: FleetEvent::FleetAdmit { slice },
        });
        self
    }

    /// Validates the whole fleet scenario, returning the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("fleet scenario name must not be empty".to_string());
        }
        if self.min_cells == 0 {
            return Err("min_cells must be at least 1".to_string());
        }
        // Fleet-routed admissions can land on any cell, so every cell's
        // assignable-id bound grows by the full fleet-admission count.
        let fleet_admission_slack = self
            .events
            .iter()
            .filter(|t| matches!(t.event, FleetEvent::FleetAdmit { .. }))
            .count();
        self.base
            .validate_with_admission_slack(fleet_admission_slack)
            .map_err(|e| format!("base: {e}"))?;
        for (i, t) in self.events.iter().enumerate() {
            if t.at_slot >= self.base.total_slots {
                return Err(format!(
                    "fleet event {i} fires at slot {} but the scenario ends at slot {}",
                    t.at_slot, self.base.total_slots
                ));
            }
            match &t.event {
                FleetEvent::CellEvent { cell, event } => {
                    if *cell as usize >= self.min_cells {
                        return Err(format!(
                            "fleet event {i} targets cell {cell} but min_cells is {}",
                            self.min_cells
                        ));
                    }
                    event
                        .validate()
                        .map_err(|e| format!("fleet event {i}: {e}"))?;
                }
                FleetEvent::FleetAdmit { slice } => {
                    slice
                        .validate()
                        .map_err(|e| format!("fleet event {i}: {e}"))?;
                }
            }
        }
        // The per-event checks above see each cell event in isolation; the
        // materialized per-cell scenarios additionally catch cross-event
        // holes — impossible slice-id references and duplicate same-slot
        // teardowns arising from the base/cell-event splice.
        for cell in 0..self.min_cells {
            self.scenario_for_cell(cell as u32)
                .validate_with_admission_slack(fleet_admission_slack)
                .map_err(|e| format!("cell {cell}: {e}"))?;
        }
        Ok(())
    }

    /// Materializes cell `cell`'s own scenario: the base deployment with
    /// this cell's targeted events spliced into the timeline (in fleet
    /// timeline order, after the base's own events — the engine's stable
    /// sort preserves that order for same-slot events).
    pub fn scenario_for_cell(&self, cell: u32) -> Scenario {
        let mut scenario = self.base.clone();
        for t in &self.events {
            if let FleetEvent::CellEvent { cell: c, event } = &t.event {
                if *c == cell {
                    scenario = scenario.at(t.at_slot, event.clone());
                }
            }
        }
        scenario
    }

    /// The fleet-routed admissions, as `(at_slot, spec)` in timeline order.
    pub fn fleet_admissions(&self) -> Vec<(usize, SliceSpec)> {
        let mut admissions: Vec<(usize, SliceSpec)> = self
            .events
            .iter()
            .filter_map(|t| match &t.event {
                FleetEvent::FleetAdmit { slice } => Some((t.at_slot, *slice)),
                FleetEvent::CellEvent { .. } => None,
            })
            .collect();
        admissions.sort_by_key(|(slot, _)| *slot);
        admissions
    }

    /// Serializes the fleet scenario to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet scenario serialization cannot fail")
    }

    /// Parses and validates a fleet scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let scenario: FleetScenario = serde_json::from_str(text).map_err(|e| e.to_string())?;
        scenario.validate()?;
        Ok(scenario)
    }
}

fn elastic_base(name: &str, capacity: f64) -> Scenario {
    let mut base = Scenario::new(name, 12, 48).with_capacity(capacity);
    for i in 0..4 {
        base = base.slice(SliceSpec::new(SliceKind::ALL[i % 3]));
    }
    base
}

/// A load hotspot concentrated on cell 0: three extra tenants land there
/// at slot 10 (seven slices on capacity sized for four to be comfortable —
/// the squeeze regime where violations are capacity-driven, so migration
/// can actually fix them) and from slot 12 the original four slices run at
/// 1.3× their trace rates. Two fleet-routed admissions arrive mid-surge;
/// the fleet admission controller places them away from the hotspot. With
/// the balancer enabled, slices drain from cell 0 to the idle neighbors
/// and the fleet-wide SLA-violation rate drops strictly below the
/// frozen-sharding run (asserted in `crates/fleet`'s tests).
pub fn hotspot_shift() -> FleetScenario {
    let mut fleet = FleetScenario::new(elastic_base("hotspot-shift", 1.8), 2).describe(
        "Three extra tenants plus a 1.3x traffic shift concentrate on cell 0; the balancer \
         drains the hotspot, fleet admissions route around it",
    );
    for k in 0..3 {
        fleet = fleet.at_cell(
            10,
            0,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::ALL[k % 3]),
            },
        );
    }
    for slice in 0..4 {
        fleet = fleet.at_cell(12, 0, ScenarioEvent::SetTrafficScale { slice, scale: 1.3 });
    }
    fleet
        .fleet_admit(18, SliceSpec::new(SliceKind::Mar))
        .fleet_admit(18, SliceSpec::new(SliceKind::Hvs))
}

/// A capacity outage on cell 0: its transport domain drops to 40 % of
/// nominal capacity for two episodes. The per-cell coordination loop
/// squeezes every cell-0 slice into the shrunken capacity; the balancer's
/// job is to evacuate slices to healthy cells instead (and to rebalance
/// back once the fault heals).
pub fn cell_outage() -> FleetScenario {
    FleetScenario::new(elastic_base("cell-outage", 2.0), 2)
        .describe(
            "Cell 0's transport capacity drops to 40% for two episodes; balancer evacuates \
             slices to healthy cells",
        )
        .at_cell(
            12,
            0,
            ScenarioEvent::DomainFault {
                domain: DomainKind::Transport,
                capacity_scale: 0.4,
                duration_slots: 24,
            },
        )
        .fleet_admit(24, SliceSpec::new(SliceKind::Rdc))
}

/// A diurnal regime shift concentrated on cell 0: early in the run its four
/// slices are re-profiled to the evening-peaked HVS tenant mix (effective
/// from the second episode), and just after the first rebalancing window
/// their traffic scale jumps to 1.7× — a surge every slice's deterministic
/// arrival trace announces a full window before violations accumulate. A
/// fleet-routed admission shortly after the shift opens a mid-window sync
/// point where a forecast-driven balancer can migrate *ahead* of the peak,
/// while a purely reactive one still sees yesterday's load.
pub fn diurnal_fleet() -> FleetScenario {
    // An early-morning-peaked tenant mix: the diurnal peak lands on the
    // first slots of every episode — right *after* each rebalancing round,
    // where a reactive balancer is blind (utilization still shows the
    // pre-dawn lull and the window's violations have not closed yet), while
    // the deterministic trace forecast sees the peak coming.
    let morning_peak = DiurnalTraceConfig {
        peak_rate: 5.0,
        base_fraction: 0.1,
        second_harmonic: 0.0,
        peak_hour: 4.0,
        noise_std: 0.12,
        weekend_dip: 0.0,
    };
    let mut fleet = FleetScenario::new(elastic_base("diurnal-fleet", 1.8), 2).describe(
        "Cell 0's tenants shift to a morning-peaked profile and three extra tenants land there \
         during the night lull; the next peak is visible only in the trace forecast, so a \
         forecast-driven balancer evacuates ahead of it while a reactive one waits for the \
         violations",
    );
    for slice in 0..4 {
        fleet = fleet.at_cell(
            2,
            0,
            ScenarioEvent::SetTraceProfile {
                slice,
                profile: morning_peak.clone(),
            },
        );
    }
    // Three extra tenants land on cell 0 during the pre-dawn lull (slot 10,
    // just before the rebalancing round at slot 12): enforced shares — and
    // with them a reactive balancer's utilization signal — stay low until
    // the morning peak actually hits at slots 12-16.
    for k in 0..3 {
        fleet = fleet.at_cell(
            10,
            0,
            ScenarioEvent::AdmitSlice {
                slice: SliceSpec::new(SliceKind::ALL[k % 3]),
            },
        );
    }
    for slice in 0..4 {
        fleet = fleet.at_cell(11, 0, ScenarioEvent::SetTrafficScale { slice, scale: 1.6 });
    }
    fleet.fleet_admit(40, SliceSpec::new(SliceKind::Mar))
}

/// Every built-in fleet scenario, in [`FLEET_BUILTIN_NAMES`] order.
pub fn all_fleet_builtins() -> Vec<FleetScenario> {
    vec![hotspot_shift(), cell_outage(), diurnal_fleet()]
}

/// Looks a built-in fleet scenario up by name.
pub fn fleet_by_name(name: &str) -> Option<FleetScenario> {
    all_fleet_builtins().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_catalogue_is_complete_valid_and_named_consistently() {
        let scenarios = all_fleet_builtins();
        assert_eq!(scenarios.len(), FLEET_BUILTIN_NAMES.len());
        for (scenario, name) in scenarios.iter().zip(FLEET_BUILTIN_NAMES) {
            assert_eq!(scenario.name, name);
            scenario.validate().unwrap();
            assert!(!scenario.description.is_empty());
            assert!(scenario.min_cells >= 2, "fleet built-ins need neighbors");
        }
        assert!(fleet_by_name("hotspot-shift").is_some());
        assert!(fleet_by_name("steady").is_none());
    }

    #[test]
    fn fleet_builtins_round_trip_through_json() {
        for scenario in all_fleet_builtins() {
            let back = FleetScenario::from_json(&scenario.to_json()).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn cell_targeted_events_splice_only_into_their_cell() {
        let fleet = hotspot_shift();
        let hot = fleet.scenario_for_cell(0);
        let cold = fleet.scenario_for_cell(1);
        assert_eq!(
            hot.events.len(),
            fleet.base.events.len() + 7,
            "cell 0 gains the three admissions and four traffic shifts"
        );
        assert_eq!(cold.events, fleet.base.events);
        hot.validate().unwrap();
        cold.validate().unwrap();
        // Fleet-routed admissions are not spliced anywhere: they are the
        // fleet layer's to place at run time.
        assert_eq!(fleet.fleet_admissions().len(), 2);
        assert!(fleet.fleet_admissions().iter().all(|(slot, _)| *slot == 18));
    }

    #[test]
    fn fleet_validation_accounts_for_fleet_admissions_in_the_id_bound() {
        let base = elastic_base("x", 2.0); // four initial slices, ids 0..4
                                           // Referencing id 4 on a cell is impossible without extra admissions…
        let dangling = FleetScenario::new(base.clone(), 2).at_cell(
            8,
            0,
            ScenarioEvent::SetTrafficScale {
                slice: 4,
                scale: 1.5,
            },
        );
        let err = dangling.validate().unwrap_err();
        assert!(err.contains("references slice 4"), "got: {err}");
        // …but one fleet-routed admission could land there and assign id 4.
        dangling
            .clone()
            .fleet_admit(4, SliceSpec::new(SliceKind::Mar))
            .validate()
            .unwrap();
    }

    #[test]
    fn fleet_validation_catches_duplicate_teardowns_across_the_splice() {
        // The duplicate only exists on the materialized cell-0 timeline:
        // one teardown in the base, the other spliced in as a cell event.
        let base = elastic_base("x", 2.0).at(8, ScenarioEvent::TeardownSlice { slice: 1 });
        let dup =
            FleetScenario::new(base, 2).at_cell(8, 0, ScenarioEvent::TeardownSlice { slice: 1 });
        let err = dup.validate().unwrap_err();
        assert!(err.contains("cell 0"), "got: {err}");
        assert!(err.contains("twice"), "got: {err}");
    }

    #[test]
    fn validation_rejects_out_of_range_targets_and_slots() {
        let base = elastic_base("x", 2.0);
        let late =
            FleetScenario::new(base.clone(), 2).fleet_admit(48, SliceSpec::new(SliceKind::Mar));
        assert!(late.validate().unwrap_err().contains("slot 48"));
        let wide = FleetScenario::new(base.clone(), 2).at_cell(
            4,
            5,
            ScenarioEvent::TeardownSlice { slice: 0 },
        );
        assert!(wide.validate().unwrap_err().contains("targets cell 5"));
        let no_cells = FleetScenario::new(base, 0);
        assert!(no_cells.validate().unwrap_err().contains("min_cells"));
    }
}
