//! The admission controller: decides whether the infrastructure can host
//! one more slice before an agent and environment are instantiated.
//!
//! The check is against *residual per-domain capacity*: for every shared
//! resource, the effective (possibly fault-degraded) capacity minus the
//! allocations the domain managers currently enforce must leave room for the
//! newcomer's estimated steady-state share plus a configurable headroom.
//!
//! **Policy registry.** The decision rule itself is pluggable: an
//! [`AdmissionPolicy`] is a named, deterministic strategy registered in
//! [`ADMISSION_POLICIES`] and selected by name through
//! [`AdmissionConfig::policy`]. The historical residual-capacity rule is the
//! `greedy` policy and stays the default; unknown names are configuration
//! errors that list the known set. Every policy must be a pure function of
//! `(config, domains, reserved)` so admission decisions — and therefore
//! traces — stay byte-identical across thread counts and checkpoint/resume.

use serde::{DeError, Deserialize, Serialize, Value};

use onslicing_domains::DomainSet;
use onslicing_slices::ResourceKind;

/// A named admission strategy: given the tuning, the live domain state and
/// the capacity already pledged this slot, decide whether one more slice
/// fits. Implementations must be pure functions of their arguments —
/// no interior state, clocks or randomness — so the decision is part of the
/// deterministic trace contract.
pub trait AdmissionPolicy: Sync {
    /// The registry name (`config.toml` / scenario key).
    fn name(&self) -> &'static str;
    /// One-line, human-readable summary for catalogues and status verbs.
    fn description(&self) -> &'static str;
    /// The decision itself; see [`AdmissionController::evaluate_with_reserved`].
    fn evaluate(
        &self,
        config: &AdmissionConfig,
        domains: &DomainSet,
        reserved: f64,
    ) -> Result<(), AdmissionDenied>;
}

/// The historical residual-capacity rule: admit whenever every resource's
/// residual covers the newcomer's estimated share plus headroom plus the
/// same-slot reservations. This is the repo's original hard-coded check,
/// unchanged, so selecting `greedy` through the registry is byte-identical
/// to the pre-registry behaviour.
struct GreedyAdmission;

impl AdmissionPolicy for GreedyAdmission {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn description(&self) -> &'static str {
        "admit while residual capacity covers share + headroom (original rule)"
    }

    fn evaluate(
        &self,
        config: &AdmissionConfig,
        domains: &DomainSet,
        reserved: f64,
    ) -> Result<(), AdmissionDenied> {
        for resource in ResourceKind::ALL {
            let residual = domains.residual_capacity(resource);
            let required =
                config.estimated_share + config.headroom * domains.capacity_of(resource) + reserved;
            if residual < required {
                return Err(AdmissionDenied {
                    resource,
                    residual,
                    required,
                });
            }
        }
        Ok(())
    }
}

/// Like `greedy`, but keeps one extra newcomer's estimated share free on
/// every resource: the fleet can always absorb the *next* admission (or a
/// migrated-in slice) without rejecting it at the brim. Trades peak packing
/// density for slack under churn.
struct CautiousAdmission;

impl AdmissionPolicy for CautiousAdmission {
    fn name(&self) -> &'static str {
        "cautious"
    }

    fn description(&self) -> &'static str {
        "greedy plus one extra estimated share of slack kept free per resource"
    }

    fn evaluate(
        &self,
        config: &AdmissionConfig,
        domains: &DomainSet,
        reserved: f64,
    ) -> Result<(), AdmissionDenied> {
        for resource in ResourceKind::ALL {
            let residual = domains.residual_capacity(resource);
            let required = 2.0 * config.estimated_share
                + config.headroom * domains.capacity_of(resource)
                + reserved;
            if residual < required {
                return Err(AdmissionDenied {
                    resource,
                    residual,
                    required,
                });
            }
        }
        Ok(())
    }
}

/// Every registered admission policy, in catalogue order. `greedy` first —
/// it is the default and the backwards-compatibility anchor.
pub static ADMISSION_POLICIES: [&'static dyn AdmissionPolicy; 2] =
    [&GreedyAdmission, &CautiousAdmission];

/// The registered admission-policy names, in catalogue order.
pub fn admission_policy_names() -> Vec<&'static str> {
    ADMISSION_POLICIES.iter().map(|p| p.name()).collect()
}

/// Looks up a registered admission policy; unknown names are errors that
/// name the known set (the startup-error contract for config files).
pub fn admission_policy_by_name(name: &str) -> Result<&'static dyn AdmissionPolicy, String> {
    ADMISSION_POLICIES
        .iter()
        .copied()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown admission policy `{name}` (registered: {})",
                admission_policy_names().join(", ")
            )
        })
}

/// An interned, copyable handle to a registered admission policy. Only
/// constructible through the registry, so a held name is always resolvable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicyName(&'static str);

impl AdmissionPolicyName {
    /// The default policy — the historical residual-capacity rule.
    pub const GREEDY: Self = Self("greedy");
    /// The slack-keeping variant.
    pub const CAUTIOUS: Self = Self("cautious");

    /// Interns a user-supplied name through the registry.
    pub fn parse(name: &str) -> Result<Self, String> {
        admission_policy_by_name(name).map(|p| Self(p.name()))
    }

    /// The registry name.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// The policy this name resolves to.
    pub fn policy(&self) -> &'static dyn AdmissionPolicy {
        admission_policy_by_name(self.0).expect("interned admission policy name is registered")
    }
}

impl Default for AdmissionPolicyName {
    fn default() -> Self {
        Self::GREEDY
    }
}

impl std::fmt::Display for AdmissionPolicyName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

// Serialized as the bare registry name; deserialization re-interns through
// the registry so unknown names fail with the known set listed.
impl Serialize for AdmissionPolicyName {
    fn serialize_value(&self) -> Value {
        Value::Str(self.0.to_string())
    }
}

impl Deserialize for AdmissionPolicyName {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::msg("expected a string for an admission policy name"))?;
        Self::parse(s).map_err(DeError)
    }
}

/// Tuning of the admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Estimated steady-state share of each resource a new slice needs.
    pub estimated_share: f64,
    /// Fraction of each resource's effective capacity kept free on top of
    /// the estimate (0.0 = admit up to the brim).
    pub headroom: f64,
    /// The registered decision rule to apply (default `greedy`).
    pub policy: AdmissionPolicyName,
}

// Hand-written instead of derived so that the `policy` field is optional on
// input (older scenario files and checkpoints predate it) and defaults to
// `greedy`, the historical behaviour.
impl Serialize for AdmissionConfig {
    fn serialize_value(&self) -> Value {
        Value::Obj(vec![
            (
                "estimated_share".to_string(),
                self.estimated_share.serialize_value(),
            ),
            ("headroom".to_string(), self.headroom.serialize_value()),
            ("policy".to_string(), self.policy.serialize_value()),
        ])
    }
}

impl Deserialize for AdmissionConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| DeError::msg(format!("AdmissionConfig: missing field `{name}`")))
        };
        let estimated_share = f64::from_value(field("estimated_share")?)?;
        let headroom = f64::from_value(field("headroom")?)?;
        let policy = match v.get("policy") {
            Some(p) => AdmissionPolicyName::from_value(p)?,
            None => AdmissionPolicyName::GREEDY,
        };
        Ok(Self {
            estimated_share,
            headroom,
            policy,
        })
    }
}

impl AdmissionConfig {
    /// Validates the tuning, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.estimated_share > 0.0 && self.estimated_share.is_finite()) {
            return Err(format!(
                "estimated share must be positive and finite, got {}",
                self.estimated_share
            ));
        }
        if !(0.0..1.0).contains(&self.headroom) {
            return Err(format!("headroom must be in [0, 1), got {}", self.headroom));
        }
        Ok(())
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            estimated_share: 0.15,
            headroom: 0.0,
            policy: AdmissionPolicyName::GREEDY,
        }
    }
}

/// Why an admission request was denied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDenied {
    /// The first resource that could not host the newcomer.
    pub resource: ResourceKind,
    /// Residual capacity of that resource at decision time.
    pub residual: f64,
    /// What the newcomer would have needed (estimate + headroom).
    pub required: f64,
}

impl std::fmt::Display for AdmissionDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission denied: {} residual {:.3} < required {:.3}",
            self.resource.name(),
            self.residual,
            self.required
        )
    }
}

/// The admission controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    /// Creates a controller, rejecting invalid tuning — the fallible
    /// constructor `Result`-returning callers (the scenario engine) use.
    pub fn try_new(config: AdmissionConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Creates a controller.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`AdmissionConfig::validate`]); use [`AdmissionController::try_new`]
    /// to handle user-supplied tuning gracefully.
    pub fn new(config: AdmissionConfig) -> Self {
        match Self::try_new(config) {
            Ok(controller) => controller,
            Err(e) => panic!("invalid admission config: {e}"),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Checks whether one more slice fits the current infrastructure.
    ///
    /// Equivalent to [`AdmissionController::evaluate_with_reserved`] with a
    /// zero reservation — correct only when nothing else was admitted since
    /// the domain managers last enforced allocations. Callers granting
    /// several admissions in one slot must carry the earlier grants'
    /// estimated shares as a reservation, or the same residual capacity is
    /// pledged multiple times.
    pub fn evaluate(&self, domains: &DomainSet) -> Result<(), AdmissionDenied> {
        self.evaluate_with_reserved(domains, 0.0)
    }

    /// Checks whether one more slice fits on top of `reserved` capacity
    /// already pledged but not yet visible in the enforced allocations —
    /// typically `k × estimated_share` for `k` slices granted earlier in
    /// the same slot, whose agents only enforce from the next orchestration
    /// round on.
    pub fn evaluate_with_reserved(
        &self,
        domains: &DomainSet,
        reserved: f64,
    ) -> Result<(), AdmissionDenied> {
        self.config
            .policy
            .policy()
            .evaluate(&self.config, domains, reserved)
    }

    /// The capacity one admitted-but-not-yet-enforced slice is assumed to
    /// pledge — what same-slot callers reserve per earlier grant.
    pub fn reserved_share_per_admission(&self) -> f64 {
        self.config.estimated_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_domains::{DomainKind, SliceId};
    use onslicing_slices::Action;

    #[test]
    fn admits_while_residual_capacity_lasts() {
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.3,
            headroom: 0.0,
            ..Default::default()
        });
        let mut domains = DomainSet::testbed_default();
        assert!(controller.evaluate(&domains).is_ok());
        for i in 0..3 {
            domains.create_slice(SliceId(i)).unwrap();
            domains.enforce(SliceId(i), Action::uniform(0.25)).unwrap();
        }
        // 0.75 enforced, 0.25 residual < 0.3 required.
        let denied = controller.evaluate(&domains).unwrap_err();
        assert!(denied.residual < denied.required);
        // Tearing a slice down frees its share again.
        domains.delete_slice(SliceId(0)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
    }

    #[test]
    fn zero_residual_capacity_denies_even_the_smallest_newcomer() {
        // One slice enforces the entire infrastructure: residual is exactly
        // zero, so any positive estimated share must be denied — the
        // controller must not admit "for free" on the ==0 boundary.
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 1e-9,
            headroom: 0.0,
            ..Default::default()
        });
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(0)).unwrap();
        domains.enforce(SliceId(0), Action::uniform(1.0)).unwrap();
        let denied = controller.evaluate(&domains).unwrap_err();
        assert!(denied.residual <= 0.0 + 1e-12);
        assert!(denied.required > 0.0);
        // Releasing the hog restores admissibility.
        domains.delete_slice(SliceId(0)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
    }

    #[test]
    fn torn_down_slice_ids_can_be_recreated_at_the_domain_layer() {
        // The orchestrator never reuses ids, but the domain managers must
        // not be the reason why: delete followed by create of the same
        // SliceId is a clean slate, with no stale allocation attached.
        let controller = AdmissionController::new(AdmissionConfig::default());
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(3)).unwrap();
        domains.enforce(SliceId(3), Action::uniform(0.9)).unwrap();
        domains.delete_slice(SliceId(3)).unwrap();
        domains.create_slice(SliceId(3)).unwrap();
        // The re-created slice starts with nothing enforced, so the
        // controller sees the full capacity again.
        assert!(controller.evaluate(&domains).is_ok());
        // Double-create of a live id stays an error.
        assert!(domains.create_slice(SliceId(3)).is_err());
    }

    #[test]
    fn faults_shrink_the_admittable_capacity() {
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
            ..Default::default()
        });
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(0)).unwrap();
        domains.enforce(SliceId(0), Action::uniform(0.3)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
        domains.set_domain_capacity_scale(DomainKind::Transport, 0.5);
        let denied = controller.evaluate(&domains).unwrap_err();
        assert_eq!(denied.resource, ResourceKind::TransportBandwidth);
    }

    #[test]
    fn headroom_reserves_extra_capacity() {
        let tight = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.5,
            headroom: 0.0,
            ..Default::default()
        });
        let cautious = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.5,
            headroom: 0.6,
            ..Default::default()
        });
        let domains = DomainSet::testbed_default();
        assert!(tight.evaluate(&domains).is_ok());
        assert!(cautious.evaluate(&domains).is_err());
    }

    #[test]
    #[should_panic(expected = "headroom must be in [0, 1)")]
    fn invalid_headroom_is_rejected() {
        let _ = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.1,
            headroom: 1.0,
            ..Default::default()
        });
    }

    #[test]
    fn same_slot_reservations_tighten_the_check() {
        // Residual 1.0, estimated share 0.4: two newcomers fit, a third —
        // with the first two's shares reserved — must not. Without the
        // reservation every one of them would see the full residual.
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
            ..Default::default()
        });
        let domains = DomainSet::testbed_default();
        assert!(controller.evaluate_with_reserved(&domains, 0.0).is_ok());
        assert!(controller.evaluate_with_reserved(&domains, 0.4).is_ok());
        let denied = controller
            .evaluate_with_reserved(&domains, 0.8)
            .unwrap_err();
        assert!((denied.required - 1.2).abs() < 1e-12);
        assert_eq!(
            controller.reserved_share_per_admission(),
            controller.config().estimated_share
        );
    }

    #[test]
    fn unknown_admission_policy_is_a_startup_error_naming_the_registered_set() {
        let err = admission_policy_by_name("permissive")
            .map(|p| p.name())
            .unwrap_err();
        assert!(
            err.contains("unknown admission policy `permissive`"),
            "{err}"
        );
        for name in admission_policy_names() {
            assert!(err.contains(name), "error must name `{name}`: {err}");
        }
        assert!(AdmissionPolicyName::parse("permissive").is_err());
    }

    #[test]
    fn every_registered_admission_policy_resolves_by_name() {
        for policy in ADMISSION_POLICIES {
            let resolved = admission_policy_by_name(policy.name()).unwrap();
            assert_eq!(resolved.name(), policy.name());
            assert!(!policy.description().is_empty());
        }
    }

    #[test]
    fn cautious_policy_denies_where_greedy_admits() {
        // Residual 1.0. Greedy needs 0.4; cautious doubles the estimate to
        // 0.8 + the same headroom — a newcomer that greedy admits with a
        // 0.3 reservation outstanding is denied by cautious.
        let greedy = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
            policy: AdmissionPolicyName::GREEDY,
        });
        let cautious = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
            policy: AdmissionPolicyName::CAUTIOUS,
        });
        let domains = DomainSet::testbed_default();
        assert!(greedy.evaluate_with_reserved(&domains, 0.3).is_ok());
        let denied = cautious.evaluate_with_reserved(&domains, 0.3).unwrap_err();
        assert!((denied.required - 1.1).abs() < 1e-12);
        // With nothing reserved the testbed still has room for 2x 0.4.
        assert!(cautious.evaluate_with_reserved(&domains, 0.0).is_ok());
    }

    #[test]
    fn admission_config_policy_field_round_trips_and_defaults_to_greedy() {
        // A config serialized before the registry existed has no `policy`
        // key; deserialization must default it to greedy.
        let mut legacy = AdmissionConfig::default().serialize_value();
        if let Value::Obj(pairs) = &mut legacy {
            pairs.retain(|(k, _)| k != "policy");
        }
        let config = AdmissionConfig::from_value(&legacy).unwrap();
        assert_eq!(config.policy, AdmissionPolicyName::GREEDY);
        // An explicit cautious selection round-trips...
        let cautious = AdmissionConfig {
            policy: AdmissionPolicyName::CAUTIOUS,
            ..Default::default()
        };
        let back = AdmissionConfig::from_value(&cautious.serialize_value()).unwrap();
        assert_eq!(back.policy, AdmissionPolicyName::CAUTIOUS);
        // ...and a misspelled one fails to parse.
        let mut bad = AdmissionConfig::default().serialize_value();
        if let Value::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "policy" {
                    *v = Value::Str("permissive".to_string());
                }
            }
        }
        let err = AdmissionConfig::from_value(&bad).unwrap_err();
        assert!(err.0.contains("unknown admission policy"), "{}", err.0);
    }

    #[test]
    fn try_new_reports_invalid_tuning_instead_of_panicking() {
        assert!(AdmissionController::try_new(AdmissionConfig {
            estimated_share: 0.0,
            headroom: 0.0,
            ..Default::default()
        })
        .unwrap_err()
        .contains("estimated share"));
        assert!(AdmissionController::try_new(AdmissionConfig {
            estimated_share: 0.1,
            headroom: 1.5,
            ..Default::default()
        })
        .unwrap_err()
        .contains("headroom"));
        assert!(AdmissionController::try_new(AdmissionConfig::default()).is_ok());
    }
}
