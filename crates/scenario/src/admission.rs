//! The admission controller: decides whether the infrastructure can host
//! one more slice before an agent and environment are instantiated.
//!
//! The check is against *residual per-domain capacity*: for every shared
//! resource, the effective (possibly fault-degraded) capacity minus the
//! allocations the domain managers currently enforce must leave room for the
//! newcomer's estimated steady-state share plus a configurable headroom.

use serde::{Deserialize, Serialize};

use onslicing_domains::DomainSet;
use onslicing_slices::ResourceKind;

/// Tuning of the admission check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Estimated steady-state share of each resource a new slice needs.
    pub estimated_share: f64,
    /// Fraction of each resource's effective capacity kept free on top of
    /// the estimate (0.0 = admit up to the brim).
    pub headroom: f64,
}

impl AdmissionConfig {
    /// Validates the tuning, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.estimated_share > 0.0 && self.estimated_share.is_finite()) {
            return Err(format!(
                "estimated share must be positive and finite, got {}",
                self.estimated_share
            ));
        }
        if !(0.0..1.0).contains(&self.headroom) {
            return Err(format!("headroom must be in [0, 1), got {}", self.headroom));
        }
        Ok(())
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            estimated_share: 0.15,
            headroom: 0.0,
        }
    }
}

/// Why an admission request was denied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDenied {
    /// The first resource that could not host the newcomer.
    pub resource: ResourceKind,
    /// Residual capacity of that resource at decision time.
    pub residual: f64,
    /// What the newcomer would have needed (estimate + headroom).
    pub required: f64,
}

impl std::fmt::Display for AdmissionDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission denied: {} residual {:.3} < required {:.3}",
            self.resource.name(),
            self.residual,
            self.required
        )
    }
}

/// The admission controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    /// Creates a controller, rejecting invalid tuning — the fallible
    /// constructor `Result`-returning callers (the scenario engine) use.
    pub fn try_new(config: AdmissionConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Creates a controller.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`AdmissionConfig::validate`]); use [`AdmissionController::try_new`]
    /// to handle user-supplied tuning gracefully.
    pub fn new(config: AdmissionConfig) -> Self {
        match Self::try_new(config) {
            Ok(controller) => controller,
            Err(e) => panic!("invalid admission config: {e}"),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Checks whether one more slice fits the current infrastructure.
    ///
    /// Equivalent to [`AdmissionController::evaluate_with_reserved`] with a
    /// zero reservation — correct only when nothing else was admitted since
    /// the domain managers last enforced allocations. Callers granting
    /// several admissions in one slot must carry the earlier grants'
    /// estimated shares as a reservation, or the same residual capacity is
    /// pledged multiple times.
    pub fn evaluate(&self, domains: &DomainSet) -> Result<(), AdmissionDenied> {
        self.evaluate_with_reserved(domains, 0.0)
    }

    /// Checks whether one more slice fits on top of `reserved` capacity
    /// already pledged but not yet visible in the enforced allocations —
    /// typically `k × estimated_share` for `k` slices granted earlier in
    /// the same slot, whose agents only enforce from the next orchestration
    /// round on.
    pub fn evaluate_with_reserved(
        &self,
        domains: &DomainSet,
        reserved: f64,
    ) -> Result<(), AdmissionDenied> {
        for resource in ResourceKind::ALL {
            let residual = domains.residual_capacity(resource);
            let required = self.config.estimated_share
                + self.config.headroom * domains.capacity_of(resource)
                + reserved;
            if residual < required {
                return Err(AdmissionDenied {
                    resource,
                    residual,
                    required,
                });
            }
        }
        Ok(())
    }

    /// The capacity one admitted-but-not-yet-enforced slice is assumed to
    /// pledge — what same-slot callers reserve per earlier grant.
    pub fn reserved_share_per_admission(&self) -> f64 {
        self.config.estimated_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onslicing_domains::{DomainKind, SliceId};
    use onslicing_slices::Action;

    #[test]
    fn admits_while_residual_capacity_lasts() {
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.3,
            headroom: 0.0,
        });
        let mut domains = DomainSet::testbed_default();
        assert!(controller.evaluate(&domains).is_ok());
        for i in 0..3 {
            domains.create_slice(SliceId(i)).unwrap();
            domains.enforce(SliceId(i), Action::uniform(0.25)).unwrap();
        }
        // 0.75 enforced, 0.25 residual < 0.3 required.
        let denied = controller.evaluate(&domains).unwrap_err();
        assert!(denied.residual < denied.required);
        // Tearing a slice down frees its share again.
        domains.delete_slice(SliceId(0)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
    }

    #[test]
    fn zero_residual_capacity_denies_even_the_smallest_newcomer() {
        // One slice enforces the entire infrastructure: residual is exactly
        // zero, so any positive estimated share must be denied — the
        // controller must not admit "for free" on the ==0 boundary.
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 1e-9,
            headroom: 0.0,
        });
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(0)).unwrap();
        domains.enforce(SliceId(0), Action::uniform(1.0)).unwrap();
        let denied = controller.evaluate(&domains).unwrap_err();
        assert!(denied.residual <= 0.0 + 1e-12);
        assert!(denied.required > 0.0);
        // Releasing the hog restores admissibility.
        domains.delete_slice(SliceId(0)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
    }

    #[test]
    fn torn_down_slice_ids_can_be_recreated_at_the_domain_layer() {
        // The orchestrator never reuses ids, but the domain managers must
        // not be the reason why: delete followed by create of the same
        // SliceId is a clean slate, with no stale allocation attached.
        let controller = AdmissionController::new(AdmissionConfig::default());
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(3)).unwrap();
        domains.enforce(SliceId(3), Action::uniform(0.9)).unwrap();
        domains.delete_slice(SliceId(3)).unwrap();
        domains.create_slice(SliceId(3)).unwrap();
        // The re-created slice starts with nothing enforced, so the
        // controller sees the full capacity again.
        assert!(controller.evaluate(&domains).is_ok());
        // Double-create of a live id stays an error.
        assert!(domains.create_slice(SliceId(3)).is_err());
    }

    #[test]
    fn faults_shrink_the_admittable_capacity() {
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
        });
        let mut domains = DomainSet::testbed_default();
        domains.create_slice(SliceId(0)).unwrap();
        domains.enforce(SliceId(0), Action::uniform(0.3)).unwrap();
        assert!(controller.evaluate(&domains).is_ok());
        domains.set_domain_capacity_scale(DomainKind::Transport, 0.5);
        let denied = controller.evaluate(&domains).unwrap_err();
        assert_eq!(denied.resource, ResourceKind::TransportBandwidth);
    }

    #[test]
    fn headroom_reserves_extra_capacity() {
        let tight = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.5,
            headroom: 0.0,
        });
        let cautious = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.5,
            headroom: 0.6,
        });
        let domains = DomainSet::testbed_default();
        assert!(tight.evaluate(&domains).is_ok());
        assert!(cautious.evaluate(&domains).is_err());
    }

    #[test]
    #[should_panic(expected = "headroom must be in [0, 1)")]
    fn invalid_headroom_is_rejected() {
        let _ = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.1,
            headroom: 1.0,
        });
    }

    #[test]
    fn same_slot_reservations_tighten_the_check() {
        // Residual 1.0, estimated share 0.4: two newcomers fit, a third —
        // with the first two's shares reserved — must not. Without the
        // reservation every one of them would see the full residual.
        let controller = AdmissionController::new(AdmissionConfig {
            estimated_share: 0.4,
            headroom: 0.0,
        });
        let domains = DomainSet::testbed_default();
        assert!(controller.evaluate_with_reserved(&domains, 0.0).is_ok());
        assert!(controller.evaluate_with_reserved(&domains, 0.4).is_ok());
        let denied = controller
            .evaluate_with_reserved(&domains, 0.8)
            .unwrap_err();
        assert!((denied.required - 1.2).abs() < 1e-12);
        assert_eq!(
            controller.reserved_share_per_admission(),
            controller.config().estimated_share
        );
    }

    #[test]
    fn try_new_reports_invalid_tuning_instead_of_panicking() {
        assert!(AdmissionController::try_new(AdmissionConfig {
            estimated_share: 0.0,
            headroom: 0.0,
        })
        .unwrap_err()
        .contains("estimated share"));
        assert!(AdmissionController::try_new(AdmissionConfig {
            estimated_share: 0.1,
            headroom: 1.5,
        })
        .unwrap_err()
        .contains("headroom"));
        assert!(AdmissionController::try_new(AdmissionConfig::default()).is_ok());
    }
}
