//! Scenario specifications: a named timeline of lifecycle, traffic, fault
//! and SLA events over a multi-slice deployment.
//!
//! A [`Scenario`] is plain serializable data — loadable from a JSON file,
//! constructible programmatically through the chainable helpers, and
//! runnable by [`crate::ScenarioEngine`]. Slices are referenced by their
//! stable [`onslicing_domains::SliceId`] number: the initial slices get ids
//! `0..n`, and every admission event is assigned the next id in event order
//! — a *denied* admission still consumes its id — so a scenario file can
//! name mid-run slices deterministically whatever the admission outcomes.

use serde::{Deserialize, Serialize};

use onslicing_domains::DomainKind;
use onslicing_slices::{Sla, SliceKind};
use onslicing_traffic::DiurnalTraceConfig;

/// Blueprint of one slice: the application class plus optional overrides of
/// the paper defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceSpec {
    /// The application class (`"mar"`, `"hvs"` or `"rdc"` in JSON).
    pub kind: SliceKind,
    /// Peak arrival rate in users/s; `null` selects the kind's paper default
    /// (5 for MAR, 2 for HVS, 100 for RDC).
    pub peak_rate: Option<f64>,
    /// SLA threshold `C_max`; `null` selects the paper's 5 %.
    pub cost_threshold: Option<f64>,
}

impl SliceSpec {
    /// A slice of the given kind with the paper defaults.
    pub fn new(kind: SliceKind) -> Self {
        Self {
            kind,
            peak_rate: None,
            cost_threshold: None,
        }
    }

    /// Overrides the peak arrival rate.
    pub fn with_peak_rate(mut self, peak_rate: f64) -> Self {
        self.peak_rate = Some(peak_rate);
        self
    }

    /// Overrides the SLA cost threshold.
    pub fn with_cost_threshold(mut self, cost_threshold: f64) -> Self {
        self.cost_threshold = Some(cost_threshold);
        self
    }

    /// The SLA this spec resolves to.
    pub fn sla(&self) -> Sla {
        let sla = Sla::for_kind(self.kind);
        match self.cost_threshold {
            Some(c) => sla.with_cost_threshold(c),
            None => sla,
        }
    }

    /// The diurnal traffic profile this spec resolves to.
    pub fn trace_config(&self) -> DiurnalTraceConfig {
        let config = match self.kind {
            SliceKind::Mar => DiurnalTraceConfig::mar_default(),
            SliceKind::Hvs => DiurnalTraceConfig::hvs_default(),
            SliceKind::Rdc => DiurnalTraceConfig::rdc_default(),
        };
        match self.peak_rate {
            Some(p) => config.with_peak_rate(p),
            None => config,
        }
    }

    /// Validates the overrides.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(p) = self.peak_rate {
            if !(p > 0.0 && p.is_finite()) {
                return Err(format!("peak_rate must be positive and finite, got {p}"));
            }
        }
        if let Some(c) = self.cost_threshold {
            if !(0.0..=1.0).contains(&c) {
                return Err(format!("cost_threshold must be in [0, 1], got {c}"));
            }
        }
        Ok(())
    }
}

/// One scripted occurrence in a scenario timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Admit a new slice (subject to the admission controller); it receives
    /// the next free slice id.
    AdmitSlice {
        /// Blueprint of the admitted slice.
        slice: SliceSpec,
    },
    /// Tear an active slice down; its resources are released immediately.
    TeardownSlice {
        /// Stable id of the slice to remove.
        slice: u32,
    },
    /// Shift a slice's traffic regime: all future arrival rates are the
    /// trace rates times `scale`, until changed again.
    SetTrafficScale {
        /// Stable id of the affected slice.
        slice: u32,
        /// Multiplier on the trace's arrival rates.
        scale: f64,
    },
    /// Replace a slice's diurnal traffic profile (a long-horizon regime
    /// change, e.g. a new tenant mix or a different peak). The remaining
    /// slots of the current episode keep the old trace; the next episode
    /// generates from the new profile.
    SetTraceProfile {
        /// Stable id of the affected slice.
        slice: u32,
        /// The new diurnal profile.
        profile: DiurnalTraceConfig,
    },
    /// A transient traffic burst (flash crowd): `scale` applies for
    /// `duration_slots` slots, then the previous regime is restored.
    TrafficBurst {
        /// Stable id of the affected slice.
        slice: u32,
        /// Multiplier during the burst.
        scale: f64,
        /// Burst length in slots.
        duration_slots: usize,
    },
    /// A transient infrastructure fault: every resource owned by `domain`
    /// runs at `capacity_scale` of its nominal capacity for
    /// `duration_slots` slots, then heals.
    DomainFault {
        /// The degraded domain.
        domain: DomainKind,
        /// Multiplier on the domain's nominal capacity (< 1 = degradation).
        capacity_scale: f64,
        /// Fault length in slots.
        duration_slots: usize,
    },
    /// Renegotiate a slice's SLA to a new cost threshold `C_max`.
    RenegotiateSla {
        /// Stable id of the affected slice.
        slice: u32,
        /// The new SLA threshold.
        cost_threshold: f64,
    },
}

impl ScenarioEvent {
    /// The slice id this event references, if any. Admissions reference no
    /// existing slice (they *assign* the next free id); faults target a
    /// domain, not a slice.
    pub fn referenced_slice(&self) -> Option<u32> {
        match self {
            ScenarioEvent::AdmitSlice { .. } | ScenarioEvent::DomainFault { .. } => None,
            ScenarioEvent::TeardownSlice { slice }
            | ScenarioEvent::SetTrafficScale { slice, .. }
            | ScenarioEvent::SetTraceProfile { slice, .. }
            | ScenarioEvent::TrafficBurst { slice, .. }
            | ScenarioEvent::RenegotiateSla { slice, .. } => Some(*slice),
        }
    }

    /// Validates the event payload (slice ids are resolved at run time).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ScenarioEvent::AdmitSlice { slice } => slice.validate(),
            ScenarioEvent::TeardownSlice { .. } => Ok(()),
            ScenarioEvent::SetTrafficScale { scale, .. } => {
                if *scale > 0.0 && scale.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "traffic scale must be positive and finite, got {scale}"
                    ))
                }
            }
            ScenarioEvent::SetTraceProfile { profile, .. } => profile.validate(),
            ScenarioEvent::TrafficBurst {
                scale,
                duration_slots,
                ..
            } => {
                if !(*scale > 0.0 && scale.is_finite()) {
                    return Err(format!(
                        "burst scale must be positive and finite, got {scale}"
                    ));
                }
                if *duration_slots == 0 {
                    return Err("burst duration must be at least one slot".to_string());
                }
                Ok(())
            }
            ScenarioEvent::DomainFault {
                capacity_scale,
                duration_slots,
                ..
            } => {
                if !(*capacity_scale > 0.0 && capacity_scale.is_finite()) {
                    return Err(format!(
                        "fault capacity scale must be positive and finite, got {capacity_scale}"
                    ));
                }
                if *duration_slots == 0 {
                    return Err("fault duration must be at least one slot".to_string());
                }
                Ok(())
            }
            ScenarioEvent::RenegotiateSla { cost_threshold, .. } => {
                if (0.0..=1.0).contains(cost_threshold) {
                    Ok(())
                } else {
                    Err(format!(
                        "renegotiated cost_threshold must be in [0, 1], got {cost_threshold}"
                    ))
                }
            }
        }
    }
}

/// An event bound to the slot it fires at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// The slot (0-based, global scenario time) the event fires at, before
    /// the slot's orchestration round.
    pub at_slot: usize,
    /// What happens.
    pub event: ScenarioEvent,
}

/// A complete scenario: initial deployment plus a timeline of events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports and file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Episode length in slots: each slice learns/reset on this cadence.
    pub horizon: usize,
    /// Total scenario length in slots (global time).
    pub total_slots: usize,
    /// Normalized per-resource infrastructure capacity (1.0 = the paper's
    /// testbed; raise it for deployments with many slices).
    pub capacity: f64,
    /// The slices alive at slot 0 (ids `0..n` in order).
    pub initial_slices: Vec<SliceSpec>,
    /// The scripted timeline. The engine sorts it by `at_slot` with a
    /// **stable** sort before running, so events scheduled at the same slot
    /// fire in exactly the order they appear here (file order for JSON
    /// scenarios, call order for the builder) — equal-slot ordering is part
    /// of the format contract, not an implementation accident.
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// Starts a scenario with the given name and timing, no slices and no
    /// events.
    pub fn new(name: impl Into<String>, horizon: usize, total_slots: usize) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            horizon,
            total_slots,
            capacity: 1.0,
            initial_slices: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Sets the human description.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the infrastructure capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Adds an initial slice.
    pub fn slice(mut self, spec: SliceSpec) -> Self {
        self.initial_slices.push(spec);
        self
    }

    /// Schedules an event.
    pub fn at(mut self, slot: usize, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent {
            at_slot: slot,
            event,
        });
        self
    }

    /// Upper bound (exclusive) on the slice ids this scenario can ever
    /// assign: initial slices take `0..n` and every admission event consumes
    /// the next id in event order, whether the admission is granted or
    /// denied.
    pub fn max_assignable_slice_ids(&self) -> usize {
        self.initial_slices.len()
            + self
                .events
                .iter()
                .filter(|t| matches!(t.event, ScenarioEvent::AdmitSlice { .. }))
                .count()
    }

    /// Validates the whole scenario, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_with_admission_slack(0)
    }

    /// [`Scenario::validate`] for a scenario that may gain up to
    /// `admission_slack` additional admissions at run time beyond its own
    /// timeline — the fleet runner routes `FleetAdmit` events onto cells, so
    /// a cell's materialized scenario can legitimately reference slice ids
    /// past its static bound. Single-cell callers want a slack of 0.
    pub fn validate_with_admission_slack(&self, admission_slack: usize) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".to_string());
        }
        if self.horizon == 0 {
            return Err("horizon must be positive".to_string());
        }
        if self.total_slots == 0 {
            return Err("total_slots must be positive".to_string());
        }
        if !(self.capacity > 0.0 && self.capacity.is_finite()) {
            return Err(format!(
                "capacity must be positive and finite, got {}",
                self.capacity
            ));
        }
        if self.initial_slices.is_empty() {
            return Err("at least one initial slice is required".to_string());
        }
        for (i, s) in self.initial_slices.iter().enumerate() {
            s.validate()
                .map_err(|e| format!("initial slice {i}: {e}"))?;
        }
        let id_bound = self.max_assignable_slice_ids() + admission_slack;
        let mut teardowns: Vec<(usize, u32)> = Vec::new();
        for (i, t) in self.events.iter().enumerate() {
            if t.at_slot >= self.total_slots {
                return Err(format!(
                    "event {i} fires at slot {} but the scenario ends at slot {}",
                    t.at_slot, self.total_slots
                ));
            }
            t.event.validate().map_err(|e| format!("event {i}: {e}"))?;
            // A reference past the assignable-id bound can never resolve: no
            // run of this scenario assigns that id, so the event would be
            // silently skipped every time — a scripting bug, not a timeline.
            if let Some(slice) = t.event.referenced_slice() {
                if slice as usize >= id_bound {
                    return Err(format!(
                        "event {i} references slice {slice} but this scenario can only ever \
                         assign ids 0..{id_bound} ({} initial + {} admissions)",
                        self.initial_slices.len(),
                        id_bound - self.initial_slices.len()
                    ));
                }
            }
            // Two teardowns of the same slice at the same slot: the second
            // always fires on an already-removed slice, so one of them is a
            // scripting mistake (a teardown re-fired at a *later* slot stays
            // legal — the id may have been skipped or the first denied).
            if let ScenarioEvent::TeardownSlice { slice } = t.event {
                if teardowns.contains(&(t.at_slot, slice)) {
                    return Err(format!(
                        "event {i} tears slice {slice} down at slot {} twice",
                        t.at_slot
                    ));
                }
                teardowns.push((t.at_slot, slice));
            }
        }
        Ok(())
    }

    /// Serializes the scenario to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization cannot fail")
    }

    /// Parses and validates a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let scenario: Scenario = serde_json::from_str(text).map_err(|e| e.to_string())?;
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::new("sample", 12, 48)
            .describe("round-trip fixture")
            .with_capacity(1.5)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs).with_peak_rate(3.0))
            .at(
                6,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Rdc).with_cost_threshold(0.1),
                },
            )
            .at(
                10,
                ScenarioEvent::TrafficBurst {
                    slice: 0,
                    scale: 2.0,
                    duration_slots: 4,
                },
            )
            .at(
                20,
                ScenarioEvent::DomainFault {
                    domain: DomainKind::Transport,
                    capacity_scale: 0.5,
                    duration_slots: 8,
                },
            )
            .at(
                30,
                ScenarioEvent::RenegotiateSla {
                    slice: 1,
                    cost_threshold: 0.08,
                },
            )
            .at(40, ScenarioEvent::TeardownSlice { slice: 2 })
    }

    #[test]
    fn sample_scenario_validates_and_round_trips_through_json() {
        let scenario = sample();
        scenario.validate().unwrap();
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, scenario);
        // Slice kinds appear under their lowercase alias in the file format.
        assert!(json.contains("\"mar\""));
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        assert!(Scenario::new("", 12, 48).validate().is_err());
        assert!(Scenario::new("x", 0, 48).validate().is_err());
        assert!(Scenario::new("x", 12, 48).validate().is_err()); // no slices
        let late_event = Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(48, ScenarioEvent::TeardownSlice { slice: 0 });
        assert!(late_event.validate().unwrap_err().contains("slot 48"));
        let bad_burst = Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                1,
                ScenarioEvent::TrafficBurst {
                    slice: 0,
                    scale: 0.0,
                    duration_slots: 4,
                },
            );
        assert!(bad_burst.validate().is_err());
        let bad_spec = Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar).with_cost_threshold(2.0));
        assert!(bad_spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_slice_ids_no_run_can_ever_assign() {
        // One initial slice + one admission ⇒ ids 0..2 are assignable.
        let base = Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .at(
                4,
                ScenarioEvent::AdmitSlice {
                    slice: SliceSpec::new(SliceKind::Hvs),
                },
            );
        let in_bound = base.clone().at(
            8,
            ScenarioEvent::SetTrafficScale {
                slice: 1,
                scale: 2.0,
            },
        );
        in_bound.validate().unwrap();
        let out_of_bound = base.clone().at(
            8,
            ScenarioEvent::SetTrafficScale {
                slice: 2,
                scale: 2.0,
            },
        );
        let err = out_of_bound.validate().unwrap_err();
        assert!(err.contains("references slice 2"), "got: {err}");
        assert!(err.contains("0..2"), "got: {err}");
        // The fleet runner may route extra admissions onto this cell; with
        // one admission of slack the same reference becomes satisfiable.
        out_of_bound.validate_with_admission_slack(1).unwrap();
        assert_eq!(base.max_assignable_slice_ids(), 2);
    }

    #[test]
    fn validation_rejects_duplicate_same_slot_teardowns() {
        let dup = Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(8, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(8, ScenarioEvent::TeardownSlice { slice: 1 });
        let err = dup.validate().unwrap_err();
        assert!(err.contains("twice"), "got: {err}");
        // The same teardown re-fired at a later slot stays legal (the first
        // may have been skipped), as do same-slot teardowns of two slices.
        Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(8, ScenarioEvent::TeardownSlice { slice: 1 })
            .at(12, ScenarioEvent::TeardownSlice { slice: 1 })
            .validate()
            .unwrap();
        Scenario::new("x", 12, 48)
            .slice(SliceSpec::new(SliceKind::Mar))
            .slice(SliceSpec::new(SliceKind::Hvs))
            .at(8, ScenarioEvent::TeardownSlice { slice: 0 })
            .at(8, ScenarioEvent::TeardownSlice { slice: 1 })
            .validate()
            .unwrap();
    }

    #[test]
    fn spec_resolves_sla_and_trace_overrides() {
        let spec = SliceSpec::new(SliceKind::Hvs)
            .with_peak_rate(7.0)
            .with_cost_threshold(0.2);
        assert_eq!(spec.sla().cost_threshold, 0.2);
        assert_eq!(spec.trace_config().peak_rate, 7.0);
        let plain = SliceSpec::new(SliceKind::Rdc);
        assert_eq!(plain.sla().cost_threshold, Sla::DEFAULT_COST_THRESHOLD);
        assert_eq!(plain.trace_config().peak_rate, 100.0);
    }
}
